//! The threaded GenDPR deployment: one thread per GDO, real enclaves,
//! remote attestation, commit-reveal leader election and encrypted
//! channels end to end.
//!
//! Where [`crate::protocol`] executes Algorithm 1 as a deterministic
//! in-process computation (for benchmarking the *analysis*), this module
//! deploys it the way the paper's Figure 2 draws it: every member runs
//! concurrently on its own premises, launches an enclave whose
//! measurement covers the GenDPR build *and* the study parameters, and
//! exchanges intermediate results exclusively through mutually attested
//! ChaCha20-Poly1305 channels over the federation network. Traffic and
//! enclave memory are metered, which is what Table 3 reports.
//!
//! # Epochs and recovery
//!
//! The paper makes no liveness guarantee under faults; by default this
//! runtime keeps that behaviour (a silent member aborts the run). With
//! [`RecoveryOptions::max_epochs`] above one the runtime instead layers an
//! epoch-based recovery protocol on top:
//!
//! * every frame is stamped with the sender's **epoch** and a per-link
//!   **sequence number**; receivers deliver in sequence order (masking
//!   duplicated and reordered frames) and drop stale-epoch frames;
//! * a **failure detector** slices every wait into probe intervals and
//!   pings the awaited peer after each silent interval; only after
//!   [`RecoveryOptions::suspect_after`] consecutive misses (or the hard
//!   phase timeout) is the peer suspected;
//! * a suspicion triggers a **view change**: the survivor broadcasts the
//!   reduced roster stamped with epoch `e + 1`, everyone re-runs the
//!   commit-reveal election over the surviving roster and restarts the
//!   assessment from the members' cached count reports;
//! * if the surviving roster falls below [`RecoveryOptions::min_quorum`]
//!   (default `G − f`), the run fails with a precise
//!   [`ProtocolError::QuorumLost`] instead of a generic timeout.
//!
//! A degraded run's certificate carries the epoch and surviving roster so
//! an auditor can see exactly whose inputs the release covers.

use crate::certificate::{AssessmentCertificate, AssessmentFacts};
use crate::collusion::{evaluation_subsets_of, intersect_selections};
use crate::config::{CollusionMode, FederationConfig, GwasParams};
use crate::error::ProtocolError;
use crate::gdo::GdoNode;
use crate::leader::{draw_nonce, elect_among, verify_reveal, ElectionCommit, ElectionReveal};
use crate::messages::{
    CountsReport, MomentsReport, MomentsRequest, Phase1Broadcast, Phase2Broadcast, Phase3Broadcast,
    ProtocolMessage,
};
use crate::phases::ld::run_ld_scan;
use crate::phases::lrtest::{run_lr_test_threads, SelectionKernel};
use crate::phases::maf::{run_maf, MafOutcome};
use crate::pool::parallel_map;
use crate::protocol::PhaseTimings;
use gendpr_crypto::rng::ChaChaRng;
use gendpr_fednet::fault::FaultPlan;
use gendpr_fednet::metrics::TrafficStats;
use gendpr_fednet::transport::{Endpoint, Envelope, Network, PeerId, Transport};
use gendpr_fednet::wire::{self, Decode, Encode, Reader, WireError};
use gendpr_genomics::cohort::Cohort;
use gendpr_genomics::genotype::GenotypeMatrix;
use gendpr_genomics::snp::SnpId;
use gendpr_stats::ld::LdMoments;
use gendpr_stats::lr::{BitLrMatrix, LrMatrix, LrValues};
use gendpr_stats::ranking::{rank_by_association, SnpRank};
use gendpr_tee::attestation::AttestationService;
use gendpr_tee::enclave::Enclave;
use gendpr_tee::measurement::Measurement;
use gendpr_tee::platform::Platform;
use gendpr_tee::session::{Handshake, HandshakeMessage, SecureChannel};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Code identity of the GenDPR member enclave. All members must run the
/// same build or mutual attestation fails.
pub const CODE_IDENTITY: &str = "gendpr/member/v1";

pub(crate) const CHANNEL_AAD: &[u8] = b"gendpr/protocol/v1";

/// Failure-detection and view-change knobs of the threaded runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryOptions {
    /// Consecutive silent probe intervals before a peer is suspected.
    pub suspect_after: u32,
    /// Length of one probe interval; `None` derives it from the phase
    /// timeout (`timeout / suspect_after`), which makes the detector
    /// exactly as patient as the paper's single hard timeout.
    pub probe_interval: Option<Duration>,
    /// Highest epoch the member will participate in. `1` (the default)
    /// disables recovery entirely: the first suspicion aborts the run with
    /// [`ProtocolError::MemberUnresponsive`], the paper's behaviour.
    pub max_epochs: u64,
    /// Smallest surviving roster allowed to form a new epoch. `0` (the
    /// default) derives `G − f` from the collusion mode.
    pub min_quorum: usize,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        Self {
            suspect_after: 3,
            probe_interval: None,
            max_epochs: 1,
            min_quorum: 0,
        }
    }
}

/// Deployment options for the threaded runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeOptions {
    /// Bound on every wait; a silent member aborts the protocol (or, with
    /// recovery enabled, triggers a view change).
    pub timeout: Duration,
    /// Ship Phase 3 matrices as one-bit-per-cell compact reports instead
    /// of the paper's dense value matrices (same reconstruction, ~64×
    /// less traffic). Off by default for paper fidelity.
    pub compact_lr: bool,
    /// Prefetch the LD moments of every adjacent pair of `L'` in a single
    /// batched round before the scan, collapsing the per-pair round trips
    /// of Algorithm 1's inner loop to cache misses only. Off by default
    /// for paper fidelity.
    pub prefetch_ld: bool,
    /// Failure detection and epoch-based view changes.
    pub recovery: RecoveryOptions,
    /// Worker threads for the leader's pure per-subset computations (MAF
    /// evaluation, rankings, reference-moment precomputation). Network
    /// message order is untouched — secure channels impose a nonce
    /// sequence — so any value yields byte-identical selections,
    /// certificates and traffic. `1` (the default) is the exact
    /// sequential path; `0` resolves to the machine's parallelism.
    pub threads: usize,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(300),
            compact_lr: false,
            prefetch_ld: false,
            recovery: RecoveryOptions::default(),
            threads: 1,
        }
    }
}

/// Per-member resource report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberResources {
    /// Member index.
    pub id: usize,
    /// Peak enclave memory (bytes) — the Table 3 "Memory" column.
    pub peak_enclave_bytes: u64,
    /// Enclave entries performed.
    pub ecalls: u64,
}

/// Result of a full threaded run.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// The elected leader (of the final epoch).
    pub leader: usize,
    /// MAF survivors.
    pub l_prime: Vec<SnpId>,
    /// LD survivors.
    pub l_double_prime: Vec<SnpId>,
    /// The final safe set (identical at every surviving member).
    pub safe_snps: Vec<SnpId>,
    /// Measured network traffic (every byte of it enclave-encrypted).
    pub traffic: TrafficStats,
    /// Per-member enclave resource usage (surviving members only).
    pub resources: Vec<MemberResources>,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Leader-side per-task wall times (each includes waiting for the
    /// members' parallel local computations — the federated critical path).
    pub timings: PhaseTimings,
    /// Enclave-signed certificate binding parameters, input digests, the
    /// safe set and the surviving roster (verify with
    /// [`AssessmentCertificate::verify`]).
    pub certificate: AssessmentCertificate,
    /// Epoch in which the assessment completed (1 = crash-free).
    pub epoch: u64,
    /// Surviving roster of the final epoch.
    pub roster: Vec<u32>,
    /// Members that crashed or were excluded along the way.
    pub failed: Vec<usize>,
}

/// Untyped transport frames (election and handshake are public-by-design;
/// everything else travels as channel ciphertext). Every frame carries the
/// sender's epoch and a per-link sequence number so receivers can reject
/// stale-epoch traffic and mask duplicated or reordered delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Frame {
    epoch: u64,
    seq: u64,
    body: FrameBody,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum FrameBody {
    Commit([u8; 32]),
    Reveal([u8; 32]),
    Handshake([u8; 128]),
    Sealed(Vec<u8>),
    /// Failure-detector probe.
    Ping,
    /// Probe answer: "still alive, just busy".
    Pong,
    /// View-change announcement: the new epoch's surviving roster.
    ViewChange(Vec<u32>),
}

impl Encode for Frame {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.epoch.encode(buf);
        self.seq.encode(buf);
        match &self.body {
            FrameBody::Commit(c) => {
                0u8.encode(buf);
                c.encode(buf);
            }
            FrameBody::Reveal(r) => {
                1u8.encode(buf);
                r.encode(buf);
            }
            FrameBody::Handshake(h) => {
                2u8.encode(buf);
                h.encode(buf);
            }
            FrameBody::Sealed(payload) => {
                3u8.encode(buf);
                payload.encode(buf);
            }
            FrameBody::Ping => 4u8.encode(buf),
            FrameBody::Pong => 5u8.encode(buf),
            FrameBody::ViewChange(roster) => {
                6u8.encode(buf);
                roster.encode(buf);
            }
        }
    }
}

impl Decode for Frame {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let epoch = u64::decode(r)?;
        let seq = u64::decode(r)?;
        let body = match u8::decode(r)? {
            0 => FrameBody::Commit(<[u8; 32]>::decode(r)?),
            1 => FrameBody::Reveal(<[u8; 32]>::decode(r)?),
            2 => FrameBody::Handshake(<[u8; 128]>::decode(r)?),
            3 => FrameBody::Sealed(Vec::decode(r)?),
            4 => FrameBody::Ping,
            5 => FrameBody::Pong,
            6 => FrameBody::ViewChange(Vec::decode(r)?),
            _ => return Err(WireError::InvalidValue("Frame tag")),
        };
        Ok(Self { epoch, seq, body })
    }
}

pub(crate) fn measurement_config(params: &GwasParams) -> Vec<u8> {
    let mut buf = Vec::new();
    params.maf_cutoff.encode(&mut buf);
    params.ld_cutoff.encode(&mut buf);
    params.lr.false_positive_rate.encode(&mut buf);
    params.lr.power_threshold.encode(&mut buf);
    buf
}

/// The measurement every member expects its peers to attest.
#[must_use]
pub fn expected_measurement(params: &GwasParams) -> Measurement {
    Measurement::compute(CODE_IDENTITY, &measurement_config(params))
}

/// Why a phase function unwound: either the run is over (fatal error) or
/// the federation is re-forming in a new epoch.
#[derive(Debug, Clone)]
pub(crate) enum Interrupt {
    Fatal(ProtocolError),
    NewView {
        epoch: u64,
        roster: Vec<usize>,
        /// Whether this member initiated the change (and must broadcast
        /// the announcement) or merely adopted a peer's announcement.
        announce: bool,
    },
}

impl From<ProtocolError> for Interrupt {
    fn from(e: ProtocolError) -> Self {
        Self::Fatal(e)
    }
}

pub(crate) struct MemberCtx<T: Transport> {
    pub(crate) id: usize,
    pub(crate) g: usize,
    pub(crate) endpoint: T,
    pub(crate) enclave: Enclave<()>,
    pub(crate) rng: ChaChaRng,
    pub(crate) timeout: Duration,
    pub(crate) compact_lr: bool,
    pub(crate) prefetch_ld: bool,
    pub(crate) threads: usize,
    pub(crate) recovery: RecoveryOptions,
    pub(crate) collusion: CollusionMode,
    pub(crate) expected: Measurement,
    /// Current epoch (starts at 1).
    pub(crate) epoch: u64,
    /// Surviving roster of the current epoch, ascending member ids.
    pub(crate) roster: Vec<usize>,
    /// Next sequence number per destination (monotone across epochs).
    send_seq: HashMap<u32, u64>,
    /// Next expected sequence number per sender.
    recv_next: HashMap<u32, u64>,
    /// Out-of-order frames per sender, keyed by sequence number.
    pending: HashMap<u32, BTreeMap<u64, Frame>>,
    /// In-sequence frames from epochs we have not entered yet.
    future: HashMap<u32, VecDeque<Frame>>,
    /// Frames delivered per sender — the failure detector's liveness
    /// signal (any delivery, including a pong, clears pending misses).
    heard: HashMap<u32, u64>,
    /// Current-epoch frames that arrived while waiting for someone else.
    backlog: HashMap<u32, VecDeque<FrameBody>>,
}

impl<T: Transport> MemberCtx<T> {
    /// Smallest roster allowed to form a new epoch. An explicit
    /// `min_quorum` wins; otherwise `G − f` from the collusion mode. In
    /// `Fixed(f)` mode the roster must additionally keep more than `f`
    /// members or the collusion subsets are undefined.
    fn required_quorum(&self) -> usize {
        let auto = FederationConfig {
            gdo_count: self.g,
            collusion: self.collusion,
            seed: 0,
        }
        .default_min_quorum();
        if self.recovery.min_quorum == 0 {
            return auto;
        }
        // An explicit quorum can relax G − f, but never below what the
        // collusion mode needs to stay well-defined.
        let floor = match self.collusion {
            CollusionMode::None => 1,
            CollusionMode::Fixed(f) => f + 1,
            CollusionMode::AllUpTo => 2,
        };
        self.recovery.min_quorum.max(floor)
    }

    fn send_frame(
        &mut self,
        to: usize,
        body: FrameBody,
        plaintext_len: usize,
    ) -> Result<(), ProtocolError> {
        self.send_frame_at(to, self.epoch, body, plaintext_len)
    }

    /// Sends a frame stamped with an explicit epoch (view-change
    /// announcements are stamped with the epoch being formed). Sends are
    /// best-effort: a dead link surfaces at the receiver as silence, which
    /// the failure detector turns into a suspicion.
    fn send_frame_at(
        &mut self,
        to: usize,
        epoch: u64,
        body: FrameBody,
        plaintext_len: usize,
    ) -> Result<(), ProtocolError> {
        let seq = self.send_seq.entry(to as u32).or_insert(0);
        let frame = Frame {
            epoch,
            seq: *seq,
            body,
        };
        *seq += 1;
        let _ = self
            .endpoint
            .send(PeerId(to as u32), wire::to_bytes(&frame), plaintext_len);
        Ok(())
    }

    /// Files an incoming envelope into the sequence machinery and delivers
    /// everything that became contiguous.
    fn ingest(&mut self, env: Envelope) -> Result<(), Interrupt> {
        let from = env.from.0;
        let frame: Frame = wire::from_bytes(&env.payload).map_err(|_| {
            Interrupt::Fatal(ProtocolError::MalformedMessage {
                member: from as usize,
            })
        })?;
        let next = self.recv_next.get(&from).copied().unwrap_or(0);
        if frame.seq < next {
            return Ok(()); // replayed duplicate
        }
        self.pending
            .entry(from)
            .or_default()
            .insert(frame.seq, frame);
        self.pump(from)
    }

    /// Delivers contiguous pending frames from `from` in sequence order.
    fn pump(&mut self, from: u32) -> Result<(), Interrupt> {
        loop {
            let next = self.recv_next.get(&from).copied().unwrap_or(0);
            let Some(frame) = self.pending.get_mut(&from).and_then(|p| p.remove(&next)) else {
                return Ok(());
            };
            self.recv_next.insert(from, next + 1);
            self.deliver(from, frame)?;
        }
    }

    /// Routes one in-sequence frame: stale epochs are dropped, future
    /// epochs buffered (or adopted, for view changes), current-epoch
    /// frames answered (pings) or backlogged.
    fn deliver(&mut self, from: u32, frame: Frame) -> Result<(), Interrupt> {
        *self.heard.entry(from).or_default() += 1;
        match frame.epoch.cmp(&self.epoch) {
            std::cmp::Ordering::Less => Ok(()), // stale epoch
            std::cmp::Ordering::Greater => match frame.body {
                FrameBody::ViewChange(roster) => self.adopt_view(frame.epoch, &roster),
                _ => {
                    self.future.entry(from).or_default().push_back(frame);
                    Ok(())
                }
            },
            std::cmp::Ordering::Equal => match frame.body {
                FrameBody::Ping => {
                    self.send_frame(from as usize, FrameBody::Pong, 0)?;
                    Ok(())
                }
                FrameBody::Pong => Ok(()),
                FrameBody::ViewChange(roster) => {
                    let roster: Vec<usize> = roster.iter().map(|&m| m as usize).collect();
                    if roster == self.roster {
                        return Ok(()); // duplicate announcement of this view
                    }
                    // Conflicting views of the same epoch (two members
                    // suspected different peers concurrently): converge on
                    // the intersection in a fresh epoch.
                    let merged: Vec<usize> = self
                        .roster
                        .iter()
                        .copied()
                        .filter(|m| roster.contains(m))
                        .collect();
                    if !merged.contains(&self.id) {
                        return Err(Interrupt::Fatal(ProtocolError::Evicted {
                            epoch: self.epoch + 1,
                        }));
                    }
                    let required = self.required_quorum();
                    if merged.len() < required {
                        return Err(Interrupt::Fatal(ProtocolError::QuorumLost {
                            epoch: self.epoch + 1,
                            survivors: merged.len(),
                            required,
                        }));
                    }
                    Err(Interrupt::NewView {
                        epoch: self.epoch + 1,
                        roster: merged,
                        announce: true,
                    })
                }
                body => {
                    self.backlog.entry(from).or_default().push_back(body);
                    Ok(())
                }
            },
        }
    }

    /// Adopts a peer's view-change announcement for a later epoch.
    fn adopt_view(&mut self, epoch: u64, roster: &[u32]) -> Result<(), Interrupt> {
        let roster: Vec<usize> = roster.iter().map(|&m| m as usize).collect();
        if !roster.contains(&self.id) {
            return Err(Interrupt::Fatal(ProtocolError::Evicted { epoch }));
        }
        let required = self.required_quorum();
        if roster.len() < required {
            return Err(Interrupt::Fatal(ProtocolError::QuorumLost {
                epoch,
                survivors: roster.len(),
                required,
            }));
        }
        Err(Interrupt::NewView {
            epoch,
            roster,
            announce: false,
        })
    }

    /// Turns a suspicion about `member` into the next step: abort (no
    /// recovery budget), quorum loss, or a view change over the survivors.
    fn suspect(&mut self, member: usize, phase: &'static str) -> Interrupt {
        crate::telemetry::suspicions().inc();
        gendpr_obs::event(
            gendpr_obs::Level::Warn,
            "runtime",
            "member_suspected",
            &[
                ("member", member.into()),
                ("phase", phase.into()),
                ("epoch", self.epoch.into()),
            ],
        );
        let next_epoch = self.epoch + 1;
        if next_epoch > self.recovery.max_epochs {
            return Interrupt::Fatal(ProtocolError::MemberUnresponsive { member, phase });
        }
        let survivors: Vec<usize> = self
            .roster
            .iter()
            .copied()
            .filter(|&m| m != member)
            .collect();
        let required = self.required_quorum();
        if survivors.len() < required {
            // Tell the other survivors the federation is disbanding; they
            // derive the same QuorumLost from the undersized roster.
            let notice: Vec<u32> = survivors.iter().map(|&m| m as u32).collect();
            for peer in survivors.clone() {
                if peer != self.id {
                    let _ = self.send_frame_at(
                        peer,
                        next_epoch,
                        FrameBody::ViewChange(notice.clone()),
                        0,
                    );
                }
            }
            return Interrupt::Fatal(ProtocolError::QuorumLost {
                epoch: next_epoch,
                survivors: survivors.len(),
                required,
            });
        }
        Interrupt::NewView {
            epoch: next_epoch,
            roster: survivors,
            announce: true,
        }
    }

    /// Enters a new epoch: announces it if this member initiated the view
    /// change (including an eviction notice to the excluded members),
    /// clears current-epoch state and replays buffered future frames.
    fn begin_epoch(&mut self, epoch: u64, roster: Vec<usize>, announce: bool) {
        crate::telemetry::view_changes().inc();
        gendpr_obs::event(
            gendpr_obs::Level::Info,
            "runtime",
            "view_change",
            &[
                ("epoch", epoch.into()),
                ("survivors", roster.len().into()),
                ("announced", announce.into()),
            ],
        );
        let old_roster = std::mem::replace(&mut self.roster, roster);
        self.epoch = epoch;
        self.backlog.clear();
        self.heard.clear();
        if announce {
            let wire_roster: Vec<u32> = self.roster.iter().map(|&m| m as u32).collect();
            for peer in old_roster {
                if peer != self.id {
                    let _ = self.send_frame(peer, FrameBody::ViewChange(wire_roster.clone()), 0);
                }
            }
        }
        let senders: Vec<u32> = self.future.keys().copied().collect();
        for from in senders {
            let queue = self.future.remove(&from).unwrap_or_default();
            let mut rest = VecDeque::new();
            for frame in queue {
                match frame.epoch.cmp(&self.epoch) {
                    std::cmp::Ordering::Less => {}
                    std::cmp::Ordering::Equal => {
                        self.backlog.entry(from).or_default().push_back(frame.body);
                    }
                    std::cmp::Ordering::Greater => rest.push_back(frame),
                }
            }
            if !rest.is_empty() {
                self.future.insert(from, rest);
            }
        }
    }

    /// Receives the next frame from `from`, buffering frames from others.
    /// Waits are sliced into probe intervals: a silent interval sends a
    /// ping, and `suspect_after` consecutive silent intervals (or
    /// `timeout` of unbroken silence) suspect the peer. Any delivered
    /// frame from `from` — a pong counts — is a sign of life that resets
    /// the clock, so a member merely *busy* (e.g. a leader itself waiting
    /// out a dead peer's timeout) is never suspected, only a silent one.
    fn recv_frame_from(
        &mut self,
        from: usize,
        phase: &'static str,
    ) -> Result<FrameBody, Interrupt> {
        let key = from as u32;
        let mut deadline = Instant::now() + self.timeout;
        let probe = self
            .recovery
            .probe_interval
            .unwrap_or(self.timeout / self.recovery.suspect_after.max(1));
        let mut misses = 0u32;
        loop {
            self.pump(key)?;
            if let Some(body) = self.backlog.get_mut(&key).and_then(VecDeque::pop_front) {
                return Ok(body);
            }
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now) else {
                return Err(self.suspect(from, phase));
            };
            let heard_before = self.heard.get(&key).copied().unwrap_or(0);
            match self.endpoint.recv_timeout(probe.min(remaining)) {
                Ok(env) => self.ingest(env)?,
                Err(_) => {
                    misses += 1;
                    if misses >= self.recovery.suspect_after {
                        return Err(self.suspect(from, phase));
                    }
                    self.send_frame(from, FrameBody::Ping, 0)?;
                }
            }
            if self.heard.get(&key).copied().unwrap_or(0) != heard_before {
                misses = 0;
                deadline = Instant::now() + self.timeout;
            }
        }
    }
}

/// Commit-reveal election among the surviving roster (paper: "randomly
/// choosing one of the registered enclaves"; epochs above one re-run it
/// over the survivors).
pub(crate) fn run_election<T: Transport>(ctx: &mut MemberCtx<T>) -> Result<usize, Interrupt> {
    let roster = ctx.roster.clone();
    let (reveal, commitment) = draw_nonce(&mut ctx.rng);
    for &peer in &roster {
        if peer != ctx.id {
            ctx.send_frame(peer, FrameBody::Commit(commitment.0), 32)?;
        }
    }
    let mut commits: HashMap<usize, ElectionCommit> = HashMap::new();
    commits.insert(ctx.id, commitment);
    while commits.len() < roster.len() {
        for &peer in &roster {
            if commits.contains_key(&peer) {
                continue;
            }
            match ctx.recv_frame_from(peer, "election-commit")? {
                FrameBody::Commit(c) => {
                    commits.insert(peer, ElectionCommit(c));
                }
                _ => return Err(ProtocolError::MalformedMessage { member: peer }.into()),
            }
        }
    }
    for &peer in &roster {
        if peer != ctx.id {
            ctx.send_frame(peer, FrameBody::Reveal(reveal.0), 32)?;
        }
    }
    let mut reveals: Vec<ElectionReveal> = vec![ElectionReveal([0u8; 32]); roster.len()];
    let mut have = vec![false; roster.len()];
    let my_slot = roster.iter().position(|&m| m == ctx.id).expect("in roster");
    reveals[my_slot] = reveal;
    have[my_slot] = true;
    while have.iter().any(|h| !h) {
        for (slot, &peer) in roster.iter().enumerate() {
            if have[slot] {
                continue;
            }
            match ctx.recv_frame_from(peer, "election-reveal")? {
                FrameBody::Reveal(nonce) => {
                    let r = ElectionReveal(nonce);
                    if !verify_reveal(&commits[&peer], &r) {
                        return Err(ProtocolError::MalformedMessage { member: peer }.into());
                    }
                    reveals[slot] = r;
                    have[slot] = true;
                }
                _ => return Err(ProtocolError::MalformedMessage { member: peer }.into()),
            }
        }
    }
    Ok(elect_among(&reveals, &roster))
}

/// Establishes an attested channel with `peer` (both sides run this).
pub(crate) fn establish_channel<T: Transport>(
    ctx: &mut MemberCtx<T>,
    peer: usize,
) -> Result<SecureChannel, Interrupt> {
    let handshake = Handshake::start(&ctx.enclave, &mut ctx.rng);
    let msg = handshake.message().to_bytes();
    ctx.send_frame(peer, FrameBody::Handshake(msg), msg.len())?;
    let frame = ctx.recv_frame_from(peer, "handshake")?;
    let FrameBody::Handshake(peer_bytes) = frame else {
        return Err(ProtocolError::MalformedMessage { member: peer }.into());
    };
    let peer_msg = HandshakeMessage::from_bytes(&peer_bytes);
    handshake
        .complete(&peer_msg, &ctx.expected)
        .map_err(|cause| {
            ProtocolError::SecurityFailure {
                member: peer,
                cause,
            }
            .into()
        })
}

pub(crate) fn send_protocol<T: Transport>(
    ctx: &mut MemberCtx<T>,
    channel: &mut SecureChannel,
    to: usize,
    msg: &ProtocolMessage,
) -> Result<(), ProtocolError> {
    let plaintext = wire::to_bytes(msg);
    let plaintext_len = plaintext.len();
    let sealed = channel.send(&plaintext, CHANNEL_AAD);
    ctx.send_frame(to, FrameBody::Sealed(sealed), plaintext_len)
}

pub(crate) fn recv_protocol<T: Transport>(
    ctx: &mut MemberCtx<T>,
    channel: &mut SecureChannel,
    from: usize,
    phase: &'static str,
) -> Result<ProtocolMessage, Interrupt> {
    let frame = ctx.recv_frame_from(from, phase)?;
    let FrameBody::Sealed(sealed) = frame else {
        return Err(ProtocolError::MalformedMessage { member: from }.into());
    };
    let plaintext = channel.recv(&sealed, CHANNEL_AAD).map_err(|cause| {
        Interrupt::Fatal(ProtocolError::SecurityFailure {
            member: from,
            cause,
        })
    })?;
    wire::from_bytes(&plaintext)
        .map_err(|_| ProtocolError::MalformedMessage { member: from }.into())
}

struct ThreadReport {
    peak_enclave_bytes: u64,
    ecalls: u64,
    leader: usize,
    outcome: Option<(Vec<SnpId>, Vec<SnpId>, Vec<SnpId>)>,
    safe_seen: Vec<SnpId>,
    timings: PhaseTimings,
    certificate: Option<AssessmentCertificate>,
}

#[allow(clippy::too_many_lines)]
fn leader_main<T: Transport>(
    ctx: &mut MemberCtx<T>,
    node: &GdoNode,
    reference: &GenotypeMatrix,
    config: &FederationConfig,
    params: &GwasParams,
    own_counts: &CountsReport,
) -> Result<ThreadReport, Interrupt> {
    let g = ctx.g;
    let me = ctx.id;
    let roster = ctx.roster.clone();
    let mut channels: HashMap<usize, SecureChannel> = HashMap::new();
    for &peer in &roster {
        if peer != me {
            channels.insert(peer, establish_channel(ctx, peer)?);
        }
    }
    let subsets = evaluation_subsets_of(&roster, config.collusion);
    let mut timings = PhaseTimings::default();
    crate::telemetry::subsets_evaluated().add(subsets.len() as u64);
    gendpr_obs::event(
        gendpr_obs::Level::Info,
        "runtime",
        "leader_run_started",
        &[
            ("leader", me.into()),
            ("members", g.into()),
            ("subsets", subsets.len().into()),
        ],
    );

    // ---- Collect counts ----
    let t = Instant::now();
    let mut reports: Vec<Option<CountsReport>> = vec![None; g];
    let panel_len = own_counts.counts.len();
    reports[me] = Some(own_counts.clone());
    for &peer in &roster {
        if peer == me {
            continue;
        }
        let channel = channels.get_mut(&peer).expect("channel established");
        match recv_protocol(ctx, channel, peer, "counts")? {
            ProtocolMessage::Counts(c) if c.counts.len() == panel_len => {
                reports[peer] = Some(c);
            }
            _ => return Err(ProtocolError::MalformedMessage { member: peer }.into()),
        }
    }
    timings.aggregation += t.elapsed();
    crate::telemetry::phase_seconds("aggregation").observe_duration(t.elapsed());

    // ---- Phase 1: MAF per subset + intersection ----
    let t = Instant::now();
    let ref_counts = ctx.enclave.enter(|(), epc| {
        epc.alloc(8 * reference.snps() as u64);
        reference.column_counts()
    });
    let n_ref = reference.individuals() as u64;
    // Pure per-subset work (no channel I/O) fans out across the worker
    // pool; results come back in subset order, so the selections and the
    // certificate are byte-identical to a sequential run.
    let threads = ctx.threads;
    let maf_outcomes: Vec<MafOutcome> = parallel_map(threads, &subsets, |_, subset| {
        let subset_reports: Vec<CountsReport> = subset
            .iter()
            .map(|&i| reports[i].clone().expect("subset member reported"))
            .collect();
        run_maf(
            &subset_reports,
            ref_counts.clone(),
            n_ref,
            params.maf_cutoff,
        )
    });
    let l_prime = intersect_selections(
        &maf_outcomes
            .iter()
            .map(|o| o.retained.clone())
            .collect::<Vec<_>>(),
    );
    let all_ids: Vec<SnpId> = (0..panel_len as u32).map(SnpId).collect();
    let rankings: Vec<Vec<SnpRank>> = parallel_map(threads, &maf_outcomes, |_, o| {
        rank_by_association(&all_ids, &o.case_counts, o.n_case, &o.ref_counts, o.n_ref)
    });
    let phase1 = ProtocolMessage::Phase1(Phase1Broadcast {
        retained: l_prime.iter().map(|s| s.0).collect(),
    });
    for &peer in &roster {
        if peer != me {
            let channel = channels.get_mut(&peer).expect("channel");
            send_protocol(ctx, channel, peer, &phase1)?;
        }
    }

    timings.indexing += t.elapsed();
    crate::telemetry::phase_seconds("maf").observe_duration(t.elapsed());

    // ---- Phase 2: LD per subset + intersection ----
    let t = Instant::now();
    // Reference moments do not depend on the subset under evaluation:
    // compute every adjacent pair of L' once, fanned across the worker
    // pool, and serve all subsets (prefetch tables and scan cache misses
    // alike) from this table instead of rescanning the reference panel.
    let ref_pair_moments: HashMap<(u32, u32), LdMoments> = {
        let pairs: Vec<(SnpId, SnpId)> = l_prime.windows(2).map(|w| (w[0], w[1])).collect();
        let moments = parallel_map(threads, &pairs, |_, &(a, b)| {
            LdMoments::from_cached_counts(
                reference,
                a,
                b,
                ref_counts[a.index()],
                ref_counts[b.index()],
            )
        });
        pairs
            .iter()
            .zip(moments)
            .map(|(&(a, b), m)| ((a.0, b.0), m))
            .collect()
    };
    let ref_moments = |a: SnpId, b: SnpId| {
        ref_pair_moments
            .get(&(a.0, b.0))
            .copied()
            .unwrap_or_else(|| {
                LdMoments::from_cached_counts(
                    reference,
                    a,
                    b,
                    ref_counts[a.index()],
                    ref_counts[b.index()],
                )
            })
    };
    let mut ld_selections = Vec::with_capacity(subsets.len());
    for (c, subset) in subsets.iter().enumerate() {
        let ranks = &rankings[c];
        // Optional single-round prefetch of every adjacent pair's moments:
        // the greedy scan compares (survivor, next), and the survivor is
        // usually `next - 1`, so most lookups hit this cache.
        let mut moments_cache: HashMap<(u32, u32), LdMoments> = HashMap::new();
        if ctx.prefetch_ld && l_prime.len() >= 2 {
            let pairs: Vec<MomentsRequest> = l_prime
                .windows(2)
                .map(|w| MomentsRequest {
                    a: w[0].0,
                    b: w[1].0,
                })
                .collect();
            for w in l_prime.windows(2) {
                let (a, b) = (w[0], w[1]);
                let mut pooled = ref_moments(a, b);
                if subset.contains(&me) {
                    pooled = pooled.merge(LdMoments::from(node.ld_moments(a, b)));
                }
                moments_cache.insert((a.0, b.0), pooled);
            }
            let request = ProtocolMessage::MomentsRequest(pairs.clone());
            for &peer in subset {
                if peer != me {
                    let channel = channels.get_mut(&peer).expect("channel");
                    send_protocol(ctx, channel, peer, &request)?;
                }
            }
            for &peer in subset {
                if peer == me {
                    continue;
                }
                let channel = channels.get_mut(&peer).expect("channel");
                match recv_protocol(ctx, channel, peer, "ld-prefetch")? {
                    ProtocolMessage::Moments(ms) if ms.len() == pairs.len() => {
                        for (pair, m) in pairs.iter().zip(ms) {
                            let entry = moments_cache
                                .get_mut(&(pair.a, pair.b))
                                .expect("prefetched pair");
                            *entry = entry.merge(LdMoments::from(m));
                        }
                    }
                    _ => return Err(ProtocolError::MalformedMessage { member: peer }.into()),
                }
            }
        }
        let mut scan_error: Option<Interrupt> = None;
        let retained = {
            let channels = &mut channels;
            let ctx_cell = std::cell::RefCell::new(&mut *ctx);
            let scan_error = &mut scan_error;
            run_ld_scan(
                &l_prime,
                |a, b| {
                    if scan_error.is_some() {
                        return LdMoments::default();
                    }
                    if let Some(&cached) = moments_cache.get(&(a.0, b.0)) {
                        return cached;
                    }
                    // Fan the request out to every subset member first, so
                    // their shard scans run in parallel, then collect.
                    let request =
                        ProtocolMessage::MomentsRequest(vec![MomentsRequest { a: a.0, b: b.0 }]);
                    for &peer in subset.iter() {
                        if peer == me {
                            continue;
                        }
                        let mut ctx = ctx_cell.borrow_mut();
                        let channel = channels.get_mut(&peer).expect("channel");
                        if let Err(e) = send_protocol(&mut ctx, channel, peer, &request) {
                            *scan_error = Some(e.into());
                            return LdMoments::default();
                        }
                    }
                    let mut pooled = ref_moments(a, b);
                    if subset.contains(&me) {
                        pooled = pooled.merge(LdMoments::from(node.ld_moments(a, b)));
                    }
                    for &peer in subset.iter() {
                        if peer == me {
                            continue;
                        }
                        let mut ctx = ctx_cell.borrow_mut();
                        let channel = channels.get_mut(&peer).expect("channel");
                        match recv_protocol(&mut ctx, channel, peer, "ld-moments") {
                            Ok(ProtocolMessage::Moments(ms)) if ms.len() == 1 => {
                                pooled = pooled.merge(LdMoments::from(ms[0]));
                            }
                            Ok(_) => {
                                *scan_error =
                                    Some(ProtocolError::MalformedMessage { member: peer }.into());
                            }
                            Err(e) => *scan_error = Some(e),
                        }
                    }
                    pooled
                },
                |s| ranks[s.index()].p_value,
                params.ld_cutoff,
            )
        };
        if let Some(intr) = scan_error {
            if let Interrupt::Fatal(ref e) = intr {
                abort_all(ctx, &mut channels, e);
            }
            return Err(intr);
        }
        ld_selections.push(retained);
    }
    let l_double_prime = intersect_selections(&ld_selections);
    timings.ld += t.elapsed();
    crate::telemetry::phase_seconds("ld").observe_duration(t.elapsed());

    // ---- Phase 3: LR per subset + intersection ----
    let t = Instant::now();
    let mut lr_selections = Vec::with_capacity(subsets.len());
    for (c, subset) in subsets.iter().enumerate() {
        let outcome = &maf_outcomes[c];
        let case_freqs: Vec<f64> = l_double_prime
            .iter()
            .map(|&s| outcome.case_frequency(s))
            .collect();
        let ref_freqs: Vec<f64> = l_double_prime
            .iter()
            .map(|&s| outcome.ref_frequency(s))
            .collect();
        let broadcast = ProtocolMessage::Phase2(
            c as u32,
            Phase2Broadcast {
                retained: l_double_prime.iter().map(|s| s.0).collect(),
                case_freqs: case_freqs.clone(),
                ref_freqs: ref_freqs.clone(),
            },
        );
        for &peer in subset {
            if peer == me {
                continue;
            }
            let channel = channels.get_mut(&peer).expect("channel");
            send_protocol(ctx, channel, peer, &broadcast)?;
        }
        let ranks: Vec<SnpRank> = l_double_prime
            .iter()
            .map(|&s| rankings[c][s.index()])
            .collect();
        let safe = if ctx.compact_lr {
            // Bit-packed end to end: members ship indicator bits, the
            // leader keeps everything — merged case matrix and the null
            // model — packed, 64× below the dense footprint.
            let mut parts: Vec<BitLrMatrix> = Vec::with_capacity(subset.len());
            if subset.contains(&me) {
                let own = ctx.enclave.enter(|(), epc| {
                    let m = BitLrMatrix::from_genotypes(
                        node.shard(),
                        &l_double_prime,
                        &case_freqs,
                        &ref_freqs,
                    );
                    epc.alloc(m.heap_bytes() as u64);
                    m
                });
                parts.push(own);
            }
            for &peer in subset {
                if peer == me {
                    continue;
                }
                let channel = channels.get_mut(&peer).expect("channel");
                let m = match recv_protocol(ctx, channel, peer, "lr-matrices")? {
                    ProtocolMessage::LrCompact(combo, report) if combo == c as u32 => {
                        BitLrMatrix::from_raw_bits(
                            report.individuals as usize,
                            report.snps as usize,
                            report.bits,
                            &case_freqs,
                            &ref_freqs,
                        )
                        .map_err(|_| ProtocolError::MalformedMessage { member: peer })?
                    }
                    _ => return Err(ProtocolError::MalformedMessage { member: peer }.into()),
                };
                if m.snps() != l_double_prime.len() {
                    return Err(ProtocolError::MalformedMessage { member: peer }.into());
                }
                ctx.enclave
                    .enter(|(), epc| epc.alloc(m.heap_bytes() as u64));
                parts.push(m);
            }
            let (safe, freed) = ctx.enclave.enter(|(), epc| {
                let case_matrix = BitLrMatrix::concat_rows(&parts);
                epc.alloc(case_matrix.heap_bytes() as u64);
                let null_matrix = BitLrMatrix::from_genotypes(
                    reference,
                    &l_double_prime,
                    &case_freqs,
                    &ref_freqs,
                );
                epc.alloc(null_matrix.heap_bytes() as u64);
                let safe = run_lr_test_threads(
                    &l_double_prime,
                    &case_matrix,
                    &null_matrix,
                    &ranks,
                    &params.lr,
                    SelectionKernel::Fast,
                    ctx.threads,
                );
                let freed = case_matrix.heap_bytes() as u64 + null_matrix.heap_bytes() as u64;
                (safe, freed)
            });
            let part_bytes: u64 = parts.iter().map(|p| p.heap_bytes() as u64).sum();
            ctx.enclave.enter(|(), epc| epc.free(freed + part_bytes));
            safe
        } else {
            // Paper-faithful dense matrices.
            let mut parts: Vec<LrMatrix> = Vec::with_capacity(subset.len());
            if subset.contains(&me) {
                let own = ctx.enclave.enter(|(), epc| {
                    let m = node
                        .lr_report(&l_double_prime, &case_freqs, &ref_freqs)
                        .into_matrix()
                        .expect("well-formed local matrix");
                    epc.alloc(m.heap_bytes() as u64);
                    m
                });
                parts.push(own);
            }
            for &peer in subset {
                if peer == me {
                    continue;
                }
                let channel = channels.get_mut(&peer).expect("channel");
                let m = match recv_protocol(ctx, channel, peer, "lr-matrices")? {
                    ProtocolMessage::Lr(combo, report) if combo == c as u32 => report
                        .into_matrix()
                        .map_err(|_| ProtocolError::MalformedMessage { member: peer })?,
                    _ => return Err(ProtocolError::MalformedMessage { member: peer }.into()),
                };
                if m.snps() != l_double_prime.len() {
                    return Err(ProtocolError::MalformedMessage { member: peer }.into());
                }
                ctx.enclave
                    .enter(|(), epc| epc.alloc(m.heap_bytes() as u64));
                parts.push(m);
            }
            let (safe, freed) = ctx.enclave.enter(|(), epc| {
                let case_matrix = LrMatrix::concat_rows(&parts);
                epc.alloc(case_matrix.heap_bytes() as u64);
                let null_matrix =
                    LrMatrix::from_genotypes(reference, &l_double_prime, &case_freqs, &ref_freqs);
                epc.alloc(null_matrix.heap_bytes() as u64);
                let safe = run_lr_test_threads(
                    &l_double_prime,
                    &case_matrix,
                    &null_matrix,
                    &ranks,
                    &params.lr,
                    SelectionKernel::Fast,
                    ctx.threads,
                );
                let freed = case_matrix.heap_bytes() as u64 + null_matrix.heap_bytes() as u64;
                (safe, freed)
            });
            let part_bytes: u64 = parts.iter().map(|p| p.heap_bytes() as u64).sum();
            ctx.enclave.enter(|(), epc| epc.free(freed + part_bytes));
            safe
        };
        lr_selections.push(safe);
    }
    let safe_snps = intersect_selections(&lr_selections);
    timings.lr += t.elapsed();
    crate::telemetry::phase_seconds("lr").observe_duration(t.elapsed());

    // ---- Audit certificate (issued inside the leader enclave) ----
    let full = &maf_outcomes[0];
    let roster_u32: Vec<u32> = roster.iter().map(|&m| m as u32).collect();
    let certificate = AssessmentCertificate::issue(
        &ctx.enclave,
        &AssessmentFacts {
            params,
            gdo_count: g,
            panel_len,
            case_counts: &full.case_counts,
            n_case: full.n_case,
            ref_counts: &full.ref_counts,
            n_ref: full.n_ref,
            safe: &safe_snps,
            evaluations: subsets.len() as u64,
            epoch: ctx.epoch,
            roster: &roster_u32,
            context: None,
        },
    );

    // ---- Final broadcast ----
    let phase3 = ProtocolMessage::Phase3(Phase3Broadcast {
        safe: safe_snps.iter().map(|s| s.0).collect(),
    });
    for &peer in &roster {
        if peer != me {
            let channel = channels.get_mut(&peer).expect("channel");
            send_protocol(ctx, channel, peer, &phase3)?;
        }
    }

    Ok(ThreadReport {
        peak_enclave_bytes: ctx.enclave.epc().peak(),
        ecalls: ctx.enclave.ecalls(),
        leader: me,
        outcome: Some((l_prime, l_double_prime, safe_snps.clone())),
        safe_seen: safe_snps,
        timings,
        certificate: Some(certificate),
    })
}

pub(crate) fn abort_all<T: Transport>(
    ctx: &mut MemberCtx<T>,
    channels: &mut HashMap<usize, SecureChannel>,
    err: &ProtocolError,
) {
    let msg = match err {
        ProtocolError::QuorumLost {
            epoch,
            survivors,
            required,
        } => ProtocolMessage::QuorumLost {
            epoch: *epoch,
            survivors: *survivors as u32,
            required: *required as u32,
        },
        _ => ProtocolMessage::Abort(err.to_string()),
    };
    let peers: Vec<usize> = channels.keys().copied().collect();
    for peer in peers {
        let channel = channels.get_mut(&peer).expect("iterating keys");
        let _ = send_protocol(ctx, channel, peer, &msg);
    }
}

fn follower_main<T: Transport>(
    ctx: &mut MemberCtx<T>,
    node: &GdoNode,
    leader: usize,
    own_counts: &CountsReport,
) -> Result<ThreadReport, Interrupt> {
    let mut channel = establish_channel(ctx, leader)?;

    send_protocol(
        ctx,
        &mut channel,
        leader,
        &ProtocolMessage::Counts(own_counts.clone()),
    )?;

    let safe = follower_serve(ctx, node, &mut channel, leader)?;
    Ok(ThreadReport {
        peak_enclave_bytes: ctx.enclave.epc().peak(),
        ecalls: ctx.enclave.ecalls(),
        leader,
        outcome: None,
        safe_seen: safe,
        timings: PhaseTimings::default(),
        certificate: None,
    })
}

/// Serves one assessment as a follower: answers the leader's moments
/// queries and LR-matrix requests over the attested channel until the
/// final Phase 3 broadcast arrives, and returns the safe set it carried.
/// Shared between the one-shot [`follower_main`] and the long-lived
/// service session loop in [`crate::serving`], so a service job follows
/// byte-for-byte the same message schedule as a standalone run.
pub(crate) fn follower_serve<T: Transport>(
    ctx: &mut MemberCtx<T>,
    node: &GdoNode,
    channel: &mut SecureChannel,
    leader: usize,
) -> Result<Vec<SnpId>, Interrupt> {
    loop {
        match recv_protocol(ctx, channel, leader, "awaiting-leader")? {
            ProtocolMessage::Phase1(_) => {
                // Informational: L' arrives before the moments queries.
            }
            ProtocolMessage::MomentsRequest(pairs) => {
                let reports: Vec<MomentsReport> = pairs
                    .iter()
                    .map(|p| node.ld_moments(SnpId(p.a), SnpId(p.b)))
                    .collect();
                send_protocol(ctx, channel, leader, &ProtocolMessage::Moments(reports))?;
            }
            ProtocolMessage::Phase2(combo, broadcast) => {
                let snps: Vec<SnpId> = broadcast.retained.iter().map(|&s| SnpId(s)).collect();
                if ctx.compact_lr {
                    let report = ctx.enclave.enter(|(), epc| {
                        let r = node.lr_report_compact(&snps);
                        epc.alloc(8 * r.bits.len() as u64);
                        r
                    });
                    let bytes = 8 * report.bits.len() as u64;
                    send_protocol(
                        ctx,
                        channel,
                        leader,
                        &ProtocolMessage::LrCompact(combo, report),
                    )?;
                    ctx.enclave.enter(|(), epc| epc.free(bytes));
                } else {
                    let report = ctx.enclave.enter(|(), epc| {
                        let r = node.lr_report(&snps, &broadcast.case_freqs, &broadcast.ref_freqs);
                        epc.alloc(8 * r.values.len() as u64);
                        r
                    });
                    let bytes = 8 * report.values.len() as u64;
                    send_protocol(ctx, channel, leader, &ProtocolMessage::Lr(combo, report))?;
                    ctx.enclave.enter(|(), epc| epc.free(bytes));
                }
            }
            ProtocolMessage::Phase3(broadcast) => {
                return Ok(broadcast.safe.into_iter().map(SnpId).collect());
            }
            ProtocolMessage::QuorumLost {
                epoch,
                survivors,
                required,
            } => {
                return Err(ProtocolError::QuorumLost {
                    epoch,
                    survivors: survivors as usize,
                    required: required as usize,
                }
                .into());
            }
            ProtocolMessage::Abort(reason) => {
                return Err(ProtocolError::MemberUnresponsive {
                    member: leader,
                    phase: if reason.is_empty() {
                        "aborted"
                    } else {
                        "aborted-by-leader"
                    },
                }
                .into());
            }
            _ => return Err(ProtocolError::MalformedMessage { member: leader }.into()),
        }
    }
}

/// Serves one shard-scoped assessment as a follower: answers the shard
/// leader's moments queries until the `ShardDone` broadcast. Shard lanes
/// never run Phase 2/3 (the LR intersection search runs once, globally,
/// on the merged state), so only the oracle arm is live here.
pub(crate) fn follower_serve_shard<T: Transport>(
    ctx: &mut MemberCtx<T>,
    node: &GdoNode,
    channel: &mut SecureChannel,
    leader: usize,
) -> Result<(), Interrupt> {
    loop {
        match recv_protocol(ctx, channel, leader, "shard-serve")? {
            ProtocolMessage::MomentsRequest(pairs) => {
                let reports: Vec<MomentsReport> = pairs
                    .iter()
                    .map(|p| node.ld_moments(SnpId(p.a), SnpId(p.b)))
                    .collect();
                send_protocol(ctx, channel, leader, &ProtocolMessage::Moments(reports))?;
            }
            ProtocolMessage::ShardDone => return Ok(()),
            ProtocolMessage::QuorumLost {
                epoch,
                survivors,
                required,
            } => {
                return Err(ProtocolError::QuorumLost {
                    epoch,
                    survivors: survivors as usize,
                    required: required as usize,
                }
                .into());
            }
            ProtocolMessage::Abort(reason) => {
                return Err(ProtocolError::MemberUnresponsive {
                    member: leader,
                    phase: if reason.is_empty() {
                        "aborted"
                    } else {
                        "aborted-by-leader"
                    },
                }
                .into());
            }
            _ => return Err(ProtocolError::MalformedMessage { member: leader }.into()),
        }
    }
}

/// Runs the full threaded deployment over `cohort`.
///
/// `faults` optionally injects crashes/partitions; `timeout` bounds every
/// wait (a silent member aborts the protocol, per the paper's liveness
/// caveat).
///
/// # Errors
///
/// Configuration errors, [`ProtocolError::MemberUnresponsive`] under
/// faults, or [`ProtocolError::SecurityFailure`] if attestation fails.
pub fn run_federation(
    config: FederationConfig,
    params: GwasParams,
    cohort: impl AsRef<Cohort>,
    faults: Option<FaultPlan>,
    timeout: Duration,
) -> Result<RuntimeReport, ProtocolError> {
    run_federation_with(
        config,
        params,
        cohort,
        faults,
        RuntimeOptions {
            timeout,
            ..RuntimeOptions::default()
        },
    )
}

/// [`run_federation`] with explicit [`RuntimeOptions`].
///
/// Deploys over the in-memory [`Network`]; use [`run_federation_over`] to
/// supply your own transports (e.g. [`gendpr_fednet::tcp::TcpTransport`])
/// and [`run_member`] to run a single member in its own process.
///
/// # Errors
///
/// Same conditions as [`run_federation`].
pub fn run_federation_with(
    config: FederationConfig,
    params: GwasParams,
    cohort: impl AsRef<Cohort>,
    faults: Option<FaultPlan>,
    options: RuntimeOptions,
) -> Result<RuntimeReport, ProtocolError> {
    config.validate().map_err(ProtocolError::InvalidConfig)?;
    let network = Network::new();
    if let Some(f) = faults {
        network.set_faults(f);
    }
    // Register every endpoint before any thread runs: a member must never
    // observe a federation where a peer does not exist yet.
    let transports: Vec<Endpoint> = (0..config.gdo_count)
        .map(|id| network.register(PeerId(id as u32)))
        .collect();
    run_federation_over(transports, config, params, cohort, options)
}

/// What one member observed during a federation run — the unit returned
/// by [`run_member`] and aggregated by [`run_federation_over`].
#[derive(Debug, Clone)]
pub struct MemberOutcome {
    /// This member's index.
    pub id: usize,
    /// The leader this member elected (in the final epoch).
    pub leader: usize,
    /// The safe set this member learned (identical at every honest member).
    pub safe_snps: Vec<SnpId>,
    /// MAF survivors — populated only at the leader.
    pub l_prime: Option<Vec<SnpId>>,
    /// LD survivors — populated only at the leader.
    pub l_double_prime: Option<Vec<SnpId>>,
    /// The enclave-signed certificate — produced only at the leader.
    pub certificate: Option<AssessmentCertificate>,
    /// Leader-side phase timings (zero at followers).
    pub timings: PhaseTimings,
    /// Enclave resource usage of this member.
    pub resources: MemberResources,
    /// Bytes this member put on the wire.
    pub egress: TrafficStats,
    /// Bytes this member received off the wire.
    pub ingress: TrafficStats,
    /// Outbound per-link stats, `(peer, stats)` for every other member.
    pub links: Vec<(u32, TrafficStats)>,
    /// Epoch in which this member finished.
    pub epoch: u64,
    /// Surviving roster of that epoch.
    pub roster: Vec<usize>,
}

/// Runs a single federation member over an arbitrary [`Transport`].
///
/// This is the body of one `run_federation` thread, exposed so a real
/// deployment (the `gendpr node` daemon) can run each member in its own
/// process. All per-member secrets — the attestation root, platform keys
/// and the member's protocol RNG — are derived from `config.seed` with
/// the exact fork sequence `run_federation_over` uses, so G independent
/// processes sharing a seed reconstruct one consistent federation and
/// produce bit-identical results to the threaded deployment.
///
/// `shard` is this member's case-cohort slice (shard `member` of
/// [`Cohort::split_case_among`] with `config.gdo_count` shards);
/// `reference` is the public reference panel every member holds.
///
/// # Errors
///
/// Configuration errors, [`ProtocolError::MemberUnresponsive`] when a
/// peer stays silent past `options.timeout` with recovery disabled,
/// [`ProtocolError::QuorumLost`] when too many members crashed for a new
/// epoch to form, [`ProtocolError::Evicted`] when the survivors re-formed
/// without this member, or [`ProtocolError::SecurityFailure`] if
/// attestation fails.
/// Validates the configuration and builds one member's protocol context:
/// the enclave, the deterministic per-member secrets and the frame
/// sequencing state. The fork order of the derivation must match
/// `run_federation_over` exactly: attestation service first, then a
/// (platform, member) RNG pair per member in id order — this is what lets
/// G independent processes (or a restarted service daemon) sharing a seed
/// reconstruct one consistent federation.
pub(crate) fn build_member_ctx<T: Transport>(
    transport: T,
    member: usize,
    config: &FederationConfig,
    params: &GwasParams,
    options: RuntimeOptions,
) -> Result<MemberCtx<T>, ProtocolError> {
    config.validate().map_err(ProtocolError::InvalidConfig)?;
    params.validate().map_err(ProtocolError::InvalidConfig)?;
    let g = config.gdo_count;
    if member >= g {
        return Err(ProtocolError::InvalidConfig("member id out of range"));
    }

    let mut master = ChaChaRng::from_seed_u64(config.seed);
    let service = AttestationService::new(&mut master.fork("attestation-service"));
    let mut keys = None;
    for id in 0..=member {
        let platform_rng = master.fork("platform");
        let member_rng = master.fork(&format!("member-{id}"));
        if id == member {
            keys = Some((platform_rng, member_rng));
        }
    }
    let (mut platform_rng, rng) = keys.expect("loop visits `member`");
    let platform = Platform::new(&format!("gdo-{member}"), &service, &mut platform_rng);
    let enclave =
        platform.launch_enclave_with_config(CODE_IDENTITY, &measurement_config(params), ());

    Ok(MemberCtx {
        id: member,
        g,
        endpoint: transport,
        enclave,
        rng,
        timeout: options.timeout,
        compact_lr: options.compact_lr,
        prefetch_ld: options.prefetch_ld,
        threads: if options.threads == 0 {
            crate::pool::available_parallelism()
        } else {
            options.threads
        },
        recovery: options.recovery,
        collusion: config.collusion,
        expected: expected_measurement(params),
        epoch: 1,
        roster: (0..g).collect(),
        send_seq: HashMap::new(),
        recv_next: HashMap::new(),
        pending: HashMap::new(),
        future: HashMap::new(),
        heard: HashMap::new(),
        backlog: HashMap::new(),
    })
}

#[allow(clippy::needless_pass_by_value)] // the transport is consumed by the run
pub fn run_member<T: Transport>(
    transport: T,
    member: usize,
    config: &FederationConfig,
    params: &GwasParams,
    options: RuntimeOptions,
    shard: GenotypeMatrix,
    reference: &GenotypeMatrix,
) -> Result<MemberOutcome, ProtocolError> {
    let mut ctx = build_member_ctx(transport, member, config, params, options)?;
    let g = config.gdo_count;
    let node = GdoNode::new(member, shard);
    // Member-side checkpoint: the counts report is computed once and
    // survives view changes (Phase 1/2 selections are deterministic given
    // the reports, so re-running an epoch needs nothing else).
    let own_counts = ctx.enclave.enter(|(), epc| {
        let report = node.counts_report();
        epc.alloc(8 * report.counts.len() as u64);
        report
    });

    let report = loop {
        let result = match run_election(&mut ctx) {
            Ok(leader) if leader == member => {
                leader_main(&mut ctx, &node, reference, config, params, &own_counts)
            }
            Ok(leader) => follower_main(&mut ctx, &node, leader, &own_counts),
            Err(intr) => Err(intr),
        };
        match result {
            Ok(report) => break report,
            Err(Interrupt::Fatal(e)) => return Err(e),
            Err(Interrupt::NewView {
                epoch,
                roster,
                announce,
            }) => {
                ctx.begin_epoch(epoch, roster, announce);
            }
        }
    };
    let egress = ctx.endpoint.egress_stats();
    let ingress = ctx.endpoint.ingress_stats();
    let links = (0..g)
        .filter(|&peer| peer != member)
        .map(|peer| (peer as u32, ctx.endpoint.link_stats(PeerId(peer as u32))))
        .collect();
    let (l_prime, l_double_prime) = match report.outcome {
        Some((lp, ld, _)) => (Some(lp), Some(ld)),
        None => (None, None),
    };
    Ok(MemberOutcome {
        id: member,
        leader: report.leader,
        safe_snps: report.safe_seen,
        l_prime,
        l_double_prime,
        certificate: report.certificate,
        timings: report.timings,
        resources: MemberResources {
            id: member,
            peak_enclave_bytes: report.peak_enclave_bytes,
            ecalls: report.ecalls,
        },
        egress,
        ingress,
        links,
        epoch: ctx.epoch,
        roster: ctx.roster,
    })
}

/// Runs the full deployment over caller-supplied transports, one per
/// member in id order (transport `i` must report `PeerId(i)`).
///
/// [`run_federation_with`] is this function applied to a fresh in-memory
/// [`Network`]; passing [`gendpr_fednet::tcp::TcpTransport`]s instead
/// runs the same protocol over real sockets.
///
/// With recovery enabled ([`RecoveryOptions::max_epochs`] above one) the
/// run tolerates member crashes: as long as one epoch completes with a
/// certificate, the report is returned with the casualties listed in
/// [`RuntimeReport::failed`] and the certificate stamped with the final
/// epoch and surviving roster.
///
/// # Errors
///
/// Same conditions as [`run_federation`], plus
/// [`ProtocolError::InvalidConfig`] if the transports do not line up with
/// the configured member count, and [`ProtocolError::QuorumLost`] when
/// too many members fail for any epoch to complete.
pub fn run_federation_over<T: Transport + 'static>(
    transports: Vec<T>,
    config: FederationConfig,
    params: GwasParams,
    cohort: impl AsRef<Cohort>,
    options: RuntimeOptions,
) -> Result<RuntimeReport, ProtocolError> {
    config.validate().map_err(ProtocolError::InvalidConfig)?;
    params.validate().map_err(ProtocolError::InvalidConfig)?;
    let cohort = cohort.as_ref();
    if cohort.panel().is_empty() || cohort.reference_individuals() == 0 {
        return Err(ProtocolError::EmptyStudy);
    }
    let g = config.gdo_count;
    if transports.len() != g {
        return Err(ProtocolError::InvalidConfig("one transport per member"));
    }
    if transports
        .iter()
        .enumerate()
        .any(|(id, t)| t.id() != PeerId(id as u32))
    {
        return Err(ProtocolError::InvalidConfig(
            "transports must be ordered by member id",
        ));
    }
    let reference = Arc::new(cohort.reference().clone());
    let shards = cohort.split_case_among(g);
    let start = Instant::now();

    let mut handles = Vec::with_capacity(g);
    for (id, (transport, shard)) in transports.into_iter().zip(shards).enumerate() {
        let reference = Arc::clone(&reference);
        let handle = std::thread::spawn(move || -> Result<MemberOutcome, ProtocolError> {
            run_member(transport, id, &config, &params, options, shard, &reference)
        });
        handles.push(handle);
    }

    let mut outcomes = Vec::with_capacity(g);
    let mut failures: Vec<(usize, ProtocolError)> = Vec::new();
    for (id, handle) in handles.into_iter().enumerate() {
        match handle.join().expect("member thread must not panic") {
            Ok(outcome) => outcomes.push(outcome),
            Err(e) => failures.push((id, e)),
        }
    }

    let Some(leader_outcome) = outcomes.iter().find(|o| o.certificate.is_some()) else {
        // No epoch completed. Report the most precise root cause: a quorum
        // loss beats a generic timeout, which beats transport noise.
        let root = failures
            .iter()
            .map(|(_, e)| e)
            .find(|e| matches!(e, ProtocolError::QuorumLost { .. }))
            .or_else(|| {
                failures.iter().map(|(_, e)| e).find(|e| {
                    !matches!(
                        e,
                        ProtocolError::MemberUnresponsive {
                            phase: "transport",
                            ..
                        }
                    )
                })
            })
            .or_else(|| failures.first().map(|(_, e)| e))
            .cloned()
            .unwrap_or(ProtocolError::InvalidConfig(
                "no member produced a certificate",
            ));
        return Err(root);
    };

    let leader = leader_outcome.leader;
    let final_epoch = leader_outcome.epoch;
    let l_prime = leader_outcome.l_prime.clone().expect("leader outcome");
    let l_double_prime = leader_outcome
        .l_double_prime
        .clone()
        .expect("leader produced both survivor sets");
    let safe_snps = leader_outcome.safe_snps.clone();
    let timings = leader_outcome.timings;
    let certificate = leader_outcome
        .certificate
        .clone()
        .expect("found by certificate presence");
    // Every member that finished the final epoch must agree.
    let mut traffic = TrafficStats::default();
    for o in &outcomes {
        if o.epoch == final_epoch {
            assert_eq!(
                o.safe_snps, safe_snps,
                "member {} disagrees on L_safe",
                o.id
            );
            assert_eq!(o.leader, leader, "member {} disagrees on the leader", o.id);
        }
        traffic.merge(&o.egress);
    }
    outcomes.sort_by_key(|o| o.id);
    let resources = outcomes.iter().map(|o| o.resources).collect();
    let failed: Vec<usize> = failures.iter().map(|&(id, _)| id).collect();

    Ok(RuntimeReport {
        leader,
        l_prime,
        l_double_prime,
        safe_snps,
        traffic,
        resources,
        elapsed: start.elapsed(),
        timings,
        certificate: certificate.clone(),
        epoch: final_epoch,
        roster: certificate.roster,
        failed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CollusionMode;
    use crate::protocol::Federation;
    use gendpr_genomics::synth::SyntheticCohort;

    fn cohort(snps: usize, n: usize) -> SyntheticCohort {
        SyntheticCohort::builder()
            .snps(snps)
            .case_individuals(n)
            .reference_individuals(n)
            .seed(31)
            .build()
    }

    const TIMEOUT: Duration = Duration::from_secs(20);

    #[test]
    fn threaded_run_matches_in_process_driver() {
        let c = cohort(150, 180);
        let config = FederationConfig::new(3).with_seed(4);
        let params = GwasParams::secure_genome_defaults();
        let threaded = run_federation(config, params, &c, None, TIMEOUT).unwrap();
        let in_process = Federation::new(config, params, &c).run().unwrap();
        assert_eq!(threaded.l_prime, in_process.l_prime);
        assert_eq!(threaded.l_double_prime, in_process.l_double_prime);
        assert_eq!(threaded.safe_snps, in_process.safe_snps);
        assert!(threaded.traffic.messages > 0);
        assert!(threaded.traffic.wire_bytes > threaded.traffic.plaintext_bytes);
        assert_eq!(threaded.resources.len(), 3);
        assert!(threaded.resources.iter().all(|r| r.peak_enclave_bytes > 0));
        assert_eq!(threaded.epoch, 1, "crash-free run stays in epoch 1");
        assert_eq!(threaded.roster, vec![0, 1, 2]);
        assert!(threaded.failed.is_empty());
        assert_eq!(threaded.certificate.epoch, 1);
    }

    #[test]
    fn collusion_tolerant_threaded_run() {
        let c = cohort(100, 120);
        let config = FederationConfig::new(3)
            .with_collusion(CollusionMode::Fixed(1))
            .with_seed(7);
        let params = GwasParams::secure_genome_defaults();
        let threaded = run_federation(config, params, &c, None, TIMEOUT).unwrap();
        let in_process = Federation::new(config, params, &c).run().unwrap();
        assert_eq!(threaded.safe_snps, in_process.safe_snps);
    }

    #[test]
    fn certificate_verifies_against_recomputed_facts() {
        // The harness plays the auditor: rebuild the facts from the raw
        // data and check the leader's certificate against them. The
        // attestation service must be derived from the same seed the
        // runtime used.
        let c = cohort(80, 200);
        let config = FederationConfig::new(3).with_seed(5);
        let params = GwasParams::secure_genome_defaults();
        let report = run_federation(config, params, &c, None, TIMEOUT).unwrap();

        let mut master = ChaChaRng::from_seed_u64(config.seed);
        let service = AttestationService::new(&mut master.fork("attestation-service"));
        let facts = crate::certificate::AssessmentFacts {
            params: &params,
            gdo_count: 3,
            panel_len: c.panel().len(),
            case_counts: &c.case().column_counts(),
            n_case: c.case().individuals() as u64,
            ref_counts: &c.reference().column_counts(),
            n_ref: c.reference().individuals() as u64,
            safe: &report.safe_snps,
            evaluations: 1,
            epoch: 1,
            roster: &[0, 1, 2],
            context: None,
        };
        report
            .certificate
            .verify(&service, &expected_measurement(&params), &facts)
            .expect("genuine certificate verifies");

        // Claiming a different safe set fails.
        let mut wrong = facts;
        let other: Vec<SnpId> = report.safe_snps.iter().take(1).copied().collect();
        wrong.safe = &other;
        assert!(report
            .certificate
            .verify(&service, &expected_measurement(&params), &wrong)
            .is_err());
    }

    #[test]
    fn compact_lr_mode_selects_identically_with_less_traffic() {
        let c = cohort(90, 400);
        let config = FederationConfig::new(3).with_seed(2);
        let params = GwasParams::secure_genome_defaults();
        let dense = run_federation(config, params, &c, None, TIMEOUT).unwrap();
        let compact = run_federation_with(
            config,
            params,
            &c,
            None,
            RuntimeOptions {
                timeout: TIMEOUT,
                compact_lr: true,
                ..RuntimeOptions::default()
            },
        )
        .unwrap();
        assert_eq!(dense.safe_snps, compact.safe_snps);
        assert_eq!(dense.l_double_prime, compact.l_double_prime);
        assert!(
            compact.traffic.wire_bytes < dense.traffic.wire_bytes,
            "compact {} vs dense {}",
            compact.traffic.wire_bytes,
            dense.traffic.wire_bytes
        );
    }

    #[test]
    fn prefetch_ld_mode_selects_identically_with_fewer_messages() {
        let c = cohort(120, 300);
        let config = FederationConfig::new(3).with_seed(6);
        let params = GwasParams::secure_genome_defaults();
        let plain = run_federation(config, params, &c, None, TIMEOUT).unwrap();
        let prefetch = run_federation_with(
            config,
            params,
            &c,
            None,
            RuntimeOptions {
                timeout: TIMEOUT,
                prefetch_ld: true,
                ..RuntimeOptions::default()
            },
        )
        .unwrap();
        assert_eq!(plain.safe_snps, prefetch.safe_snps);
        assert_eq!(plain.l_double_prime, prefetch.l_double_prime);
        assert!(
            prefetch.traffic.messages < plain.traffic.messages,
            "prefetch {} vs per-pair {}",
            prefetch.traffic.messages,
            plain.traffic.messages
        );
    }

    #[test]
    fn all_optimizations_together_still_match_the_driver() {
        let c = cohort(100, 250);
        let config = FederationConfig::new(4)
            .with_collusion(CollusionMode::Fixed(1))
            .with_seed(3);
        let params = GwasParams::secure_genome_defaults();
        let optimized = run_federation_with(
            config,
            params,
            &c,
            None,
            RuntimeOptions {
                timeout: TIMEOUT,
                compact_lr: true,
                prefetch_ld: true,
                ..RuntimeOptions::default()
            },
        )
        .unwrap();
        let in_process = Federation::new(config, params, &c).run().unwrap();
        assert_eq!(optimized.safe_snps, in_process.safe_snps);
    }

    #[test]
    fn compact_mode_slashes_leader_enclave_memory() {
        let c = cohort(150, 800);
        let config = FederationConfig::new(3).with_seed(2);
        let params = GwasParams::secure_genome_defaults();
        let dense = run_federation(config, params, &c, None, TIMEOUT).unwrap();
        let compact = run_federation_with(
            config,
            params,
            &c,
            None,
            RuntimeOptions {
                timeout: TIMEOUT,
                compact_lr: true,
                ..RuntimeOptions::default()
            },
        )
        .unwrap();
        assert_eq!(dense.safe_snps, compact.safe_snps);
        let peak = |r: &RuntimeReport| {
            r.resources
                .iter()
                .find(|m| m.id == r.leader)
                .unwrap()
                .peak_enclave_bytes
        };
        assert!(
            peak(&compact) * 4 < peak(&dense),
            "compact leader peak {} vs dense {}",
            peak(&compact),
            peak(&dense)
        );
    }

    #[test]
    fn crashed_member_aborts_with_unresponsive_error() {
        // Default options: max_epochs = 1, the paper's no-liveness abort.
        let c = cohort(60, 80);
        let mut faults = FaultPlan::none();
        faults.crash(2);
        let err = run_federation(
            FederationConfig::new(3),
            GwasParams::secure_genome_defaults(),
            &c,
            Some(faults),
            Duration::from_millis(400),
        )
        .unwrap_err();
        assert!(
            matches!(err, ProtocolError::MemberUnresponsive { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn crashed_member_is_survived_with_recovery_enabled() {
        // Same crash, but with an epoch budget: the survivors re-form and
        // finish, and the certificate says so.
        let c = cohort(60, 80);
        let mut faults = FaultPlan::none();
        faults.crash(2);
        let config = FederationConfig::new(3)
            .with_collusion(CollusionMode::Fixed(1))
            .with_seed(9);
        let report = run_federation_with(
            config,
            GwasParams::secure_genome_defaults(),
            &c,
            Some(faults),
            RuntimeOptions {
                timeout: Duration::from_millis(400),
                recovery: RecoveryOptions {
                    max_epochs: 4,
                    ..RecoveryOptions::default()
                },
                ..RuntimeOptions::default()
            },
        )
        .unwrap();
        assert!(report.epoch >= 2, "a view change must have happened");
        assert_eq!(report.roster, vec![0, 1]);
        assert_eq!(report.failed, vec![2]);
        assert_eq!(report.certificate.roster, vec![0, 1]);
        assert!(report.certificate.epoch >= 2);
        assert!(!report.roster.contains(&2));
    }

    #[test]
    fn quorum_loss_is_reported_precisely() {
        // Two of three members crash; even with recovery the survivor
        // cannot form a quorum.
        let c = cohort(60, 80);
        let mut faults = FaultPlan::none();
        faults.crash(1);
        faults.crash(2);
        let config = FederationConfig::new(3)
            .with_collusion(CollusionMode::Fixed(1))
            .with_seed(9);
        let err = run_federation_with(
            config,
            GwasParams::secure_genome_defaults(),
            &c,
            Some(faults),
            RuntimeOptions {
                timeout: Duration::from_millis(300),
                recovery: RecoveryOptions {
                    max_epochs: 6,
                    ..RecoveryOptions::default()
                },
                ..RuntimeOptions::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, ProtocolError::QuorumLost { .. }),
            "expected QuorumLost, got {err:?}"
        );
    }

    #[test]
    fn two_member_federation_works() {
        let c = cohort(80, 100);
        let report = run_federation(
            FederationConfig::new(2).with_seed(1),
            GwasParams::secure_genome_defaults(),
            &c,
            None,
            TIMEOUT,
        )
        .unwrap();
        assert!(report.leader < 2);
        assert!(!report.l_prime.is_empty());
    }
}
