//! Special functions implemented from scratch.
//!
//! Everything downstream — χ² p-values, LD significance, LR-test
//! thresholds — reduces to the regularized incomplete gamma function and
//! the normal distribution, so those are implemented here once, carefully,
//! and validated against published values.

use std::f64::consts::PI;

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 over the positive reals.
///
/// # Panics
///
/// Panics if `x <= 0` (reflection is not needed by this crate).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        return (PI / (PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// `x >= a + 1` (Numerical Recipes `gammp`).
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
#[must_use]
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
#[must_use]
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0");
    assert!(x >= 0.0, "gamma_q requires x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cf(a, x)
    }
}

fn gamma_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 3e-15;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_cf(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 3e-15;
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Survival function of the chi-square distribution with `df` degrees of
/// freedom: `P(X > x)`.
///
/// # Panics
///
/// Panics if `df == 0` or `x < 0`.
#[must_use]
pub fn chi2_sf(x: f64, df: u32) -> f64 {
    assert!(df > 0, "degrees of freedom must be positive");
    assert!(x >= 0.0, "chi-square statistic must be non-negative");
    gamma_q(f64::from(df) / 2.0, x / 2.0)
}

/// The error function `erf(x)`.
#[must_use]
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        -erf(-x)
    } else if x == 0.0 {
        0.0
    } else {
        gamma_p(0.5, x * x)
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        2.0 - erfc(-x)
    } else if x == 0.0 {
        1.0
    } else {
        gamma_q(0.5, x * x)
    }
}

/// Standard normal cumulative distribution function.
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal survival function `P(Z > x)`.
#[must_use]
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Inverse of the standard normal CDF (quantile function), Acklam's
/// rational approximation refined by one Halley step (~1e-15 accurate).
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement against the true CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Wilson score interval for a binomial proportion — the right way to put
/// error bars on an empirically estimated attack power or false-positive
/// rate (plain Wald intervals misbehave near 0 and 1).
///
/// Returns `(low, high)` at the given confidence level.
///
/// # Panics
///
/// Panics if `successes > trials`, `trials == 0`, or `confidence` is not
/// in `(0, 1)`.
#[must_use]
pub fn wilson_interval(successes: u64, trials: u64, confidence: f64) -> (f64, f64) {
    assert!(trials > 0, "need at least one trial");
    assert!(successes <= trials, "successes cannot exceed trials");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    let z = normal_quantile(0.5 + confidence / 2.0);
    let n = trials as f64;
    let p_hat = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p_hat + z2 / (2.0 * n)) / denom;
    let half = z / denom * (p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Empirical quantile of a sample (linear interpolation between order
/// statistics, the common "type 7" estimator).
///
/// # Panics
///
/// Panics if the sample is empty or `q` is outside `[0, 1]`.
#[must_use]
pub fn empirical_quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "sample must be sorted"
    );
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n as f64 - 1.0);
    let lo = h.floor() as usize;
    let hi = (lo + 1).min(n - 1);
    let frac = h - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(0.5), (PI).sqrt().ln(), 1e-12);
        close(ln_gamma(5.0), 24f64.ln(), 1e-11);
        close(ln_gamma(10.0), 362_880f64.ln(), 1e-10);
        // Gamma(0.1) = 9.513507698668731836...
        close(ln_gamma(0.1), 9.513_507_698_668_73_f64.ln(), 1e-10);
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for a in [0.5, 1.0, 2.5, 10.0] {
            for x in [0.1, 0.9, 1.0, 3.0, 15.0] {
                close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - exp(-x).
        for x in [0.1, 1.0, 2.0, 5.0] {
            close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn chi2_sf_published_values() {
        // df=1: P(X > 3.841) ≈ 0.05; P(X > 6.635) ≈ 0.01.
        close(chi2_sf(3.841_458_820_694_124, 1), 0.05, 1e-9);
        close(chi2_sf(6.634_896_601_021_214, 1), 0.01, 1e-9);
        // df=2: sf(x) = exp(-x/2).
        close(chi2_sf(4.0, 2), (-2.0f64).exp(), 1e-12);
        // df=5: P(X > 11.0705) ≈ 0.05.
        close(chi2_sf(11.070_497_693_516_35, 5), 0.05, 1e-9);
        // Extreme tail used by GWAS significance (p < 1e-8 territory).
        let p = chi2_sf(32.841, 1);
        assert!(p > 0.9e-8 && p < 1.1e-8, "p = {p}");
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-12);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-12);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-12);
        close(erfc(1.0), 1.0 - 0.842_700_792_949_714_9, 1e-12);
        close(erfc(-2.0), 2.0 - erfc(2.0), 1e-12);
    }

    #[test]
    fn normal_cdf_known_values() {
        close(normal_cdf(0.0), 0.5, 1e-15);
        close(normal_cdf(1.959_963_984_540_054), 0.975, 1e-12);
        close(normal_cdf(-1.959_963_984_540_054), 0.025, 1e-12);
        close(normal_cdf(1.644_853_626_951_472_6), 0.95, 1e-12);
        close(normal_sf(1.281_551_565_544_600_5), 0.1, 1e-12);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for p in [1e-10, 1e-6, 0.01, 0.1, 0.5, 0.9, 0.975, 0.999_999] {
            let x = normal_quantile(p);
            close(normal_cdf(x), p, 1e-12);
        }
        close(normal_quantile(0.975), 1.959_963_984_540_054, 1e-9);
        close(normal_quantile(0.5), 0.0, 1e-12);
    }

    #[test]
    fn empirical_quantile_behaviour() {
        let sample = [1.0, 2.0, 3.0, 4.0, 5.0];
        close(empirical_quantile(&sample, 0.0), 1.0, 1e-15);
        close(empirical_quantile(&sample, 1.0), 5.0, 1e-15);
        close(empirical_quantile(&sample, 0.5), 3.0, 1e-15);
        close(empirical_quantile(&sample, 0.25), 2.0, 1e-15);
        close(empirical_quantile(&[7.0], 0.3), 7.0, 1e-15);
    }

    #[test]
    fn wilson_interval_known_values() {
        // 8/10 successes at 95%: Wilson interval ≈ (0.490, 0.943).
        let (lo, hi) = wilson_interval(8, 10, 0.95);
        close(lo, 0.490, 0.01);
        close(hi, 0.943, 0.01);
        // Extreme proportions stay inside [0, 1] and are non-degenerate.
        let (lo, hi) = wilson_interval(0, 20, 0.95);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.3);
        let (lo, hi) = wilson_interval(20, 20, 0.95);
        assert!(lo > 0.7 && lo < 1.0);
        assert_eq!(hi, 1.0);
        // More trials tighten the interval.
        let (l1, h1) = wilson_interval(50, 100, 0.95);
        let (l2, h2) = wilson_interval(500, 1000, 0.95);
        assert!(h2 - l2 < h1 - l1);
    }

    #[test]
    #[should_panic(expected = "successes cannot exceed trials")]
    fn wilson_rejects_inconsistent_counts() {
        let _ = wilson_interval(5, 4, 0.95);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empirical_quantile_empty_panics() {
        let _ = empirical_quantile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "p in (0,1)")]
    fn quantile_rejects_bounds() {
        let _ = normal_quantile(0.0);
    }
}
