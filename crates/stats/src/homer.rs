//! Homer et al.'s distance-based membership statistic.
//!
//! The original membership-inference attack on GWAS releases (Homer et
//! al. 2008, cited as \[24\] in the paper) compares a victim's alleles with
//! the released case frequencies and a reference panel:
//!
//! `D(victim) = Σ_l ( |x_l − p_l| − |x_l − p̂_l| )`
//!
//! where `p̂` is the released case frequency and `p` the reference
//! frequency. Positive `D` means the victim resembles the case pool more
//! than the reference. SecureGenome's authors showed the LR-test strictly
//! dominates this statistic; this module exists so that claim can be
//! reproduced (see the `attack` module of `gendpr-core` and the
//! `lr_vs_homer` integration tests).

/// One SNP's contribution to Homer's D statistic.
#[must_use]
pub fn homer_contribution(x: u8, case_freq: f64, ref_freq: f64) -> f64 {
    debug_assert!(x <= 1, "allele must be 0/1");
    let x = f64::from(x);
    (x - ref_freq).abs() - (x - case_freq).abs()
}

/// Homer's D over a genotype slice and matching frequency vectors.
///
/// # Panics
///
/// Panics if the slices disagree in length.
#[must_use]
pub fn homer_statistic(genotype: &[u8], case_freqs: &[f64], ref_freqs: &[f64]) -> f64 {
    assert_eq!(
        genotype.len(),
        case_freqs.len(),
        "one case frequency per SNP"
    );
    assert_eq!(
        genotype.len(),
        ref_freqs.len(),
        "one reference frequency per SNP"
    );
    genotype
        .iter()
        .zip(case_freqs.iter().zip(ref_freqs.iter()))
        .map(|(&x, (&p_hat, &p))| homer_contribution(x, p_hat, p))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contribution_signs() {
        // Case pool is minor-rich: carrying the minor allele makes the
        // victim look like a case member (positive D).
        assert!(homer_contribution(1, 0.6, 0.2) > 0.0);
        assert!(homer_contribution(0, 0.6, 0.2) < 0.0);
        // Identical pools carry no information.
        assert_eq!(homer_contribution(1, 0.3, 0.3), 0.0);
        assert_eq!(homer_contribution(0, 0.3, 0.3), 0.0);
    }

    #[test]
    fn statistic_sums_contributions() {
        let genotype = [1u8, 0, 1];
        let case = [0.5, 0.5, 0.5];
        let reference = [0.25, 0.25, 0.75];
        let expected: f64 = homer_contribution(1, 0.5, 0.25)
            + homer_contribution(0, 0.5, 0.25)
            + homer_contribution(1, 0.5, 0.75);
        assert!((homer_statistic(&genotype, &case, &reference) - expected).abs() < 1e-15);
    }

    #[test]
    fn symmetric_pools_cancel() {
        // p̂ and p mirrored around the victim's allele value give D = 0.
        assert_eq!(homer_contribution(1, 0.6, 0.6), 0.0);
        let d = homer_statistic(&[0, 1], &[0.2, 0.8], &[0.2, 0.8]);
        assert_eq!(d, 0.0);
    }

    #[test]
    #[should_panic(expected = "one case frequency per SNP")]
    fn mismatched_lengths_panic() {
        let _ = homer_statistic(&[1], &[0.5, 0.5], &[0.5]);
    }
}
