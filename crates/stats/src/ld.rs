//! Linkage-disequilibrium (LD) analysis — Phase 2 of GenDPR.
//!
//! Two SNPs in high LD are statistically dependent; releasing both hands an
//! adversary correlated information (paper §3.2.2), and dependence violates
//! the LR-test's independence assumption. GenDPR's key trick is that the
//! correlation between two 0/1 columns is a function of six *additive*
//! moments (Σx, Σy, Σxy, Σx², Σy², n), so each GDO can outsource its local
//! moments and the leader sums them — no genotypes leave the premises.

use crate::special::chi2_sf;
use gendpr_genomics::genotype::GenotypeMatrix;
use gendpr_genomics::snp::SnpId;

/// The additive correlation moments for one pair of SNPs — exactly the
/// `μ_l, μ_{l+1}, μ_{(l,l+1)}, μ_{l²}, μ_{(l+1)²}` a GDO outsources in
/// Algorithm 1 lines 35–41.
///
/// For 0/1 alleles `Σx² = Σx`, but the squares are carried explicitly so
/// the structure matches the protocol (and generalizes to dosage data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LdMoments {
    /// `Σ_n x_n` — minor count at the first SNP.
    pub sum_x: u64,
    /// `Σ_n y_n` — minor count at the second SNP.
    pub sum_y: u64,
    /// `Σ_n x_n·y_n` — joint minor count.
    pub sum_xy: u64,
    /// `Σ_n x_n²`.
    pub sum_xx: u64,
    /// `Σ_n y_n²`.
    pub sum_yy: u64,
    /// Number of individuals contributing.
    pub n: u64,
}

impl LdMoments {
    /// Computes the local moments of one GDO's genotype shard for SNP pair
    /// `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of bounds.
    #[must_use]
    pub fn from_matrix(m: &GenotypeMatrix, a: SnpId, b: SnpId) -> Self {
        let sum_x = m.column_count(a);
        let sum_y = m.column_count(b);
        let sum_xy = m.pair_count(a, b);
        Self {
            sum_x,
            sum_y,
            sum_xy,
            sum_xx: sum_x, // x ∈ {0,1} ⇒ x² = x
            sum_yy: sum_y,
            n: m.individuals() as u64,
        }
    }

    /// Builds moments from per-SNP minor counts already known from the
    /// MAF phase plus the joint count — the cheap path every driver uses,
    /// since only `Σxy` needs a fresh pass over the genotypes.
    ///
    /// # Panics
    ///
    /// Panics if `m` does not contain both SNPs.
    #[must_use]
    pub fn from_cached_counts(
        m: &GenotypeMatrix,
        a: SnpId,
        b: SnpId,
        count_a: u64,
        count_b: u64,
    ) -> Self {
        debug_assert_eq!(count_a, m.column_count(a), "stale cached count for {a}");
        debug_assert_eq!(count_b, m.column_count(b), "stale cached count for {b}");
        Self {
            sum_x: count_a,
            sum_y: count_b,
            sum_xy: m.pair_count(a, b),
            sum_xx: count_a,
            sum_yy: count_b,
            n: m.individuals() as u64,
        }
    }

    /// Builds moments directly from already-known counts: the two
    /// marginal minor counts, the joint count and the cohort size. This
    /// is the allocation-free core of [`Self::from_cached_counts`], used
    /// when the joint count comes from a columnar popcount kernel rather
    /// than a row-major matrix walk.
    #[must_use]
    pub fn from_counts(count_a: u64, count_b: u64, joint: u64, n: u64) -> Self {
        Self {
            sum_x: count_a,
            sum_y: count_b,
            sum_xy: joint,
            sum_xx: count_a,
            sum_yy: count_b,
            n,
        }
    }

    /// Aggregates another member's moments (leader-side `+=` of
    /// Algorithm 1 lines 35–46).
    #[must_use]
    pub fn merge(self, other: LdMoments) -> LdMoments {
        LdMoments {
            sum_x: self.sum_x + other.sum_x,
            sum_y: self.sum_y + other.sum_y,
            sum_xy: self.sum_xy + other.sum_xy,
            sum_xx: self.sum_xx + other.sum_xx,
            sum_yy: self.sum_yy + other.sum_yy,
            n: self.n + other.n,
        }
    }

    /// Pearson r² between the two SNPs.
    ///
    /// Returns 0 when either SNP is monomorphic in the pooled data.
    #[must_use]
    pub fn r_squared(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        let sx = self.sum_x as f64;
        let sy = self.sum_y as f64;
        let sxy = self.sum_xy as f64;
        let sxx = self.sum_xx as f64;
        let syy = self.sum_yy as f64;
        let cov = n * sxy - sx * sy;
        let var_x = n * sxx - sx * sx;
        let var_y = n * syy - sy * sy;
        if var_x <= 0.0 || var_y <= 0.0 {
            return 0.0;
        }
        ((cov * cov) / (var_x * var_y)).min(1.0)
    }

    /// P-value on r² — `computeR2` in Algorithm 1. Under independence,
    /// `n·r²` is asymptotically χ²(1), the standard LD significance test.
    #[must_use]
    pub fn p_value(&self) -> f64 {
        if self.n == 0 {
            return 1.0;
        }
        chi2_sf(self.n as f64 * self.r_squared(), 1)
    }
}

/// Phase 2 decision for one pair: SNPs are *independent* (both can stay)
/// iff the p-value is at or above the LD cutoff. The paper treats p-values
/// below 1e-5 as evidence of dependence.
#[must_use]
pub fn is_independent(p_value: f64, ld_cutoff: f64) -> bool {
    p_value > ld_cutoff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_from(rows: &[(u8, u8)]) -> GenotypeMatrix {
        let mut m = GenotypeMatrix::zeroed(rows.len(), 2);
        for (i, &(x, y)) in rows.iter().enumerate() {
            if x == 1 {
                m.set(i, 0, true);
            }
            if y == 1 {
                m.set(i, 1, true);
            }
        }
        m
    }

    #[test]
    fn moments_from_matrix() {
        let m = matrix_from(&[(0, 0), (1, 0), (1, 1), (0, 1), (1, 1)]);
        let mo = LdMoments::from_matrix(&m, SnpId(0), SnpId(1));
        assert_eq!(mo.sum_x, 3);
        assert_eq!(mo.sum_y, 3);
        assert_eq!(mo.sum_xy, 2);
        assert_eq!(mo.sum_xx, 3);
        assert_eq!(mo.n, 5);
    }

    #[test]
    fn merge_equals_pooled_computation() {
        let rows = [(0u8, 0u8), (1, 0), (1, 1), (0, 1), (1, 1), (0, 0), (1, 1)];
        let pooled = matrix_from(&rows);
        let shard1 = matrix_from(&rows[..3]);
        let shard2 = matrix_from(&rows[3..]);
        let merged = LdMoments::from_matrix(&shard1, SnpId(0), SnpId(1))
            .merge(LdMoments::from_matrix(&shard2, SnpId(0), SnpId(1)));
        let direct = LdMoments::from_matrix(&pooled, SnpId(0), SnpId(1));
        assert_eq!(merged, direct);
        assert!((merged.r_squared() - direct.r_squared()).abs() < 1e-15);
    }

    #[test]
    fn perfect_correlation() {
        let m = matrix_from(&[(0, 0), (1, 1), (1, 1), (0, 0), (1, 1)]);
        let mo = LdMoments::from_matrix(&m, SnpId(0), SnpId(1));
        assert!((mo.r_squared() - 1.0).abs() < 1e-12);
        assert!(mo.p_value() < 0.05);
    }

    #[test]
    fn perfect_anticorrelation() {
        let m = matrix_from(&[(0, 1), (1, 0), (1, 0), (0, 1)]);
        let mo = LdMoments::from_matrix(&m, SnpId(0), SnpId(1));
        assert!((mo.r_squared() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independence_gives_zero_r2() {
        // Balanced independent design.
        let m = matrix_from(&[(0, 0), (0, 1), (1, 0), (1, 1)]);
        let mo = LdMoments::from_matrix(&m, SnpId(0), SnpId(1));
        assert!(mo.r_squared().abs() < 1e-12);
        assert!((mo.p_value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn monomorphic_snp_is_independent() {
        let m = matrix_from(&[(0, 0), (0, 1), (0, 0)]);
        let mo = LdMoments::from_matrix(&m, SnpId(0), SnpId(1));
        assert_eq!(mo.r_squared(), 0.0);
        assert_eq!(mo.p_value(), 1.0);
    }

    #[test]
    fn empty_moments_are_neutral() {
        let mo = LdMoments::default();
        assert_eq!(mo.r_squared(), 0.0);
        assert_eq!(mo.p_value(), 1.0);
    }

    #[test]
    fn r2_matches_contingency_table_formula() {
        use crate::contingency::PairwiseTable;
        let rows = [(0u8, 0u8), (1, 0), (1, 1), (0, 1), (1, 1), (1, 1), (0, 0)];
        let m = matrix_from(&rows);
        let mo = LdMoments::from_matrix(&m, SnpId(0), SnpId(1));
        let t = PairwiseTable::from_counts(mo.sum_x, mo.sum_y, mo.sum_xy, mo.n);
        assert!((mo.r_squared() - t.r_squared()).abs() < 1e-12);
    }

    #[test]
    fn significance_grows_with_n() {
        // Same correlation structure, more individuals -> smaller p-value.
        let base = [
            (1u8, 1u8),
            (1, 1),
            (0, 0),
            (0, 0),
            (1, 0),
            (0, 1),
            (1, 1),
            (0, 0),
        ];
        let small = matrix_from(&base);
        let mut big_rows = Vec::new();
        for _ in 0..50 {
            big_rows.extend_from_slice(&base);
        }
        let big = matrix_from(&big_rows);
        let p_small = LdMoments::from_matrix(&small, SnpId(0), SnpId(1)).p_value();
        let p_big = LdMoments::from_matrix(&big, SnpId(0), SnpId(1)).p_value();
        assert!(p_big < p_small);
        assert!(is_independent(p_small, 1e-5));
        assert!(!is_independent(p_big, 1e-5) || p_big > 1e-5);
    }

    #[test]
    fn cutoff_semantics() {
        assert!(is_independent(0.5, 1e-5));
        assert!(!is_independent(1e-6, 1e-5));
        assert!(!is_independent(1e-5, 1e-5), "boundary counts as dependent");
    }
}
