//! GWAS statistics for the GenDPR reproduction.
//!
//! Everything the three GenDPR phases and the released study itself need:
//!
//! * [`special`] — ln-gamma, incomplete gamma, erf, normal CDF/quantile
//!   (from scratch, validated against published values),
//! * [`contingency`] — the paper's Tables 2a/2b,
//! * [`maf`] — Phase 1 minor-allele-frequency screening,
//! * [`ld`] — Phase 2 linkage-disequilibrium moments, r² and p-values,
//! * [`chi2`] — χ² association statistics (standard + the paper's
//!   simplified form),
//! * [`fisher`] — Fisher's exact test for sparse contingency tables,
//! * [`ranking`] — most-significant-first SNP ordering,
//! * [`lr`] — the SecureGenome likelihood-ratio test: LR matrices, the
//!   empirical safe-subset search, and a normal-approximation cross-check,
//! * [`homer`] — Homer et al.'s distance statistic, the attack the
//!   LR-test provably dominates,
//! * [`oblivious`] — data-oblivious variants of the selection kernels
//!   (the paper's side-channel future work): a bitonic sorting network
//!   and a branchless subset search with identical outputs.
//!
//! Every function here consumes *aggregate* quantities (counts, moments,
//! frequencies, LR contributions) rather than raw genotypes. That design is
//! the crux of GenDPR: since the statistics are additive in those
//! aggregates, a leader enclave summing per-GDO contributions computes
//! exactly what a centralized enclave pooling all genomes would.
//!
//! # Example
//!
//! ```
//! use gendpr_stats::contingency::SinglewiseTable;
//! use gendpr_stats::chi2::chi2_p_value;
//!
//! // 100 cases (30 minor alleles) vs 100 references (10 minor alleles).
//! let table = SinglewiseTable::new(30, 100, 10, 100);
//! let p = chi2_p_value(&table);
//! assert!(p < 0.01, "clear association: p = {p}");
//! ```

pub mod chi2;
pub mod contingency;
pub mod fisher;
pub mod homer;
pub mod ld;
pub mod lr;
pub mod maf;
pub mod oblivious;
pub mod ranking;
pub mod special;

pub use contingency::{PairwiseTable, SinglewiseTable};
pub use ld::LdMoments;
pub use lr::{LrMatrix, LrSelection, LrTestParams};
pub use ranking::SnpRank;
