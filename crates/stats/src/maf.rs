//! Minor-allele frequency (MAF) computations — Phase 1 of GenDPR.
//!
//! SNPs with rare minor alleles are characteristic outliers that enable
//! membership inference (paper §3.2.1), so Phase 1 removes every SNP whose
//! *global* MAF — computed over the pooled case + reference populations —
//! falls below a cutoff (0.05 in SecureGenome's suggested settings).

/// Aggregates per-GDO allele counts into a global frequency.
///
/// `counts` are each member's minor-allele counts for one SNP (including
/// the leader's and the reference's), `totals` the matching population
/// sizes. This mirrors Algorithm 1 lines 15–19.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn global_frequency(counts: &[u64], totals: &[u64]) -> f64 {
    assert_eq!(counts.len(), totals.len(), "one total per count vector");
    let minor: u64 = counts.iter().sum();
    let n: u64 = totals.iter().sum();
    if n == 0 {
        return 0.0;
    }
    minor as f64 / n as f64
}

/// The MAF itself: the frequency of the *least common* allele. Input is
/// the minor-allele frequency under the panel's encoding; if drift pushed
/// it above 0.5 the other allele is the rarer one.
#[must_use]
pub fn minor_allele_frequency(freq: f64) -> f64 {
    freq.min(1.0 - freq)
}

/// Phase 1 decision: keep the SNP iff its global MAF is at or above the
/// cutoff (Algorithm 1 line 20 removes `MAF_l < MAF_cutoff`).
#[must_use]
pub fn passes_maf(global_freq: f64, cutoff: f64) -> bool {
    minor_allele_frequency(global_freq) >= cutoff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_frequency_pools_counts() {
        // Three GDOs + reference: 10/100, 20/100, 0/50, 30/250.
        let f = global_frequency(&[10, 20, 0, 30], &[100, 100, 50, 250]);
        assert!((f - 60.0 / 500.0).abs() < 1e-15);
    }

    #[test]
    fn global_frequency_empty_is_zero() {
        assert_eq!(global_frequency(&[], &[]), 0.0);
        assert_eq!(global_frequency(&[0], &[0]), 0.0);
    }

    #[test]
    fn maf_folds_above_half() {
        assert!((minor_allele_frequency(0.7) - 0.3).abs() < 1e-15);
        assert!((minor_allele_frequency(0.3) - 0.3).abs() < 1e-15);
        assert_eq!(minor_allele_frequency(0.5), 0.5);
    }

    #[test]
    fn cutoff_boundary_is_inclusive() {
        assert!(passes_maf(0.05, 0.05));
        assert!(!passes_maf(0.049_999, 0.05));
        assert!(!passes_maf(0.96, 0.05)); // MAF = 0.04 < cutoff
        assert!(passes_maf(0.5, 0.05));
    }

    #[test]
    #[should_panic(expected = "one total per count")]
    fn mismatched_lengths_panic() {
        let _ = global_frequency(&[1, 2], &[10]);
    }
}
