//! χ² association tests.
//!
//! The χ² statistic measures the association of a SNP with the phenotype of
//! interest; its p-value ranks SNPs ("the SNPs with the smallest p-values
//! are the most significant"). The paper's §3.1 gives a simplified form
//! `(N₁^case − N₁^control)² / N₁^control`; this module provides both that
//! and the standard 2×2 Pearson statistic (used for ranking, since it is
//! well-defined for unbalanced populations).

use crate::contingency::SinglewiseTable;
use crate::special::chi2_sf;

/// Pearson's χ² statistic for a 2×2 singlewise table (1 degree of freedom).
///
/// Returns 0 when a margin is empty (no information).
#[must_use]
pub fn chi2_statistic(table: &SinglewiseTable) -> f64 {
    let n = table.grand_total() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let cells = [
        (
            table.case_major() as f64,
            table.major_total(),
            table.case_total,
        ),
        (
            table.control_major() as f64,
            table.major_total(),
            table.control_total,
        ),
        (
            table.case_minor as f64,
            table.minor_total(),
            table.case_total,
        ),
        (
            table.control_minor as f64,
            table.minor_total(),
            table.control_total,
        ),
    ];
    let mut stat = 0.0;
    for (observed, row_total, col_total) in cells {
        let expected = row_total as f64 * col_total as f64 / n;
        if expected == 0.0 {
            return 0.0;
        }
        let d = observed - expected;
        stat += d * d / expected;
    }
    stat
}

/// The paper's simplified χ² form: `(N₁^case − N₁^control)² / N₁^control`.
///
/// Only meaningful for equal-size populations; returns `f64::INFINITY`
/// when the control count is 0 but the case count is not, and 0 when both
/// are 0.
#[must_use]
pub fn chi2_statistic_simplified(case_minor: u64, control_minor: u64) -> f64 {
    let d = case_minor as f64 - control_minor as f64;
    if control_minor == 0 {
        if case_minor == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        d * d / control_minor as f64
    }
}

/// P-value of the Pearson χ² association test (df = 1).
#[must_use]
pub fn chi2_p_value(table: &SinglewiseTable) -> f64 {
    chi2_sf(chi2_statistic(table), 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_association_gives_zero_statistic() {
        // Same frequency in both populations.
        let t = SinglewiseTable::new(20, 100, 20, 100);
        assert!(chi2_statistic(&t).abs() < 1e-12);
        assert!((chi2_p_value(&t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn textbook_2x2_example() {
        // Classic example: cells [[10, 20], [30, 40]] as (case/control × major/minor).
        // case: major 10, minor 30 -> case_total 40... construct carefully:
        // case_minor=30, case_total=40, control_minor=40, control_total=60.
        let t = SinglewiseTable::new(30, 40, 40, 60);
        // Expected chi2 = N(ad-bc)^2 / (row1 row2 col1 col2)
        let n = 100.0;
        let a = 10.0; // case major
        let b = 20.0; // control major
        let c = 30.0; // case minor
        let d = 40.0; // control minor
        let expected = n * (a * d - b * c) * (a * d - b * c) / (30.0 * 70.0 * 40.0 * 60.0);
        assert!((chi2_statistic(&t) - expected).abs() < 1e-10);
    }

    #[test]
    fn strong_association_small_p() {
        let t = SinglewiseTable::new(90, 100, 10, 100);
        let p = chi2_p_value(&t);
        assert!(p < 1e-8, "p = {p}");
    }

    #[test]
    fn empty_margins_are_zero() {
        let t = SinglewiseTable::new(0, 100, 0, 100);
        assert_eq!(chi2_statistic(&t), 0.0);
        let t2 = SinglewiseTable::new(0, 0, 0, 0);
        assert_eq!(chi2_statistic(&t2), 0.0);
    }

    #[test]
    fn simplified_form_matches_paper() {
        assert_eq!(chi2_statistic_simplified(10, 10), 0.0);
        assert!((chi2_statistic_simplified(20, 10) - 10.0).abs() < 1e-12);
        assert_eq!(chi2_statistic_simplified(5, 0), f64::INFINITY);
        assert_eq!(chi2_statistic_simplified(0, 0), 0.0);
    }

    #[test]
    fn statistic_is_symmetric_in_allele_labeling() {
        // Swapping major/minor labels (minor = total - minor) keeps chi2.
        let t1 = SinglewiseTable::new(30, 100, 50, 120);
        let t2 = SinglewiseTable::new(70, 100, 70, 120);
        assert!((chi2_statistic(&t1) - chi2_statistic(&t2)).abs() < 1e-10);
    }
}
