//! GWAS contingency tables (Tables 2a/2b of the paper).
//!
//! A *singlewise* table counts major/minor alleles per population for one
//! SNP; a *pairwise* table counts the four allele combinations between two
//! SNP positions. Both are built purely from aggregate counts, which is
//! what lets GenDPR compute them distributedly.

/// Singlewise contingency table for one SNP (paper Table 2a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinglewiseTable {
    /// Minor-allele count in the case population (`N₁^case`).
    pub case_minor: u64,
    /// Number of case individuals (`N^case`).
    pub case_total: u64,
    /// Minor-allele count in the control/reference population.
    pub control_minor: u64,
    /// Number of control/reference individuals.
    pub control_total: u64,
}

impl SinglewiseTable {
    /// Builds a table from population counts.
    ///
    /// # Panics
    ///
    /// Panics if a minor count exceeds its population size.
    #[must_use]
    pub fn new(case_minor: u64, case_total: u64, control_minor: u64, control_total: u64) -> Self {
        assert!(
            case_minor <= case_total,
            "case minor count exceeds population"
        );
        assert!(
            control_minor <= control_total,
            "control minor count exceeds population"
        );
        Self {
            case_minor,
            case_total,
            control_minor,
            control_total,
        }
    }

    /// Major-allele count in the case population (`N₀^case`).
    #[must_use]
    pub fn case_major(&self) -> u64 {
        self.case_total - self.case_minor
    }

    /// Major-allele count in the control population (`N₀^control`).
    #[must_use]
    pub fn control_major(&self) -> u64 {
        self.control_total - self.control_minor
    }

    /// Row total for the minor allele (`N₁`).
    #[must_use]
    pub fn minor_total(&self) -> u64 {
        self.case_minor + self.control_minor
    }

    /// Row total for the major allele (`N₀`).
    #[must_use]
    pub fn major_total(&self) -> u64 {
        self.case_major() + self.control_major()
    }

    /// Grand total (`N_T`).
    #[must_use]
    pub fn grand_total(&self) -> u64 {
        self.case_total + self.control_total
    }

    /// Pooled minor-allele frequency over both populations — the
    /// `globalAlleleFreq[l]` of Phase 1.
    #[must_use]
    pub fn pooled_frequency(&self) -> f64 {
        if self.grand_total() == 0 {
            return 0.0;
        }
        self.minor_total() as f64 / self.grand_total() as f64
    }

    /// Case minor-allele frequency (`p̂_l` in Eq. 1).
    #[must_use]
    pub fn case_frequency(&self) -> f64 {
        if self.case_total == 0 {
            return 0.0;
        }
        self.case_minor as f64 / self.case_total as f64
    }

    /// Control minor-allele frequency (`p_l` in Eq. 1).
    #[must_use]
    pub fn control_frequency(&self) -> f64 {
        if self.control_total == 0 {
            return 0.0;
        }
        self.control_minor as f64 / self.control_total as f64
    }
}

/// Pairwise contingency table between two SNPs (paper Table 2b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairwiseTable {
    /// `C[x][y]` = number of individuals with allele `x` at the first SNP
    /// and `y` at the second.
    pub counts: [[u64; 2]; 2],
}

impl PairwiseTable {
    /// Builds the table from the sufficient statistics GDOs exchange:
    /// per-SNP minor counts, the joint minor-minor count, and `n`.
    ///
    /// # Panics
    ///
    /// Panics if the counts are inconsistent (`both > minor_a`, etc.).
    #[must_use]
    pub fn from_counts(minor_a: u64, minor_b: u64, both_minor: u64, n: u64) -> Self {
        assert!(
            both_minor <= minor_a && both_minor <= minor_b,
            "joint count too large"
        );
        assert!(minor_a <= n && minor_b <= n, "marginal count exceeds n");
        let c11 = both_minor;
        let c10 = minor_a - both_minor;
        let c01 = minor_b - both_minor;
        assert!(
            c10 + c01 + c11 <= n,
            "counts imply a negative major-major cell"
        );
        let c00 = n - c10 - c01 - c11;
        Self {
            counts: [[c00, c01], [c10, c11]],
        }
    }

    /// Marginal count of the first SNP's allele `x` (`C_x−`).
    #[must_use]
    pub fn row_total(&self, x: usize) -> u64 {
        self.counts[x][0] + self.counts[x][1]
    }

    /// Marginal count of the second SNP's allele `y` (`C_−y`).
    #[must_use]
    pub fn col_total(&self, y: usize) -> u64 {
        self.counts[0][y] + self.counts[1][y]
    }

    /// Grand total.
    #[must_use]
    pub fn grand_total(&self) -> u64 {
        self.row_total(0) + self.row_total(1)
    }

    /// The LD correlation coefficient r² from the paper's §3.1 formula:
    /// `(C00·C11 − C01·C10)² / (C0−·C1−·C−0·C−1)`.
    ///
    /// Returns 0 when either SNP is monomorphic (a zero margin), where LD is
    /// undefined and no dependence can be measured.
    #[must_use]
    pub fn r_squared(&self) -> f64 {
        let c = &self.counts;
        let denom = self.row_total(0) as f64
            * self.row_total(1) as f64
            * self.col_total(0) as f64
            * self.col_total(1) as f64;
        if denom == 0.0 {
            return 0.0;
        }
        let num = c[0][0] as f64 * c[1][1] as f64 - c[0][1] as f64 * c[1][0] as f64;
        // Guard tiny floating overshoot above 1.0.
        ((num * num) / denom).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singlewise_margins_are_consistent() {
        let t = SinglewiseTable::new(30, 100, 10, 80);
        assert_eq!(t.case_major(), 70);
        assert_eq!(t.control_major(), 70);
        assert_eq!(t.minor_total(), 40);
        assert_eq!(t.major_total(), 140);
        assert_eq!(t.grand_total(), 180);
        assert!((t.pooled_frequency() - 40.0 / 180.0).abs() < 1e-15);
        assert!((t.case_frequency() - 0.3).abs() < 1e-15);
        assert!((t.control_frequency() - 0.125).abs() < 1e-15);
    }

    #[test]
    fn singlewise_zero_population_is_zero_freq() {
        let t = SinglewiseTable::new(0, 0, 0, 0);
        assert_eq!(t.pooled_frequency(), 0.0);
        assert_eq!(t.case_frequency(), 0.0);
        assert_eq!(t.control_frequency(), 0.0);
    }

    #[test]
    #[should_panic(expected = "case minor count exceeds population")]
    fn singlewise_rejects_inconsistent_counts() {
        let _ = SinglewiseTable::new(5, 4, 0, 0);
    }

    #[test]
    fn pairwise_cells_reconstruct() {
        // 10 individuals: 4 minor at A, 3 minor at B, 2 both.
        let t = PairwiseTable::from_counts(4, 3, 2, 10);
        assert_eq!(t.counts[1][1], 2);
        assert_eq!(t.counts[1][0], 2);
        assert_eq!(t.counts[0][1], 1);
        assert_eq!(t.counts[0][0], 5);
        assert_eq!(t.row_total(1), 4);
        assert_eq!(t.col_total(1), 3);
        assert_eq!(t.grand_total(), 10);
    }

    #[test]
    fn r_squared_perfect_correlation() {
        // Alleles always equal: C00=6, C11=4.
        let t = PairwiseTable::from_counts(4, 4, 4, 10);
        assert!((t.r_squared() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_independence() {
        // P(A)=1/2, P(B)=1/2 independent over 4 individuals: one in each cell.
        let t = PairwiseTable::from_counts(2, 2, 1, 4);
        assert!(t.r_squared().abs() < 1e-12);
    }

    #[test]
    fn r_squared_monomorphic_is_zero() {
        let t = PairwiseTable::from_counts(0, 3, 0, 10);
        assert_eq!(t.r_squared(), 0.0);
    }

    #[test]
    fn r_squared_matches_pearson_definition() {
        // Compare against explicit Pearson correlation on 0/1 data.
        let data = [
            (0u8, 0u8),
            (0, 1),
            (1, 1),
            (1, 1),
            (0, 0),
            (1, 0),
            (1, 1),
            (0, 0),
        ];
        let n = data.len() as f64;
        let sa: f64 = data.iter().map(|&(a, _)| f64::from(a)).sum();
        let sb: f64 = data.iter().map(|&(_, b)| f64::from(b)).sum();
        let sab: f64 = data.iter().map(|&(a, b)| f64::from(a * b)).sum();
        let cov = sab / n - (sa / n) * (sb / n);
        let var_a = sa / n * (1.0 - sa / n);
        let var_b = sb / n * (1.0 - sb / n);
        let r2_pearson = cov * cov / (var_a * var_b);

        let t = PairwiseTable::from_counts(sa as u64, sb as u64, sab as u64, data.len() as u64);
        assert!((t.r_squared() - r2_pearson).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "joint count too large")]
    fn pairwise_rejects_inconsistent_joint() {
        let _ = PairwiseTable::from_counts(2, 5, 3, 10);
    }
}
