//! SNP ranking by χ² significance.
//!
//! Phase 2 keeps "the higher ranked (in terms of p-value on χ²)" SNP of a
//! dependent pair, and Phase 3 admits candidates most-significant-first.
//! Ranking needs only the aggregate singlewise tables, so the leader can
//! compute it from the counts gathered in Phase 1.

use crate::chi2::chi2_p_value;
use crate::contingency::SinglewiseTable;
use gendpr_genomics::snp::SnpId;

/// A SNP's association score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnpRank {
    /// Which SNP.
    pub snp: SnpId,
    /// χ² association p-value (smaller = more significant).
    pub p_value: f64,
}

/// Computes each candidate SNP's χ² p-value from global case/reference
/// counts.
///
/// `case_counts[j]` / `ref_counts[j]` are the pooled minor-allele counts of
/// `snps[j]`.
///
/// # Panics
///
/// Panics if the slices disagree in length.
#[must_use]
pub fn rank_by_association(
    snps: &[SnpId],
    case_counts: &[u64],
    case_total: u64,
    ref_counts: &[u64],
    ref_total: u64,
) -> Vec<SnpRank> {
    assert_eq!(snps.len(), case_counts.len(), "one case count per SNP");
    assert_eq!(snps.len(), ref_counts.len(), "one reference count per SNP");
    snps.iter()
        .zip(case_counts.iter().zip(ref_counts.iter()))
        .map(|(&snp, (&cc, &rc))| SnpRank {
            snp,
            p_value: chi2_p_value(&SinglewiseTable::new(cc, case_total, rc, ref_total)),
        })
        .collect()
}

/// Sorts ranks most-significant-first (ascending p-value; ties broken by
/// SNP id for determinism across leaders).
#[must_use]
pub fn sort_most_significant_first(mut ranks: Vec<SnpRank>) -> Vec<SnpRank> {
    ranks.sort_by(|a, b| {
        a.p_value
            .partial_cmp(&b.p_value)
            .expect("p-values are finite")
            .then(a.snp.cmp(&b.snp))
    });
    ranks
}

/// Of two SNPs, returns the one with the better (smaller) p-value — the
/// `getMostRanked` helper of Algorithm 1. Ties prefer the first argument.
#[must_use]
pub fn most_ranked(a: SnpRank, b: SnpRank) -> SnpId {
    if b.p_value < a.p_value {
        b.snp
    } else {
        a.snp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_orders_by_significance() {
        let snps = [SnpId(0), SnpId(1), SnpId(2)];
        // SNP1 is strongly associated, SNP0 mildly, SNP2 not at all.
        let ranks = rank_by_association(&snps, &[30, 80, 20], 100, &[20, 20, 20], 100);
        let sorted = sort_most_significant_first(ranks);
        assert_eq!(sorted[0].snp, SnpId(1));
        assert_eq!(sorted[1].snp, SnpId(0));
        assert_eq!(sorted[2].snp, SnpId(2));
        assert!(sorted[0].p_value < sorted[1].p_value);
    }

    #[test]
    fn ties_break_by_id() {
        let snps = [SnpId(5), SnpId(3)];
        let ranks = rank_by_association(&snps, &[10, 10], 50, &[10, 10], 50);
        let sorted = sort_most_significant_first(ranks);
        assert_eq!(sorted[0].snp, SnpId(3));
        assert_eq!(sorted[1].snp, SnpId(5));
    }

    #[test]
    fn most_ranked_picks_smaller_p() {
        let a = SnpRank {
            snp: SnpId(0),
            p_value: 0.2,
        };
        let b = SnpRank {
            snp: SnpId(1),
            p_value: 0.01,
        };
        assert_eq!(most_ranked(a, b), SnpId(1));
        assert_eq!(most_ranked(b, a), SnpId(1));
        // Tie prefers the first argument.
        let c = SnpRank {
            snp: SnpId(2),
            p_value: 0.2,
        };
        assert_eq!(most_ranked(a, c), SnpId(0));
    }

    #[test]
    #[should_panic(expected = "one case count per SNP")]
    fn mismatched_lengths_panic() {
        let _ = rank_by_association(&[SnpId(0)], &[1, 2], 10, &[1], 10);
    }
}
