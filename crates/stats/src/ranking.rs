//! SNP ranking by χ² significance.
//!
//! Phase 2 keeps "the higher ranked (in terms of p-value on χ²)" SNP of a
//! dependent pair, and Phase 3 admits candidates most-significant-first.
//! Ranking needs only the aggregate singlewise tables, so the leader can
//! compute it from the counts gathered in Phase 1.

use crate::chi2::chi2_p_value;
use crate::contingency::SinglewiseTable;
use gendpr_genomics::snp::SnpId;

/// A SNP's association score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnpRank {
    /// Which SNP.
    pub snp: SnpId,
    /// χ² association p-value (smaller = more significant).
    pub p_value: f64,
}

/// Computes each candidate SNP's χ² p-value from global case/reference
/// counts.
///
/// `case_counts[j]` / `ref_counts[j]` are the pooled minor-allele counts of
/// `snps[j]`.
///
/// # Panics
///
/// Panics if the slices disagree in length.
#[must_use]
pub fn rank_by_association(
    snps: &[SnpId],
    case_counts: &[u64],
    case_total: u64,
    ref_counts: &[u64],
    ref_total: u64,
) -> Vec<SnpRank> {
    assert_eq!(snps.len(), case_counts.len(), "one case count per SNP");
    assert_eq!(snps.len(), ref_counts.len(), "one reference count per SNP");
    snps.iter()
        .zip(case_counts.iter().zip(ref_counts.iter()))
        .map(|(&snp, (&cc, &rc))| SnpRank {
            snp,
            p_value: chi2_p_value(&SinglewiseTable::new(cc, case_total, rc, ref_total)),
        })
        .collect()
}

/// Total order on p-values that ranks NaN strictly worst (least
/// significant). A degenerate zero-variance SNP — every genotype identical,
/// so a marginal total of the χ² table is 0 — yields a NaN p-value; it must
/// sort after every real result instead of panicking the leader
/// mid-protocol, and identically on every member for determinism.
#[must_use]
pub fn cmp_p_values(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (false, false) => a.total_cmp(&b),
        (true, true) => std::cmp::Ordering::Equal,
        // NaN is "worse" regardless of sign bit, unlike bare total_cmp.
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
    }
}

/// Sorts ranks most-significant-first (ascending p-value, NaN last; ties
/// broken by SNP id for determinism across leaders).
#[must_use]
pub fn sort_most_significant_first(mut ranks: Vec<SnpRank>) -> Vec<SnpRank> {
    ranks.sort_by(|a, b| cmp_p_values(a.p_value, b.p_value).then(a.snp.cmp(&b.snp)));
    ranks
}

/// Of two SNPs, returns the one with the better (smaller) p-value — the
/// `getMostRanked` helper of Algorithm 1. Ties prefer the first argument.
#[must_use]
pub fn most_ranked(a: SnpRank, b: SnpRank) -> SnpId {
    if cmp_p_values(b.p_value, a.p_value) == std::cmp::Ordering::Less {
        b.snp
    } else {
        a.snp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_orders_by_significance() {
        let snps = [SnpId(0), SnpId(1), SnpId(2)];
        // SNP1 is strongly associated, SNP0 mildly, SNP2 not at all.
        let ranks = rank_by_association(&snps, &[30, 80, 20], 100, &[20, 20, 20], 100);
        let sorted = sort_most_significant_first(ranks);
        assert_eq!(sorted[0].snp, SnpId(1));
        assert_eq!(sorted[1].snp, SnpId(0));
        assert_eq!(sorted[2].snp, SnpId(2));
        assert!(sorted[0].p_value < sorted[1].p_value);
    }

    #[test]
    fn ties_break_by_id() {
        let snps = [SnpId(5), SnpId(3)];
        let ranks = rank_by_association(&snps, &[10, 10], 50, &[10, 10], 50);
        let sorted = sort_most_significant_first(ranks);
        assert_eq!(sorted[0].snp, SnpId(3));
        assert_eq!(sorted[1].snp, SnpId(5));
    }

    #[test]
    fn most_ranked_picks_smaller_p() {
        let a = SnpRank {
            snp: SnpId(0),
            p_value: 0.2,
        };
        let b = SnpRank {
            snp: SnpId(1),
            p_value: 0.01,
        };
        assert_eq!(most_ranked(a, b), SnpId(1));
        assert_eq!(most_ranked(b, a), SnpId(1));
        // Tie prefers the first argument.
        let c = SnpRank {
            snp: SnpId(2),
            p_value: 0.2,
        };
        assert_eq!(most_ranked(a, c), SnpId(0));
    }

    #[test]
    #[should_panic(expected = "one case count per SNP")]
    fn mismatched_lengths_panic() {
        let _ = rank_by_association(&[SnpId(0)], &[1, 2], 10, &[1], 10);
    }

    #[test]
    fn constant_genotype_snp_ranks_worst_instead_of_panicking() {
        // SNP1's minor allele never occurs in either cohort (constant
        // genotype), making its χ² table degenerate: a marginal total is
        // 0. The guarded statistic maps that to p = 1.0, but a NaN from
        // any degenerate float path used to hit the old
        // partial_cmp().expect("p-values are finite") and panic the
        // leader mid-protocol — so harden the degenerate entry to NaN and
        // require the sort to survive and rank it worst.
        let snps = [SnpId(0), SnpId(1), SnpId(2)];
        let mut ranks = rank_by_association(&snps, &[30, 0, 20], 100, &[10, 0, 20], 100);
        ranks[1].p_value = f64::NAN;
        let sorted = sort_most_significant_first(ranks);
        assert_eq!(sorted[2].snp, SnpId(1), "NaN ranks last");
        assert!(!sorted[0].p_value.is_nan());
        // NaN never wins a pairwise comparison either.
        let nan = SnpRank {
            snp: SnpId(1),
            p_value: f64::NAN,
        };
        let real = SnpRank {
            snp: SnpId(0),
            p_value: 0.9,
        };
        assert_eq!(most_ranked(nan, real), SnpId(0));
        assert_eq!(most_ranked(real, nan), SnpId(0));
    }

    #[test]
    fn cmp_p_values_totally_orders_nans() {
        use std::cmp::Ordering::*;
        assert_eq!(cmp_p_values(f64::NAN, 0.5), Greater);
        assert_eq!(cmp_p_values(0.5, f64::NAN), Less);
        assert_eq!(cmp_p_values(f64::NAN, f64::NAN), Equal);
        assert_eq!(cmp_p_values(-f64::NAN, 0.5), Greater);
        assert_eq!(cmp_p_values(0.1, 0.5), Less);
    }
}
