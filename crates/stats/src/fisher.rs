//! Fisher's exact test for 2×2 contingency tables.
//!
//! The χ² approximation degrades when expected cell counts are small —
//! exactly the situation for rare variants near the MAF cutoff. GWAS
//! practice switches to Fisher's exact test there, and the release
//! builder offers it alongside χ². The two-sided p-value follows the
//! conventional definition: the total probability of all tables (with the
//! observed margins) whose hypergeometric probability does not exceed the
//! observed table's.

use crate::contingency::SinglewiseTable;
use crate::special::ln_gamma;

fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// Natural log of the hypergeometric probability of table
/// `[[a, b], [c, d]]` given fixed margins.
fn ln_hypergeometric(a: u64, b: u64, c: u64, d: u64) -> f64 {
    let n = a + b + c + d;
    ln_factorial(a + b) + ln_factorial(c + d) + ln_factorial(a + c) + ln_factorial(b + d)
        - ln_factorial(n)
        - ln_factorial(a)
        - ln_factorial(b)
        - ln_factorial(c)
        - ln_factorial(d)
}

/// Two-sided Fisher exact p-value for the 2×2 table `[[a, b], [c, d]]`.
///
/// Returns 1.0 for degenerate tables (an empty margin carries no
/// information).
#[must_use]
pub fn fisher_exact(a: u64, b: u64, c: u64, d: u64) -> f64 {
    let row1 = a + b;
    let col1 = a + c;
    let n = a + b + c + d;
    if n == 0 || row1 == 0 || row1 == n || col1 == 0 || col1 == n {
        return 1.0;
    }
    let observed = ln_hypergeometric(a, b, c, d);
    // Enumerate every table with the same margins: a' ranges over
    // [max(0, row1 + col1 − n), min(row1, col1)].
    let lo = row1.saturating_sub(n - col1);
    let hi = row1.min(col1);
    let mut p = 0.0;
    // Tolerance absorbs round-off when comparing equal-probability tables.
    const REL_TOL: f64 = 1e-7;
    for a_alt in lo..=hi {
        let b_alt = row1 - a_alt;
        let c_alt = col1 - a_alt;
        let d_alt = n - row1 - c_alt;
        let lp = ln_hypergeometric(a_alt, b_alt, c_alt, d_alt);
        if lp <= observed + REL_TOL {
            p += lp.exp();
        }
    }
    p.min(1.0)
}

/// Fisher exact p-value straight from a singlewise GWAS table
/// (rows = minor/major allele, columns = case/control).
#[must_use]
pub fn fisher_exact_table(table: &SinglewiseTable) -> f64 {
    fisher_exact(
        table.case_minor,
        table.control_minor,
        table.case_major(),
        table.control_major(),
    )
}

/// Whether GWAS practice would prefer the exact test over χ² for this
/// table: any *expected* cell count below 5.
#[must_use]
pub fn prefers_exact_test(table: &SinglewiseTable) -> bool {
    let n = table.grand_total() as f64;
    if n == 0.0 {
        return true;
    }
    let rows = [table.minor_total() as f64, table.major_total() as f64];
    let cols = [table.case_total as f64, table.control_total as f64];
    rows.iter().any(|r| cols.iter().any(|c| r * c / n < 5.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn lady_tasting_tea() {
        // Fisher's classic [[3,1],[1,3]]: two-sided p = 0.4857142857.
        close(fisher_exact(3, 1, 1, 3), 0.485_714_285_7, 1e-9);
    }

    #[test]
    fn perfectly_separated_table() {
        // [[10,0],[0,10]]: p = 2 / C(20,10) = 1.0824...e-5.
        close(fisher_exact(10, 0, 0, 10), 2.0 / 184_756.0, 1e-12);
    }

    #[test]
    fn known_r_value() {
        // R: fisher.test(matrix(c(1,11,9,3),2,2))$p.value = 0.002759...
        close(fisher_exact(1, 9, 11, 3), 0.002_759_456, 1e-7);
    }

    #[test]
    fn symmetric_tables_give_p_one() {
        close(fisher_exact(5, 5, 5, 5), 1.0, 1e-12);
    }

    #[test]
    fn degenerate_margins_are_uninformative() {
        assert_eq!(fisher_exact(0, 0, 3, 4), 1.0);
        assert_eq!(fisher_exact(3, 4, 0, 0), 1.0);
        assert_eq!(fisher_exact(0, 3, 0, 4), 1.0);
        assert_eq!(fisher_exact(0, 0, 0, 0), 1.0);
    }

    #[test]
    fn agrees_with_chi2_for_large_balanced_tables() {
        use crate::chi2::chi2_p_value;
        // With comfortable cell counts the exact and asymptotic tests
        // should broadly agree.
        let t = SinglewiseTable::new(60, 200, 40, 200);
        let exact = fisher_exact_table(&t);
        let chi2 = chi2_p_value(&t);
        assert!(
            (exact.ln() - chi2.ln()).abs() < 0.5,
            "exact {exact} vs chi2 {chi2}"
        );
    }

    #[test]
    fn exact_test_preference_rule() {
        // Tiny counts -> exact preferred.
        assert!(prefers_exact_test(&SinglewiseTable::new(1, 20, 2, 20)));
        // Comfortable counts -> chi2 fine.
        assert!(!prefers_exact_test(&SinglewiseTable::new(50, 200, 40, 200)));
        assert!(prefers_exact_test(&SinglewiseTable::new(0, 0, 0, 0)));
    }

    #[test]
    fn p_value_is_probability() {
        for (a, b, c, d) in [(2u64, 7, 8, 2), (1, 1, 1, 1), (12, 3, 5, 9), (0, 5, 5, 0)] {
            let p = fisher_exact(a, b, c, d);
            assert!((0.0..=1.0).contains(&p), "p({a},{b},{c},{d}) = {p}");
        }
    }
}
