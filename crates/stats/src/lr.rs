//! The SecureGenome likelihood-ratio test — Phase 3 of GenDPR.
//!
//! An adversary holding a victim's genotype computes the LR statistic of
//! Eq. 1 against the released frequencies; if it exceeds a threshold the
//! victim is flagged as a case participant. SecureGenome (Sankararaman et
//! al.) inverts this: it *simulates* the attack over the study's own data
//! and keeps only a subset of SNPs for which the attack's power stays below
//! a configured bound at a tolerated false-positive rate.
//!
//! The distributed twist (paper §5.5): each GDO computes the per-individual
//! per-SNP LR *contributions* for its local genomes — using the **global**
//! case/reference frequencies broadcast by the leader — and ships that
//! matrix; the leader concatenates the rows and runs the subset search.
//!
//! # Columnar search kernels
//!
//! The subset search is the protocol's hot path (~98% of a full run at
//! paper scale), so [`select_safe_subset`] and [`select_safe_subset_seeded`]
//! route through [`LrColumns`], a column-major bit-packed view in which each
//! candidate SNP is a contiguous `individuals`-bit vector. Admitting or
//! backing out a column is then a branchless word-wise sweep over the
//! cumulative per-individual sums, and the per-candidate null quantile runs
//! as a quickselect over reusable `i64` total-order keys — no per-candidate
//! allocation anywhere. The scalar reference implementations are retained as
//! [`select_safe_subset_naive`] / [`select_safe_subset_seeded_naive`]; the
//! kernels replicate their per-individual floating-point operation sequence
//! exactly, so selections are byte-identical (asserted by property tests).

use gendpr_genomics::columnar::{transpose64, ColumnarGenotypes};
use gendpr_genomics::genotype::GenotypeMatrix;
use gendpr_genomics::snp::SnpId;
use gendpr_obs as obs;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, OnceLock};
use std::time::Instant;

/// Frequencies are clamped away from 0/1 so `ln` stays finite even for
/// degenerate counts.
const FREQ_EPS: f64 = 1e-9;

/// One individual's LR contribution at one SNP (Eq. 1 summand):
/// `x·ln(p̂/p) + (1−x)·ln((1−p̂)/(1−p))`.
#[must_use]
pub fn lr_contribution(x: u8, case_freq: f64, ref_freq: f64) -> f64 {
    debug_assert!(x <= 1, "allele must be 0/1");
    let p_hat = case_freq.clamp(FREQ_EPS, 1.0 - FREQ_EPS);
    let p = ref_freq.clamp(FREQ_EPS, 1.0 - FREQ_EPS);
    if x == 1 {
        (p_hat / p).ln()
    } else {
        ((1.0 - p_hat) / (1.0 - p)).ln()
    }
}

/// The two possible per-column LR contributions: `(major, minor)` values
/// for each SNP, i.e. the Eq. 1 summand at `x = 0` and `x = 1`.
///
/// Since an LR matrix column holds only these two values, a matrix can be
/// transported as one bit per cell plus the frequency vectors the leader
/// already broadcast — the compressed LR reports of the optimized runtime.
///
/// # Panics
///
/// Panics if the vectors disagree in length.
#[must_use]
pub fn lr_levels(case_freqs: &[f64], ref_freqs: &[f64]) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(
        case_freqs.len(),
        ref_freqs.len(),
        "one pair of frequencies per SNP"
    );
    let major = case_freqs
        .iter()
        .zip(ref_freqs.iter())
        .map(|(&p_hat, &p)| lr_contribution(0, p_hat, p))
        .collect();
    let minor = case_freqs
        .iter()
        .zip(ref_freqs.iter())
        .map(|(&p_hat, &p)| lr_contribution(1, p_hat, p))
        .collect();
    (major, minor)
}

/// A dense `individuals × snps` matrix of LR contributions — the paper's
/// "local LR-matrix" of size `N^case_g × L''`.
#[derive(Debug, Clone, PartialEq)]
pub struct LrMatrix {
    individuals: usize,
    snps: usize,
    values: Vec<f64>,
}

impl LrMatrix {
    /// Builds the LR matrix for `genotypes` restricted to `snps` (ids into
    /// the original panel), with `case_freqs[j]` / `ref_freqs[j]` giving the
    /// global frequencies of `snps[j]`.
    ///
    /// # Panics
    ///
    /// Panics if the frequency vectors do not match `snps` in length.
    #[must_use]
    pub fn from_genotypes(
        genotypes: &GenotypeMatrix,
        snps: &[SnpId],
        case_freqs: &[f64],
        ref_freqs: &[f64],
    ) -> Self {
        assert_eq!(snps.len(), case_freqs.len(), "one case frequency per SNP");
        assert_eq!(
            snps.len(),
            ref_freqs.len(),
            "one reference frequency per SNP"
        );
        let n = genotypes.individuals();
        let l = snps.len();
        // Each column takes one of exactly two values (x = 0 or x = 1), so
        // the logarithms are computed once per SNP, not once per cell.
        let (major, minor) = lr_levels(case_freqs, ref_freqs);
        let mut values = Vec::with_capacity(n * l);
        for ind in 0..n {
            for (j, id) in snps.iter().enumerate() {
                let x = genotypes.get(ind, id.index());
                values.push(if x == 1 { minor[j] } else { major[j] });
            }
        }
        Self {
            individuals: n,
            snps: l,
            values,
        }
    }

    /// Number of individuals (rows).
    #[must_use]
    pub fn individuals(&self) -> usize {
        self.individuals
    }

    /// Number of SNPs (columns).
    #[must_use]
    pub fn snps(&self) -> usize {
        self.snps
    }

    /// The contribution of `individual` at column `snp`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[must_use]
    pub fn get(&self, individual: usize, snp: usize) -> f64 {
        assert!(
            individual < self.individuals && snp < self.snps,
            "index out of bounds"
        );
        self.values[individual * self.snps + snp]
    }

    /// Raw row-major values (for serialization).
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Reassembles a matrix from row-major values (the wire decoder's side).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != individuals * snps`.
    #[must_use]
    pub fn from_values(individuals: usize, snps: usize, values: Vec<f64>) -> Self {
        assert_eq!(
            values.len(),
            individuals * snps,
            "value buffer has wrong size"
        );
        Self {
            individuals,
            snps,
            values,
        }
    }

    /// Rebuilds a matrix from its two per-column levels and a minor-allele
    /// indicator — the decompression side of the compact LR transport.
    ///
    /// # Panics
    ///
    /// Panics if the level vectors do not both have `snps` entries.
    #[must_use]
    pub fn from_indicator(
        individuals: usize,
        snps: usize,
        major: &[f64],
        minor: &[f64],
        indicator: impl Fn(usize, usize) -> bool,
    ) -> Self {
        assert_eq!(major.len(), snps, "one major level per SNP");
        assert_eq!(minor.len(), snps, "one minor level per SNP");
        let mut values = Vec::with_capacity(individuals * snps);
        for i in 0..individuals {
            for j in 0..snps {
                values.push(if indicator(i, j) { minor[j] } else { major[j] });
            }
        }
        Self {
            individuals,
            snps,
            values,
        }
    }

    /// Concatenates the rows of all matrices — the leader-side merge of
    /// Algorithm 1 lines 63–67.
    ///
    /// # Panics
    ///
    /// Panics if the matrices disagree on the number of SNPs, or `parts`
    /// is empty.
    #[must_use]
    pub fn concat_rows(parts: &[LrMatrix]) -> LrMatrix {
        assert!(!parts.is_empty(), "need at least one LR matrix");
        let snps = parts[0].snps;
        let mut individuals = 0;
        let mut values = Vec::new();
        for p in parts {
            assert_eq!(p.snps, snps, "all LR matrices must cover the same SNPs");
            individuals += p.individuals;
            values.extend_from_slice(&p.values);
        }
        LrMatrix {
            individuals,
            snps,
            values,
        }
    }

    /// Approximate heap size in bytes (enclave memory accounting).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
    }
}

/// Read access to an `individuals × snps` table of LR contributions.
///
/// Implemented by the dense [`LrMatrix`] and the bit-packed
/// [`BitLrMatrix`]; the subset search is generic over both, so the leader
/// can run the exact same selection over 64× less enclave memory when the
/// federation uses compact LR transport.
pub trait LrValues {
    /// Number of individuals (rows).
    fn individuals(&self) -> usize;
    /// Number of SNPs (columns).
    fn snps(&self) -> usize;
    /// The contribution of `individual` at column `snp`.
    fn get(&self, individual: usize, snp: usize) -> f64;
    /// A column-major bit-packed view of the table, if every column takes
    /// at most two (bitwise-)distinct values — the representation the
    /// subset search's word kernels run on. `None` routes the search to
    /// the scalar reference path.
    fn to_columns(&self) -> Option<LrColumns> {
        columns_from_fn(self.individuals(), self.snps(), |i, j| {
            self.get(i, j).to_bits()
        })
    }
}

impl LrValues for LrMatrix {
    fn individuals(&self) -> usize {
        self.individuals
    }
    fn snps(&self) -> usize {
        self.snps
    }
    fn get(&self, individual: usize, snp: usize) -> f64 {
        LrMatrix::get(self, individual, snp)
    }
    fn to_columns(&self) -> Option<LrColumns> {
        // Direct slice scan: no per-cell bounds asserts or dispatch.
        columns_from_fn(self.individuals, self.snps, |i, j| {
            self.values[i * self.snps + j].to_bits()
        })
    }
}

/// A bit-packed LR matrix: one indicator bit per cell plus the two
/// per-column contribution levels. Stores `N × L''` cells in
/// `N × ⌈L''/64⌉` words — 0.8 MB instead of 52 MB for the paper's largest
/// setting — while [`LrValues::get`] returns exactly the dense values.
#[derive(Debug, Clone, PartialEq)]
pub struct BitLrMatrix {
    individuals: usize,
    snps: usize,
    words_per_row: usize,
    bits: Vec<u64>,
    major: Vec<f64>,
    minor: Vec<f64>,
}

impl BitLrMatrix {
    /// Builds the packed matrix from an indicator and the global
    /// case/reference frequencies.
    ///
    /// # Panics
    ///
    /// Panics if the frequency vectors disagree in length.
    #[must_use]
    pub fn from_indicator(
        individuals: usize,
        case_freqs: &[f64],
        ref_freqs: &[f64],
        indicator: impl Fn(usize, usize) -> bool,
    ) -> Self {
        let (major, minor) = lr_levels(case_freqs, ref_freqs);
        let snps = major.len();
        let words_per_row = snps.div_ceil(64);
        let mut bits = vec![0u64; individuals * words_per_row];
        for i in 0..individuals {
            for j in 0..snps {
                if indicator(i, j) {
                    bits[i * words_per_row + j / 64] |= 1 << (j % 64);
                }
            }
        }
        Self {
            individuals,
            snps,
            words_per_row,
            bits,
            major,
            minor,
        }
    }

    /// Builds the packed matrix straight from genotypes (the leader's own
    /// shard and the reference null model in compact mode).
    ///
    /// # Panics
    ///
    /// Panics if the frequency vectors do not match `snps` in length.
    #[must_use]
    pub fn from_genotypes(
        genotypes: &GenotypeMatrix,
        snps: &[SnpId],
        case_freqs: &[f64],
        ref_freqs: &[f64],
    ) -> Self {
        assert_eq!(snps.len(), case_freqs.len(), "one case frequency per SNP");
        Self::from_indicator(genotypes.individuals(), case_freqs, ref_freqs, |i, j| {
            genotypes.get(i, snps[j].index()) == 1
        })
    }

    /// Assembles a packed matrix from transported indicator words (row
    /// stride `⌈snps/64⌉`).
    ///
    /// # Errors
    ///
    /// Returns a static description if the buffer does not match the
    /// declared dimensions.
    pub fn from_raw_bits(
        individuals: usize,
        snps: usize,
        bits: Vec<u64>,
        case_freqs: &[f64],
        ref_freqs: &[f64],
    ) -> Result<Self, &'static str> {
        let words_per_row = snps.div_ceil(64);
        if individuals.checked_mul(words_per_row) != Some(bits.len()) {
            return Err("bit buffer does not match dimensions");
        }
        if case_freqs.len() != snps || ref_freqs.len() != snps {
            return Err("frequency vectors do not match dimensions");
        }
        let (major, minor) = lr_levels(case_freqs, ref_freqs);
        Ok(Self {
            individuals,
            snps,
            words_per_row,
            bits,
            major,
            minor,
        })
    }

    /// Vertically concatenates packed matrices (leader-side merge).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the parts disagree on columns or
    /// levels.
    #[must_use]
    pub fn concat_rows(parts: &[BitLrMatrix]) -> BitLrMatrix {
        assert!(!parts.is_empty(), "need at least one LR matrix");
        let first = &parts[0];
        let mut individuals = 0;
        let mut bits = Vec::new();
        for p in parts {
            assert_eq!(
                p.snps, first.snps,
                "all LR matrices must cover the same SNPs"
            );
            assert_eq!(p.major, first.major, "parts must share contribution levels");
            assert_eq!(p.minor, first.minor, "parts must share contribution levels");
            individuals += p.individuals;
            bits.extend_from_slice(&p.bits);
        }
        BitLrMatrix {
            individuals,
            snps: first.snps,
            words_per_row: first.words_per_row,
            bits,
            major: first.major.clone(),
            minor: first.minor.clone(),
        }
    }

    /// Expands to the dense representation (for tests and conversions).
    #[must_use]
    pub fn to_dense(&self) -> LrMatrix {
        LrMatrix::from_indicator(
            self.individuals,
            self.snps,
            &self.major,
            &self.minor,
            |i, j| self.bit(i, j),
        )
    }

    fn bit(&self, i: usize, j: usize) -> bool {
        self.bits[i * self.words_per_row + j / 64] >> (j % 64) & 1 == 1
    }

    /// Approximate heap size in bytes (enclave memory accounting).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.bits.len() * 8 + (self.major.len() + self.minor.len()) * 8
    }
}

impl LrValues for BitLrMatrix {
    fn individuals(&self) -> usize {
        self.individuals
    }
    fn snps(&self) -> usize {
        self.snps
    }
    fn get(&self, individual: usize, snp: usize) -> f64 {
        assert!(
            individual < self.individuals && snp < self.snps,
            "index out of bounds"
        );
        if self.bit(individual, snp) {
            self.minor[snp]
        } else {
            self.major[snp]
        }
    }
    fn to_columns(&self) -> Option<LrColumns> {
        Some(LrColumns::from_bit_matrix(self))
    }
}

/// Column-major bit-packed LR contributions: each SNP is a contiguous
/// `individuals`-bit minor-allele indicator (64 individuals per word,
/// LSB-first), plus the two per-column contribution levels — the transpose
/// of [`BitLrMatrix`], mirroring `genomics::columnar`.
///
/// This is the layout the subset-search kernels run on: admitting a column
/// is one linear sweep of its bit words against the cumulative sum vector,
/// instead of a strided per-cell walk of a row-major matrix. The bit buffer
/// is `Arc`-shared so cloning a view (e.g. to reuse indicator bits across
/// collusion combinations) costs nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct LrColumns {
    individuals: usize,
    snps: usize,
    words_per_col: usize,
    bits: Arc<[u64]>,
    major: Vec<f64>,
    minor: Vec<f64>,
}

impl LrColumns {
    /// Builds the columnar view straight from a SNP-major genotype shard:
    /// each selected column is a word-for-word copy of the shard's
    /// contiguous SNP bit-vector.
    ///
    /// # Panics
    ///
    /// Panics if the frequency vectors do not match `snps` in length or an
    /// id is out of bounds.
    #[must_use]
    pub fn from_columnar(
        genotypes: &ColumnarGenotypes,
        snps: &[SnpId],
        case_freqs: &[f64],
        ref_freqs: &[f64],
    ) -> Self {
        assert_eq!(snps.len(), case_freqs.len(), "one case frequency per SNP");
        let (major, minor) = lr_levels(case_freqs, ref_freqs);
        let n = genotypes.individuals();
        let words_per_col = n.div_ceil(64);
        let mut bits = vec![0u64; snps.len() * words_per_col];
        for (j, &id) in snps.iter().enumerate() {
            bits[j * words_per_col..(j + 1) * words_per_col]
                .copy_from_slice(genotypes.snp_words(id));
        }
        Self {
            individuals: n,
            snps: snps.len(),
            words_per_col,
            bits: bits.into(),
            major,
            minor,
        }
    }

    /// Builds the columnar view of the row-concatenation of several
    /// SNP-major shards (the leader-side merge), stitching each column's
    /// bit-vectors end to end. Shard sizes need not be word-aligned.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty, the frequency vectors do not match
    /// `snps`, or an id is out of bounds for some shard.
    #[must_use]
    pub fn from_columnar_parts(
        parts: &[&ColumnarGenotypes],
        snps: &[SnpId],
        case_freqs: &[f64],
        ref_freqs: &[f64],
    ) -> Self {
        assert!(!parts.is_empty(), "need at least one shard");
        assert_eq!(snps.len(), case_freqs.len(), "one case frequency per SNP");
        let (major, minor) = lr_levels(case_freqs, ref_freqs);
        let n: usize = parts.iter().map(|p| p.individuals()).sum();
        let words_per_col = n.div_ceil(64);
        let mut bits = vec![0u64; snps.len() * words_per_col];
        for (j, &id) in snps.iter().enumerate() {
            let col = &mut bits[j * words_per_col..(j + 1) * words_per_col];
            let mut offset = 0usize;
            for part in parts {
                let words = part.snp_words(id);
                let base = offset / 64;
                let shift = offset % 64;
                if shift == 0 {
                    col[base..base + words.len()].copy_from_slice(words);
                } else {
                    for (k, &w) in words.iter().enumerate() {
                        col[base + k] |= w << shift;
                        let carry = w >> (64 - shift);
                        if base + k + 1 < col.len() {
                            col[base + k + 1] |= carry;
                        } else {
                            debug_assert_eq!(carry, 0, "shard tail bits must be zero");
                        }
                    }
                }
                offset += part.individuals();
            }
        }
        Self {
            individuals: n,
            snps: snps.len(),
            words_per_col,
            bits: bits.into(),
            major,
            minor,
        }
    }

    /// 64×64 block-transposes a row-major [`BitLrMatrix`] into the
    /// column-major layout.
    #[must_use]
    pub fn from_bit_matrix(m: &BitLrMatrix) -> Self {
        let n = m.individuals;
        let l = m.snps;
        let words_per_col = n.div_ceil(64);
        let mut bits = vec![0u64; l * words_per_col];
        let mut block = [0u64; 64];
        for q in 0..words_per_col {
            let rows = (n - q * 64).min(64);
            for w in 0..m.words_per_row {
                for (r, slot) in block.iter_mut().enumerate().take(rows) {
                    *slot = m.bits[(q * 64 + r) * m.words_per_row + w];
                }
                for slot in block.iter_mut().skip(rows) {
                    *slot = 0;
                }
                transpose64(&mut block);
                let cols = (l - w * 64).min(64);
                for (j, &col) in block.iter().enumerate().take(cols) {
                    bits[(w * 64 + j) * words_per_col + q] = col;
                }
            }
        }
        Self {
            individuals: n,
            snps: l,
            words_per_col,
            bits: bits.into(),
            major: m.major.clone(),
            minor: m.minor.clone(),
        }
    }

    /// One column's contiguous bit words.
    #[inline]
    fn col_words(&self, col: usize) -> &[u64] {
        &self.bits[col * self.words_per_col..(col + 1) * self.words_per_col]
    }

    /// Approximate heap size in bytes (enclave memory accounting).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.bits.len() * 8 + (self.major.len() + self.minor.len()) * 8
    }
}

impl LrValues for LrColumns {
    fn individuals(&self) -> usize {
        self.individuals
    }
    fn snps(&self) -> usize {
        self.snps
    }
    fn get(&self, individual: usize, snp: usize) -> f64 {
        assert!(
            individual < self.individuals && snp < self.snps,
            "index out of bounds"
        );
        let w = self.bits[snp * self.words_per_col + individual / 64];
        if w >> (individual % 64) & 1 == 1 {
            self.minor[snp]
        } else {
            self.major[snp]
        }
    }
    fn to_columns(&self) -> Option<LrColumns> {
        Some(self.clone())
    }
}

/// Scans an arbitrary two-valued table into [`LrColumns`]; `None` if some
/// column holds a third bitwise-distinct value. Values are compared by bit
/// pattern (`to_bits`), not `==`: `+0.0` and `-0.0` compare equal but are
/// not interchangeable under summation or `total_cmp`, and NaNs never
/// compare equal to themselves.
fn columns_from_fn(
    individuals: usize,
    snps: usize,
    get_bits: impl Fn(usize, usize) -> u64,
) -> Option<LrColumns> {
    let words_per_col = individuals.div_ceil(64);
    let mut bits = vec![0u64; snps * words_per_col];
    let mut major = vec![0u64; snps];
    let mut minor = vec![0u64; snps];
    // 0 = no value seen, 1 = one distinct value, 2 = two distinct values.
    let mut seen = vec![0u8; snps];
    for i in 0..individuals {
        for j in 0..snps {
            let b = get_bits(i, j);
            let is_minor = match seen[j] {
                0 => {
                    major[j] = b;
                    minor[j] = b;
                    seen[j] = 1;
                    false
                }
                1 if b == major[j] => false,
                1 => {
                    minor[j] = b;
                    seen[j] = 2;
                    true
                }
                _ if b == major[j] => false,
                _ if b == minor[j] => true,
                _ => return None,
            };
            if is_minor {
                bits[j * words_per_col + i / 64] |= 1 << (i % 64);
            }
        }
    }
    Some(LrColumns {
        individuals,
        snps,
        words_per_col,
        bits: bits.into(),
        major: major.into_iter().map(f64::from_bits).collect(),
        minor: minor.into_iter().map(f64::from_bits).collect(),
    })
}

/// Parameters of the LR-test subset search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrTestParams {
    /// Tolerated false-positive rate β of the simulated attack (paper uses
    /// 0.1): the detection threshold is the (1−β) quantile of the null
    /// distribution.
    pub false_positive_rate: f64,
    /// Maximum tolerated identification power (paper uses 0.9): a SNP set
    /// is safe while the attack detects fewer than this fraction of true
    /// case participants.
    pub power_threshold: f64,
}

impl LrTestParams {
    /// SecureGenome's suggested settings: β = 0.1, power < 0.9.
    #[must_use]
    pub fn secure_genome_defaults() -> Self {
        Self {
            false_positive_rate: 0.1,
            power_threshold: 0.9,
        }
    }
}

/// Result of the subset search.
#[derive(Debug, Clone, PartialEq)]
pub struct LrSelection {
    /// Column indices (into the candidate matrix) retained as safe, in the
    /// order they were admitted.
    pub kept_columns: Vec<usize>,
    /// The attack's empirical power over the final kept set.
    pub final_power: f64,
    /// The detection threshold (null-quantile) over the final kept set.
    pub final_threshold: f64,
}

/// Runs the SecureGenome empirical subset search (`LRtest` in Algorithm 1).
///
/// `case` holds LR contributions of the true case participants, `null` the
/// contributions of reference individuals (the null model). `order` visits
/// candidate columns most-significant-first (the χ² ranking); each column
/// is kept iff the attack's power over the kept-set-so-far stays *below*
/// `params.power_threshold`.
///
/// Routes through the columnar word kernels whenever both inputs expose a
/// two-valued column view ([`LrValues::to_columns`]); the result is
/// byte-identical to [`select_safe_subset_naive`] either way.
///
/// # Panics
///
/// Panics if the matrices disagree on columns, `order` indexes out of
/// bounds, or `null` has no individuals (no null model to test against).
#[must_use]
pub fn select_safe_subset<M: LrValues + ?Sized, N: LrValues + ?Sized>(
    case: &M,
    null: &N,
    order: &[usize],
    params: &LrTestParams,
) -> LrSelection {
    select_safe_subset_threads(case, null, order, params, 1)
}

/// [`select_safe_subset`] with row-chunked parallel column updates:
/// `threads ≤ 1` runs the serial kernels, larger values split the
/// per-individual sum vectors across worker threads at 64-row boundaries.
/// Each individual's scalar accumulation sequence is unchanged by the
/// chunking, so the selection is byte-identical for every thread count.
///
/// # Panics
///
/// Same conditions as [`select_safe_subset`].
#[must_use]
pub fn select_safe_subset_threads<M: LrValues + ?Sized, N: LrValues + ?Sized>(
    case: &M,
    null: &N,
    order: &[usize],
    params: &LrTestParams,
    threads: usize,
) -> LrSelection {
    check_search_inputs(case, null, params);
    match (case.to_columns(), null.to_columns()) {
        (Some(c), Some(n)) => columns_search(&c, &n, None, order, params, threads),
        _ => select_safe_subset_naive(case, null, order, params),
    }
}

/// The retained scalar reference implementation of the subset search
/// (per-cell `get` loops, one quickselect scratch reuse per search). The
/// columnar kernels are validated against it cell-for-cell by property
/// tests and the bench harness; production callers use
/// [`select_safe_subset`].
///
/// # Panics
///
/// Same conditions as [`select_safe_subset`].
#[must_use]
pub fn select_safe_subset_naive<M: LrValues + ?Sized, N: LrValues + ?Sized>(
    case: &M,
    null: &N,
    order: &[usize],
    params: &LrTestParams,
) -> LrSelection {
    check_search_inputs(case, null, params);

    let mut scratch = Vec::new();
    let mut case_sums = vec![0.0f64; case.individuals()];
    let mut null_sums = vec![0.0f64; null.individuals()];
    let mut kept = Vec::new();
    let mut final_power = 0.0;
    let mut final_threshold = f64::INFINITY;

    for &col in order {
        assert!(col < case.snps(), "ranking indexes a non-existent column");
        // Tentatively admit the column.
        for (i, sum) in case_sums.iter_mut().enumerate() {
            *sum += case.get(i, col);
        }
        for (i, sum) in null_sums.iter_mut().enumerate() {
            *sum += null.get(i, col);
        }
        let threshold =
            null_quantile_with(&mut scratch, &null_sums, 1.0 - params.false_positive_rate);
        let detected = case_sums.iter().filter(|&&s| s > threshold).count();
        let power = detected as f64 / case.individuals().max(1) as f64;
        if power < params.power_threshold {
            kept.push(col);
            final_power = power;
            final_threshold = threshold;
        } else {
            // Back the column out and move on.
            for (i, sum) in case_sums.iter_mut().enumerate() {
                *sum -= case.get(i, col);
            }
            for (i, sum) in null_sums.iter_mut().enumerate() {
                *sum -= null.get(i, col);
            }
        }
    }

    LrSelection {
        kept_columns: kept,
        final_power,
        final_threshold,
    }
}

/// Like [`select_safe_subset`], but with a *forced* set of columns that
/// are unconditionally part of the release before any candidate is
/// considered — the dynamic-study setting, where previously released
/// statistics cannot be retracted. The forced columns seed the cumulative
/// LR sums; candidates are then admitted only while the attack's power
/// over `forced ∪ kept` stays below the bound.
///
/// `kept_columns` contains only the newly admitted candidates (not the
/// forced set); `final_power`/`final_threshold` describe the full
/// cumulative release.
///
/// # Panics
///
/// Same conditions as [`select_safe_subset`], plus out-of-range forced
/// columns.
#[must_use]
pub fn select_safe_subset_seeded<M: LrValues + ?Sized, N: LrValues + ?Sized>(
    case: &M,
    null: &N,
    forced: &[usize],
    order: &[usize],
    params: &LrTestParams,
) -> LrSelection {
    select_safe_subset_seeded_threads(case, null, forced, order, params, 1, None)
}

/// [`select_safe_subset_seeded`] with row-chunked parallelism (see
/// [`select_safe_subset_threads`]) and an optional memoized forced-prefix
/// snapshot: when `prefix` is given it must be
/// [`LrPrefixSums::accumulate`] of these same matrices and forced set
/// (callers memoize it per job and share it across collusion
/// combinations); the forced columns are then not re-accumulated.
///
/// # Panics
///
/// Same conditions as [`select_safe_subset_seeded`], plus a `prefix` whose
/// dimensions do not match the matrices.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn select_safe_subset_seeded_threads<M: LrValues + ?Sized, N: LrValues + ?Sized>(
    case: &M,
    null: &N,
    forced: &[usize],
    order: &[usize],
    params: &LrTestParams,
    threads: usize,
    prefix: Option<&LrPrefixSums>,
) -> LrSelection {
    check_search_inputs(case, null, params);
    match (case.to_columns(), null.to_columns()) {
        (Some(c), Some(n)) => {
            let computed;
            let prefix = match prefix {
                Some(p) => p,
                None => {
                    computed = LrPrefixSums::accumulate(&c, &n, forced, params);
                    &computed
                }
            };
            assert_eq!(
                prefix.case_sums.len(),
                c.individuals,
                "prefix does not match the case matrix"
            );
            assert_eq!(
                prefix.null_sums.len(),
                n.individuals,
                "prefix does not match the null matrix"
            );
            for &col in order {
                debug_assert!(!forced.contains(&col), "candidate overlaps forced set");
            }
            columns_search(&c, &n, Some(prefix), order, params, threads)
        }
        _ => select_safe_subset_seeded_naive(case, null, forced, order, params),
    }
}

/// The retained scalar reference implementation of the seeded search; see
/// [`select_safe_subset_naive`].
///
/// # Panics
///
/// Same conditions as [`select_safe_subset_seeded`].
#[must_use]
pub fn select_safe_subset_seeded_naive<M: LrValues + ?Sized, N: LrValues + ?Sized>(
    case: &M,
    null: &N,
    forced: &[usize],
    order: &[usize],
    params: &LrTestParams,
) -> LrSelection {
    check_search_inputs(case, null, params);

    let mut scratch = Vec::new();
    let mut case_sums = vec![0.0f64; case.individuals()];
    let mut null_sums = vec![0.0f64; null.individuals()];
    for &col in forced {
        assert!(col < case.snps(), "forced column out of range");
        for (i, sum) in case_sums.iter_mut().enumerate() {
            *sum += case.get(i, col);
        }
        for (i, sum) in null_sums.iter_mut().enumerate() {
            *sum += null.get(i, col);
        }
    }
    let power_of = |case_sums: &[f64], threshold: f64| {
        let detected = case_sums.iter().filter(|&&s| s > threshold).count();
        detected as f64 / case.individuals().max(1) as f64
    };
    let mut final_threshold = if forced.is_empty() {
        f64::INFINITY
    } else {
        null_quantile_with(&mut scratch, &null_sums, 1.0 - params.false_positive_rate)
    };
    let mut final_power = if forced.is_empty() {
        0.0
    } else {
        power_of(&case_sums, final_threshold)
    };
    let mut kept = Vec::new();

    for &col in order {
        assert!(col < case.snps(), "ranking indexes a non-existent column");
        debug_assert!(!forced.contains(&col), "candidate overlaps forced set");
        for (i, sum) in case_sums.iter_mut().enumerate() {
            *sum += case.get(i, col);
        }
        for (i, sum) in null_sums.iter_mut().enumerate() {
            *sum += null.get(i, col);
        }
        let threshold =
            null_quantile_with(&mut scratch, &null_sums, 1.0 - params.false_positive_rate);
        let power = power_of(&case_sums, threshold);
        if power < params.power_threshold {
            kept.push(col);
            final_power = power;
            final_threshold = threshold;
        } else {
            for (i, sum) in case_sums.iter_mut().enumerate() {
                *sum -= case.get(i, col);
            }
            for (i, sum) in null_sums.iter_mut().enumerate() {
                *sum -= null.get(i, col);
            }
        }
    }

    LrSelection {
        kept_columns: kept,
        final_power,
        final_threshold,
    }
}

/// The common input validation of every search entry point.
fn check_search_inputs<M: LrValues + ?Sized, N: LrValues + ?Sized>(
    case: &M,
    null: &N,
    params: &LrTestParams,
) {
    assert_eq!(
        case.snps(),
        null.snps(),
        "case and null must cover the same SNPs"
    );
    assert!(
        null.individuals() > 0,
        "need reference individuals for the null model"
    );
    assert!(
        (0.0..1.0).contains(&params.false_positive_rate),
        "false-positive rate must be in [0,1)"
    );
}

/// The (1−β) quantile of the null LR sums: the type-7 estimator, computed
/// with two quickselects instead of a full sort. `scratch` is reused
/// across calls so the per-candidate invocation allocates nothing.
fn null_quantile_with(scratch: &mut Vec<f64>, null_sums: &[f64], q: f64) -> f64 {
    let n = null_sums.len();
    if n == 1 {
        return null_sums[0];
    }
    let h = q * (n as f64 - 1.0);
    let lo = (h.floor() as usize).min(n - 1);
    let frac = h - lo as f64;
    scratch.clear();
    scratch.extend_from_slice(null_sums);
    // total_cmp: LR sums can degenerate to NaN (log of a zero-probability
    // genotype); quickselect must stay panic-free and deterministic.
    let cmp = |a: &f64, b: &f64| a.total_cmp(b);
    let (_, &mut low_stat, rest) = scratch.select_nth_unstable_by(lo, cmp);
    if frac == 0.0 || rest.is_empty() {
        return low_stat;
    }
    let high_stat = rest
        .iter()
        .copied()
        .min_by(|a, b| cmp(a, b))
        .expect("rest is non-empty");
    low_stat + frac * (high_stat - low_stat)
}

#[cfg(test)]
fn null_quantile(null_sums: &[f64], q: f64) -> f64 {
    null_quantile_with(&mut Vec::new(), null_sums, q)
}

// ---------------------------------------------------------------------------
// Columnar search kernels
// ---------------------------------------------------------------------------

/// LR subset-search candidates examined (both kernels and reference path
/// route through the same counters).
fn lr_candidates_total() -> &'static obs::Counter {
    static C: OnceLock<obs::Counter> = OnceLock::new();
    C.get_or_init(|| {
        obs::counter(
            "gendpr_lr_candidates_total",
            "Candidate SNP columns examined by the LR subset search",
            &[],
        )
    })
}

/// Columns admitted into the safe subset.
fn lr_columns_kept_total() -> &'static obs::Counter {
    static C: OnceLock<obs::Counter> = OnceLock::new();
    C.get_or_init(|| {
        obs::counter(
            "gendpr_lr_columns_kept_total",
            "Candidate SNP columns admitted as safe by the LR subset search",
            &[],
        )
    })
}

/// Per-candidate null-quantile latency inside the columnar kernels.
fn lr_quantile_seconds() -> &'static obs::Histogram {
    static H: OnceLock<obs::Histogram> = OnceLock::new();
    H.get_or_init(|| {
        obs::histogram(
            "gendpr_lr_quantile_seconds",
            "Null-quantile computation time per LR search candidate",
            &[],
            obs::DURATION_BUCKETS,
        )
    })
}

/// Eagerly registers the LR kernel metrics so they render (at zero) before
/// the first search runs.
pub fn register_lr_metrics() {
    let _ = lr_candidates_total();
    let _ = lr_columns_kept_total();
    let _ = lr_quantile_seconds();
}

/// Maps an `f64` to an `i64` whose natural order equals `f64::total_cmp`:
/// an involution flipping the low 63 bits of negative values. Keys let the
/// per-candidate quickselect run on plain integer comparisons.
#[inline]
fn total_order_key(v: f64) -> i64 {
    let b = v.to_bits() as i64;
    b ^ (((b >> 63) as u64) >> 1) as i64
}

/// Inverse of [`total_order_key`] (the transform is its own inverse, since
/// it never flips the sign bit).
#[inline]
fn key_value(k: i64) -> f64 {
    f64::from_bits((k ^ (((k >> 63) as u64) >> 1) as i64) as u64)
}

/// `sums[i] += level(bit_i)`, 64 individuals per bit word. The value is
/// selected branchlessly from the two per-column levels by bit masking, so
/// each individual sees the exact scalar `+=` the reference path performs.
#[inline]
fn add_column(sums: &mut [f64], words: &[u64], major: f64, minor: f64) {
    let (ma, mi) = (major.to_bits(), minor.to_bits());
    for (chunk, &word) in sums.chunks_mut(64).zip(words) {
        let mut w = word;
        for s in chunk {
            let mask = (w & 1).wrapping_neg();
            w >>= 1;
            *s += f64::from_bits((ma & !mask) | (mi & mask));
        }
    }
}

/// The back-out pass: `sums[i] -= level(bit_i)`. Subtracting (rather than
/// restoring a snapshot) reproduces the reference path's `(a+b)−b`
/// round-trip bit-for-bit.
#[inline]
fn sub_column(sums: &mut [f64], words: &[u64], major: f64, minor: f64) {
    let (ma, mi) = (major.to_bits(), minor.to_bits());
    for (chunk, &word) in sums.chunks_mut(64).zip(words) {
        let mut w = word;
        for s in chunk {
            let mask = (w & 1).wrapping_neg();
            w >>= 1;
            *s -= f64::from_bits((ma & !mask) | (mi & mask));
        }
    }
}

/// Fused null update: adds the column and refreshes the quantile key of
/// every touched sum in the same sweep.
#[inline]
fn add_column_fill_keys(sums: &mut [f64], keys: &mut [i64], words: &[u64], major: f64, minor: f64) {
    let (ma, mi) = (major.to_bits(), minor.to_bits());
    for ((chunk, kchunk), &word) in sums.chunks_mut(64).zip(keys.chunks_mut(64)).zip(words) {
        let mut w = word;
        for (s, k) in chunk.iter_mut().zip(kchunk) {
            let mask = (w & 1).wrapping_neg();
            w >>= 1;
            *s += f64::from_bits((ma & !mask) | (mi & mask));
            *k = total_order_key(*s);
        }
    }
}

/// Fused case update: adds the column and counts detections against the
/// threshold in the same sweep.
#[inline]
fn add_column_count(
    sums: &mut [f64],
    words: &[u64],
    major: f64,
    minor: f64,
    threshold: f64,
) -> usize {
    let (ma, mi) = (major.to_bits(), minor.to_bits());
    let mut detected = 0usize;
    for (chunk, &word) in sums.chunks_mut(64).zip(words) {
        let mut w = word;
        for s in chunk {
            let mask = (w & 1).wrapping_neg();
            w >>= 1;
            *s += f64::from_bits((ma & !mask) | (mi & mask));
            detected += usize::from(*s > threshold);
        }
    }
    detected
}

/// Type-7 quantile over the current null sums, evaluated on their reusable
/// total-order keys. The k-th order statistic is representation-agnostic,
/// so the result is bit-identical to [`null_quantile_with`] on the same
/// sums (including the interpolation arithmetic, evaluated on the decoded
/// `f64` endpoints).
fn quantile_from_keys(keys: &mut [i64], q: f64) -> f64 {
    let n = keys.len();
    debug_assert!(n > 0, "null model cannot be empty");
    let h = q * (n as f64 - 1.0);
    let lo = (h.floor() as usize).min(n - 1);
    let frac = h - lo as f64;
    let (_, &mut low_key, rest) = keys.select_nth_unstable(lo);
    let low_stat = key_value(low_key);
    if frac == 0.0 || rest.is_empty() {
        return low_stat;
    }
    let high_stat = key_value(*rest.iter().min().expect("rest is non-empty"));
    low_stat + frac * (high_stat - low_stat)
}

/// Snapshot of the seeded search state after accumulating the forced
/// columns: cumulative case/null sums plus the forced-only threshold and
/// power. A leader job computes this once and shares it across all
/// C(G,G−f) collusion-combination evaluations (see `core::memo`), instead
/// of re-accumulating the forced columns per combination.
#[derive(Debug, Clone, PartialEq)]
pub struct LrPrefixSums {
    case_sums: Vec<f64>,
    null_sums: Vec<f64>,
    threshold: f64,
    power: f64,
}

impl LrPrefixSums {
    /// Accumulates the forced columns in order, replicating the reference
    /// seeded search's operation sequence exactly (per column: case adds,
    /// then null adds), then evaluates the forced-only threshold/power.
    ///
    /// # Panics
    ///
    /// Panics if a forced column is out of range.
    #[must_use]
    pub fn accumulate(
        case: &LrColumns,
        null: &LrColumns,
        forced: &[usize],
        params: &LrTestParams,
    ) -> Self {
        let mut case_sums = vec![0.0f64; case.individuals];
        let mut null_sums = vec![0.0f64; null.individuals];
        for &col in forced {
            assert!(col < case.snps, "forced column out of range");
            add_column(
                &mut case_sums,
                case.col_words(col),
                case.major[col],
                case.minor[col],
            );
            add_column(
                &mut null_sums,
                null.col_words(col),
                null.major[col],
                null.minor[col],
            );
        }
        let (threshold, power) = if forced.is_empty() {
            (f64::INFINITY, 0.0)
        } else {
            let mut keys: Vec<i64> = null_sums.iter().map(|&s| total_order_key(s)).collect();
            let threshold = quantile_from_keys(&mut keys, 1.0 - params.false_positive_rate);
            let detected = case_sums.iter().filter(|&&s| s > threshold).count();
            (threshold, detected as f64 / case.individuals.max(1) as f64)
        };
        Self {
            case_sums,
            null_sums,
            threshold,
            power,
        }
    }

    /// Approximate heap size in bytes (enclave memory accounting).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        (self.case_sums.len() + self.null_sums.len()) * 8
    }
}

/// Dispatches between the serial and row-chunked parallel columnar search.
fn columns_search(
    case: &LrColumns,
    null: &LrColumns,
    prefix: Option<&LrPrefixSums>,
    order: &[usize],
    params: &LrTestParams,
    threads: usize,
) -> LrSelection {
    // More workers than 64-row word chunks would only idle at barriers.
    let workers = threads.min(case.words_per_col.max(null.words_per_col));
    let selection = if workers > 1 {
        columns_search_mt(case, null, prefix, order, params, workers)
    } else {
        columns_search_serial(case, null, prefix, order, params)
    };
    lr_candidates_total().add(order.len() as u64);
    lr_columns_kept_total().add(selection.kept_columns.len() as u64);
    selection
}

fn columns_search_serial(
    case: &LrColumns,
    null: &LrColumns,
    prefix: Option<&LrPrefixSums>,
    order: &[usize],
    params: &LrTestParams,
) -> LrSelection {
    let n_case = case.individuals;
    let q = 1.0 - params.false_positive_rate;
    let (mut case_sums, mut null_sums, mut final_threshold, mut final_power) = match prefix {
        Some(p) => (
            p.case_sums.clone(),
            p.null_sums.clone(),
            p.threshold,
            p.power,
        ),
        None => (
            vec![0.0f64; case.individuals],
            vec![0.0f64; null.individuals],
            f64::INFINITY,
            0.0,
        ),
    };
    // Quantile keys are fully refreshed by every candidate's null sweep, so
    // the in-place quickselect permutation never needs undoing.
    let mut keys = vec![0i64; null.individuals];
    let mut kept = Vec::new();
    let quantile_hist = lr_quantile_seconds();

    for &col in order {
        assert!(col < case.snps, "ranking indexes a non-existent column");
        add_column_fill_keys(
            &mut null_sums,
            &mut keys,
            null.col_words(col),
            null.major[col],
            null.minor[col],
        );
        let t0 = Instant::now();
        let threshold = quantile_from_keys(&mut keys, q);
        quantile_hist.observe_duration(t0.elapsed());
        let detected = add_column_count(
            &mut case_sums,
            case.col_words(col),
            case.major[col],
            case.minor[col],
            threshold,
        );
        let power = detected as f64 / n_case.max(1) as f64;
        if power < params.power_threshold {
            kept.push(col);
            final_power = power;
            final_threshold = threshold;
        } else {
            sub_column(
                &mut case_sums,
                case.col_words(col),
                case.major[col],
                case.minor[col],
            );
            sub_column(
                &mut null_sums,
                null.col_words(col),
                null.major[col],
                null.minor[col],
            );
        }
    }

    LrSelection {
        kept_columns: kept,
        final_power,
        final_threshold,
    }
}

// Op codes of the persistent fork-join loop below.
const OP_LOAD_PREFIX: u8 = 0;
const OP_ADD_NULL: u8 = 1;
const OP_ADD_CASE_COUNT: u8 = 2;
const OP_SUB_BOTH: u8 = 3;
const OP_QUIT: u8 = 4;

/// One op descriptor shared between the search driver and its workers;
/// the two barrier crossings around each op order all accesses, so relaxed
/// atomics suffice.
struct SharedOp {
    kind: AtomicU8,
    col: AtomicUsize,
    threshold: AtomicU64,
    detected: AtomicUsize,
}

/// Splits `words` whole bit-words into `parts` contiguous ranges, so each
/// worker owns a 64-row-aligned slice of the sum vectors.
fn word_ranges(words: usize, parts: usize) -> Vec<(usize, usize)> {
    let base = words / parts;
    let extra = words % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// A worker's event loop: owns one row chunk of the case and null sum
/// vectors and applies each published op to it. Chunking never reorders an
/// individual's scalar accumulation, so the parallel search is
/// byte-identical to the serial one.
#[allow(clippy::too_many_arguments)]
fn search_worker(
    case: &LrColumns,
    null: &LrColumns,
    prefix: Option<&LrPrefixSums>,
    keys: &[AtomicI64],
    op: &SharedOp,
    barrier: &Barrier,
    case_words: (usize, usize),
    null_words: (usize, usize),
) {
    // Both ends clamp to the population: a trailing chunk past the last
    // partial word must collapse to an empty row range, not slice beyond it.
    let case_rows = (
        (case_words.0 * 64).min(case.individuals),
        (case_words.1 * 64).min(case.individuals),
    );
    let null_rows = (
        (null_words.0 * 64).min(null.individuals),
        (null_words.1 * 64).min(null.individuals),
    );
    let mut case_sums = vec![0.0f64; case_rows.1 - case_rows.0];
    let mut null_sums = vec![0.0f64; null_rows.1 - null_rows.0];
    loop {
        barrier.wait();
        let kind = op.kind.load(Ordering::Relaxed);
        if kind == OP_QUIT {
            return;
        }
        let col = op.col.load(Ordering::Relaxed);
        match kind {
            OP_LOAD_PREFIX => {
                let p = prefix.expect("prefix op requires a prefix");
                case_sums.copy_from_slice(&p.case_sums[case_rows.0..case_rows.1]);
                null_sums.copy_from_slice(&p.null_sums[null_rows.0..null_rows.1]);
            }
            OP_ADD_NULL => {
                let words = &null.col_words(col)[null_words.0..null_words.1];
                add_column(&mut null_sums, words, null.major[col], null.minor[col]);
                for (k, &s) in keys[null_rows.0..null_rows.1].iter().zip(&null_sums) {
                    k.store(total_order_key(s), Ordering::Relaxed);
                }
            }
            OP_ADD_CASE_COUNT => {
                let words = &case.col_words(col)[case_words.0..case_words.1];
                let threshold = f64::from_bits(op.threshold.load(Ordering::Relaxed));
                let d = add_column_count(
                    &mut case_sums,
                    words,
                    case.major[col],
                    case.minor[col],
                    threshold,
                );
                op.detected.fetch_add(d, Ordering::Relaxed);
            }
            OP_SUB_BOTH => {
                sub_column(
                    &mut case_sums,
                    &case.col_words(col)[case_words.0..case_words.1],
                    case.major[col],
                    case.minor[col],
                );
                sub_column(
                    &mut null_sums,
                    &null.col_words(col)[null_words.0..null_words.1],
                    null.major[col],
                    null.minor[col],
                );
            }
            _ => unreachable!("unknown search op"),
        }
        barrier.wait();
    }
}

/// The row-chunked parallel search: a persistent fork-join pool spanning
/// the whole candidate loop (spawning per column would dominate the
/// kernels). The driver publishes one op at a time; workers update their
/// chunks between two barrier crossings. Quantiles still run on the driver
/// thread, over a copy of the worker-written key array.
fn columns_search_mt(
    case: &LrColumns,
    null: &LrColumns,
    prefix: Option<&LrPrefixSums>,
    order: &[usize],
    params: &LrTestParams,
    workers: usize,
) -> LrSelection {
    let n_case = case.individuals;
    let q = 1.0 - params.false_positive_rate;
    let case_ranges = word_ranges(case.words_per_col, workers);
    let null_ranges = word_ranges(null.words_per_col, workers);
    let keys: Vec<AtomicI64> = (0..null.individuals).map(|_| AtomicI64::new(0)).collect();
    let op = SharedOp {
        kind: AtomicU8::new(OP_QUIT),
        col: AtomicUsize::new(0),
        threshold: AtomicU64::new(0),
        detected: AtomicUsize::new(0),
    };
    let barrier = Barrier::new(workers + 1);
    let mut select_buf = vec![0i64; null.individuals];
    let mut kept = Vec::new();
    let (mut final_threshold, mut final_power) =
        prefix.map_or((f64::INFINITY, 0.0), |p| (p.threshold, p.power));
    let quantile_hist = lr_quantile_seconds();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let (cw, nw) = (case_ranges[w], null_ranges[w]);
            let (keys, op, barrier) = (&keys[..], &op, &barrier);
            scope.spawn(move || search_worker(case, null, prefix, keys, op, barrier, cw, nw));
        }
        let run = |kind: u8, col: usize, threshold: f64| {
            op.kind.store(kind, Ordering::Relaxed);
            op.col.store(col, Ordering::Relaxed);
            op.threshold.store(threshold.to_bits(), Ordering::Relaxed);
            barrier.wait(); // release the op to the workers
            barrier.wait(); // wait for every chunk to finish it
        };
        if prefix.is_some() {
            run(OP_LOAD_PREFIX, 0, 0.0);
        }
        for &col in order {
            assert!(col < case.snps, "ranking indexes a non-existent column");
            run(OP_ADD_NULL, col, 0.0);
            for (dst, k) in select_buf.iter_mut().zip(&keys) {
                *dst = k.load(Ordering::Relaxed);
            }
            let t0 = Instant::now();
            let threshold = quantile_from_keys(&mut select_buf, q);
            quantile_hist.observe_duration(t0.elapsed());
            op.detected.store(0, Ordering::Relaxed);
            run(OP_ADD_CASE_COUNT, col, threshold);
            let detected = op.detected.load(Ordering::Relaxed);
            let power = detected as f64 / n_case.max(1) as f64;
            if power < params.power_threshold {
                kept.push(col);
                final_power = power;
                final_threshold = threshold;
            } else {
                run(OP_SUB_BOTH, col, 0.0);
            }
        }
        op.kind.store(OP_QUIT, Ordering::Relaxed);
        barrier.wait();
    });

    LrSelection {
        kept_columns: kept,
        final_power,
        final_threshold,
    }
}

/// Normal-approximation of the LR-test (used by the ablation benches and to
/// cross-check the empirical search).
///
/// Accumulates per-SNP terms of the null/alternative mean and variance of
/// the LR statistic; `power` then evaluates
/// `P(N(μ₁,σ₁²) > μ₀ + z_{1−β}·σ₀)`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TheoreticalLr {
    /// Mean under the null (individual drawn from the reference).
    pub mu0: f64,
    /// Variance under the null.
    pub var0: f64,
    /// Mean under the alternative (individual in the case group).
    pub mu1: f64,
    /// Variance under the alternative.
    pub var1: f64,
}

impl TheoreticalLr {
    /// Adds one SNP's contribution given its global case/reference
    /// frequencies.
    pub fn add_snp(&mut self, case_freq: f64, ref_freq: f64) {
        let p_hat = case_freq.clamp(FREQ_EPS, 1.0 - FREQ_EPS);
        let p = ref_freq.clamp(FREQ_EPS, 1.0 - FREQ_EPS);
        let l1 = (p_hat / p).ln();
        let l0 = ((1.0 - p_hat) / (1.0 - p)).ln();
        let lambda = l1 - l0;
        self.mu0 += p * l1 + (1.0 - p) * l0;
        self.var0 += p * (1.0 - p) * lambda * lambda;
        self.mu1 += p_hat * l1 + (1.0 - p_hat) * l0;
        self.var1 += p_hat * (1.0 - p_hat) * lambda * lambda;
    }

    /// Detection power at false-positive rate β under the normal
    /// approximation.
    #[must_use]
    pub fn power(&self, false_positive_rate: f64) -> f64 {
        if self.var0 <= 0.0 || self.var1 <= 0.0 {
            return 0.0;
        }
        let z = crate::special::normal_quantile(1.0 - false_positive_rate);
        let threshold = self.mu0 + z * self.var0.sqrt();
        crate::special::normal_sf((threshold - self.mu1) / self.var1.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendpr_crypto::rng::ChaChaRng;

    #[test]
    fn contribution_signs() {
        // Minor allele more frequent in cases: carrying it raises the LR.
        assert!(lr_contribution(1, 0.4, 0.2) > 0.0);
        assert!(lr_contribution(0, 0.4, 0.2) < 0.0);
        // Equal frequencies carry no information.
        assert_eq!(lr_contribution(1, 0.3, 0.3), 0.0);
        assert_eq!(lr_contribution(0, 0.3, 0.3), 0.0);
    }

    #[test]
    fn contribution_is_finite_for_degenerate_freqs() {
        for x in [0u8, 1] {
            assert!(lr_contribution(x, 0.0, 0.5).is_finite());
            assert!(lr_contribution(x, 1.0, 0.5).is_finite());
            assert!(lr_contribution(x, 0.5, 0.0).is_finite());
            assert!(lr_contribution(x, 0.5, 1.0).is_finite());
        }
    }

    fn toy_matrix(rows: &[&[u8]]) -> GenotypeMatrix {
        let snps = rows[0].len();
        let mut m = GenotypeMatrix::zeroed(rows.len(), snps);
        for (i, row) in rows.iter().enumerate() {
            for (l, &x) in row.iter().enumerate() {
                if x == 1 {
                    m.set(i, l, true);
                }
            }
        }
        m
    }

    #[test]
    fn matrix_from_genotypes_matches_manual() {
        let g = toy_matrix(&[&[0, 1], &[1, 1]]);
        let snps = [SnpId(0), SnpId(1)];
        let cf = [0.4, 0.6];
        let rf = [0.2, 0.5];
        let m = LrMatrix::from_genotypes(&g, &snps, &cf, &rf);
        assert_eq!(m.individuals(), 2);
        assert_eq!(m.snps(), 2);
        assert!((m.get(0, 0) - lr_contribution(0, 0.4, 0.2)).abs() < 1e-15);
        assert!((m.get(0, 1) - lr_contribution(1, 0.6, 0.5)).abs() < 1e-15);
        assert!((m.get(1, 0) - lr_contribution(1, 0.4, 0.2)).abs() < 1e-15);
    }

    #[test]
    fn concat_rows_stacks() {
        let g1 = toy_matrix(&[&[0, 1]]);
        let g2 = toy_matrix(&[&[1, 0], &[1, 1]]);
        let snps = [SnpId(0), SnpId(1)];
        let cf = [0.4, 0.6];
        let rf = [0.2, 0.5];
        let m1 = LrMatrix::from_genotypes(&g1, &snps, &cf, &rf);
        let m2 = LrMatrix::from_genotypes(&g2, &snps, &cf, &rf);
        let merged = LrMatrix::concat_rows(&[m1.clone(), m2]);
        assert_eq!(merged.individuals(), 3);
        assert!((merged.get(0, 0) - m1.get(0, 0)).abs() < 1e-15);
        // Row 1 of merged == row 0 of g2.
        assert!((merged.get(1, 0) - lr_contribution(1, 0.4, 0.2)).abs() < 1e-15);
    }

    #[test]
    fn values_roundtrip() {
        let g = toy_matrix(&[&[0, 1], &[1, 0]]);
        let m = LrMatrix::from_genotypes(&g, &[SnpId(0), SnpId(1)], &[0.3, 0.3], &[0.2, 0.4]);
        let rebuilt = LrMatrix::from_values(2, 2, m.values().to_vec());
        assert_eq!(m, rebuilt);
    }

    /// Builds case/null LR matrices from synthetic frequencies: `divergent`
    /// columns have a real case/ref frequency gap, the rest none.
    fn synthetic_lr(
        n_case: usize,
        n_ref: usize,
        divergent: usize,
        neutral: usize,
        gap: f64,
        seed: u64,
    ) -> (LrMatrix, LrMatrix, Vec<usize>) {
        let mut rng = ChaChaRng::from_seed_u64(seed);
        let total = divergent + neutral;
        let mut case_freqs = Vec::new();
        let mut ref_freqs = Vec::new();
        for j in 0..total {
            let p = 0.2 + 0.3 * rng.next_f64();
            ref_freqs.push(p);
            case_freqs.push(if j < divergent {
                (p + gap).min(0.95)
            } else {
                p
            });
        }
        let mut case_g = GenotypeMatrix::zeroed(n_case, total);
        let mut ref_g = GenotypeMatrix::zeroed(n_ref, total);
        for i in 0..n_case {
            #[allow(clippy::needless_range_loop)]
            for j in 0..total {
                if rng.next_bool(case_freqs[j]) {
                    case_g.set(i, j, true);
                }
            }
        }
        for i in 0..n_ref {
            #[allow(clippy::needless_range_loop)]
            for j in 0..total {
                if rng.next_bool(ref_freqs[j]) {
                    ref_g.set(i, j, true);
                }
            }
        }
        let ids: Vec<SnpId> = (0..total as u32).map(SnpId).collect();
        // The "attack model" uses the empirical frequencies, as the protocol
        // would compute them.
        let emp_case: Vec<f64> = case_g
            .column_counts()
            .iter()
            .map(|&c| c as f64 / n_case as f64)
            .collect();
        let emp_ref: Vec<f64> = ref_g
            .column_counts()
            .iter()
            .map(|&c| c as f64 / n_ref as f64)
            .collect();
        let case_m = LrMatrix::from_genotypes(&case_g, &ids, &emp_case, &emp_ref);
        let null_m = LrMatrix::from_genotypes(&ref_g, &ids, &emp_case, &emp_ref);
        let order: Vec<usize> = (0..total).collect();
        (case_m, null_m, order)
    }

    #[test]
    fn selection_keeps_everything_when_no_divergence() {
        let (case, null, order) = synthetic_lr(300, 300, 0, 30, 0.0, 1);
        let sel = select_safe_subset(
            &case,
            &null,
            &order,
            &LrTestParams::secure_genome_defaults(),
        );
        assert_eq!(sel.kept_columns.len(), 30, "neutral SNPs are all safe");
        assert!(sel.final_power < 0.9);
    }

    #[test]
    fn selection_drops_columns_when_divergence_is_extreme() {
        // 60 strongly divergent SNPs: the attack gains power as columns
        // accumulate, so the search must reject some.
        let (case, null, order) = synthetic_lr(400, 400, 60, 0, 0.35, 2);
        let sel = select_safe_subset(
            &case,
            &null,
            &order,
            &LrTestParams::secure_genome_defaults(),
        );
        assert!(
            sel.kept_columns.len() < 60,
            "kept {} of 60 strongly divergent SNPs",
            sel.kept_columns.len()
        );
        assert!(sel.final_power < 0.9, "power bound respected");
    }

    #[test]
    fn final_power_bound_holds() {
        for seed in 0..5 {
            let (case, null, order) = synthetic_lr(200, 200, 20, 20, 0.25, seed);
            let params = LrTestParams {
                false_positive_rate: 0.1,
                power_threshold: 0.6,
            };
            let sel = select_safe_subset(&case, &null, &order, &params);
            assert!(
                sel.final_power < 0.6,
                "seed {seed}: power {}",
                sel.final_power
            );
        }
    }

    #[test]
    fn stricter_power_threshold_keeps_fewer() {
        let (case, null, order) = synthetic_lr(300, 300, 40, 10, 0.3, 3);
        let loose = select_safe_subset(
            &case,
            &null,
            &order,
            &LrTestParams {
                false_positive_rate: 0.1,
                power_threshold: 0.9,
            },
        );
        let strict = select_safe_subset(
            &case,
            &null,
            &order,
            &LrTestParams {
                false_positive_rate: 0.1,
                power_threshold: 0.3,
            },
        );
        assert!(strict.kept_columns.len() <= loose.kept_columns.len());
    }

    #[test]
    fn theoretical_power_tracks_empirical() {
        // One configuration, both estimators should agree on the big picture.
        let n = 2_000;
        let (case, null, order) = synthetic_lr(n, n, 15, 0, 0.12, 4);
        let sel = select_safe_subset(
            &case,
            &null,
            &order,
            &LrTestParams {
                false_positive_rate: 0.1,
                power_threshold: 2.0, // never reject: measure full-set power
            },
        );
        // Theoretical power over all 15 columns with the same frequencies is
        // hard to reconstruct here without re-deriving frequencies, so check
        // qualitative agreement: with a real gap, power is well above beta.
        assert!(sel.final_power > 0.2, "power {}", sel.final_power);

        let mut th = TheoreticalLr::default();
        for _ in 0..15 {
            th.add_snp(0.42, 0.30);
        }
        let p = th.power(0.1);
        assert!(p > 0.2 && p <= 1.0, "theoretical power {p}");
        // More divergent SNPs -> more power.
        let mut th2 = th;
        for _ in 0..15 {
            th2.add_snp(0.42, 0.30);
        }
        assert!(th2.power(0.1) > p);
    }

    #[test]
    fn theoretical_power_zero_without_divergence() {
        let mut th = TheoreticalLr::default();
        th.add_snp(0.3, 0.3);
        assert_eq!(th.power(0.1), 0.0, "no variance, no power");
    }

    #[test]
    fn bit_matrix_matches_dense_everywhere() {
        let g = toy_matrix(&[&[0, 1], &[1, 1], &[1, 0]]);
        let snps = [SnpId(0), SnpId(1)];
        let cf = [0.4, 0.6];
        let rf = [0.2, 0.5];
        let dense = LrMatrix::from_genotypes(&g, &snps, &cf, &rf);
        let packed = BitLrMatrix::from_genotypes(&g, &snps, &cf, &rf);
        assert_eq!(packed.individuals(), dense.individuals());
        assert_eq!(packed.snps(), dense.snps());
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(LrValues::get(&packed, i, j), dense.get(i, j));
            }
        }
        assert_eq!(packed.to_dense(), dense);
        // The 64x packing advantage shows at realistic sizes (the tiny
        // matrix above is dominated by the level vectors).
        let big = GenotypeMatrix::zeroed(1_000, 128);
        let ids: Vec<SnpId> = (0..128u32).map(SnpId).collect();
        let freqs = vec![0.3; 128];
        let big_dense = LrMatrix::from_genotypes(&big, &ids, &freqs, &freqs);
        let big_packed = BitLrMatrix::from_genotypes(&big, &ids, &freqs, &freqs);
        assert!(big_packed.heap_bytes() * 30 < big_dense.heap_bytes());
    }

    #[test]
    fn packed_selection_equals_dense_selection() {
        let (case, null, order) = synthetic_lr(200, 200, 15, 15, 0.25, 8);
        let params = LrTestParams::secure_genome_defaults();
        let dense_sel = select_safe_subset(&case, &null, &order, &params);
        // Rebuild packed versions from the dense values' sign structure is
        // impossible in general; instead regenerate from the same inputs.
        // synthetic_lr builds from genotypes internally, so emulate with
        // from_indicator off the dense matrices' two-level structure.
        // Columns are two-valued: minor value is the larger-magnitude of
        // distinct values... simpler: use from_raw_bits via dense lookup.
        // Here we check mixed-type selection: packed case vs dense null.
        let n = case.individuals();
        let l = case.snps();
        // Reconstruct levels: for each column grab the distinct values.
        let mut major = vec![0.0; l];
        let mut minor = vec![0.0; l];
        for j in 0..l {
            let v0 = case.get(0, j);
            let mut v1 = v0;
            for i in 0..n {
                if case.get(i, j) != v0 {
                    v1 = case.get(i, j);
                    break;
                }
            }
            // Assign arbitrarily; the indicator below matches the choice.
            major[j] = v0;
            minor[j] = v1;
        }
        let packed = {
            let mut bits = vec![0u64; n * l.div_ceil(64)];
            let words = l.div_ceil(64);
            for i in 0..n {
                for j in 0..l {
                    if case.get(i, j) == minor[j] && minor[j] != major[j] {
                        bits[i * words + j / 64] |= 1 << (j % 64);
                    }
                }
            }
            // from_raw_bits recomputes levels from freqs; instead build via
            // from_indicator-style private path: reuse LrMatrix::from_indicator
            // to make a dense copy and compare.
            LrMatrix::from_indicator(n, l, &major, &minor, |i, j| {
                bits[i * words + j / 64] >> (j % 64) & 1 == 1
            })
        };
        assert_eq!(packed, case, "reconstruction must be exact");
        let packed_sel = select_safe_subset(&packed, &null, &order, &params);
        assert_eq!(dense_sel, packed_sel);
    }

    #[test]
    fn bit_matrix_concat_matches_dense_concat() {
        let g1 = toy_matrix(&[&[0, 1]]);
        let g2 = toy_matrix(&[&[1, 0], &[1, 1]]);
        let snps = [SnpId(0), SnpId(1)];
        let cf = [0.4, 0.6];
        let rf = [0.2, 0.5];
        let p1 = BitLrMatrix::from_genotypes(&g1, &snps, &cf, &rf);
        let p2 = BitLrMatrix::from_genotypes(&g2, &snps, &cf, &rf);
        let merged = BitLrMatrix::concat_rows(&[p1, p2]);
        let d1 = LrMatrix::from_genotypes(&g1, &snps, &cf, &rf);
        let d2 = LrMatrix::from_genotypes(&g2, &snps, &cf, &rf);
        assert_eq!(merged.to_dense(), LrMatrix::concat_rows(&[d1, d2]));
    }

    #[test]
    fn raw_bits_validation() {
        assert!(BitLrMatrix::from_raw_bits(2, 70, vec![0; 4], &[0.5; 70], &[0.4; 70]).is_ok());
        assert!(BitLrMatrix::from_raw_bits(2, 70, vec![0; 3], &[0.5; 70], &[0.4; 70]).is_err());
        assert!(BitLrMatrix::from_raw_bits(2, 70, vec![0; 4], &[0.5; 69], &[0.4; 70]).is_err());
    }

    #[test]
    fn seeded_selection_with_empty_forced_equals_plain() {
        let (case, null, order) = synthetic_lr(200, 200, 10, 20, 0.2, 12);
        let params = LrTestParams::secure_genome_defaults();
        let plain = select_safe_subset(&case, &null, &order, &params);
        let seeded = select_safe_subset_seeded(&case, &null, &[], &order, &params);
        assert_eq!(plain, seeded);
    }

    #[test]
    fn forced_columns_consume_the_power_budget() {
        let (case, null, order) = synthetic_lr(300, 300, 30, 0, 0.3, 13);
        let params = LrTestParams {
            false_positive_rate: 0.1,
            power_threshold: 0.6,
        };
        // Without a forced set, some candidates fit under the budget.
        let plain = select_safe_subset(&case, &null, &order, &params);
        assert!(!plain.kept_columns.is_empty());
        // Force the plain selection; the remaining candidates must admit
        // no more than what a fresh run over the leftovers would.
        let leftovers: Vec<usize> = order
            .iter()
            .copied()
            .filter(|c| !plain.kept_columns.contains(c))
            .collect();
        let seeded =
            select_safe_subset_seeded(&case, &null, &plain.kept_columns, &leftovers, &params);
        // The forced set already sits just under the bound, so few (often
        // zero) additional divergent columns can join.
        assert!(
            seeded.kept_columns.len() <= leftovers.len(),
            "sanity: cannot admit more than offered"
        );
        assert!(seeded.final_power < params.power_threshold);
    }

    #[test]
    fn null_quantile_matches_sorted_estimator() {
        let mut rng = ChaChaRng::from_seed_u64(31);
        for n in [1usize, 2, 5, 100, 1001] {
            let sums: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
            for q in [0.0, 0.1, 0.5, 0.9, 0.95, 1.0] {
                let mut sorted = sums.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let reference = crate::special::empirical_quantile(&sorted, q);
                let fast = super::null_quantile(&sums, q);
                assert!(
                    (fast - reference).abs() < 1e-12,
                    "n={n} q={q}: {fast} vs {reference}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "same SNPs")]
    fn selection_rejects_mismatched_matrices() {
        let a = LrMatrix::from_values(1, 2, vec![0.0; 2]);
        let b = LrMatrix::from_values(1, 3, vec![0.0; 3]);
        let _ = select_safe_subset(&a, &b, &[0], &LrTestParams::secure_genome_defaults());
    }
}
