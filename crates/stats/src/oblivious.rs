//! Data-oblivious variants of the selection kernels.
//!
//! The paper's conclusion: "In future work, we plan to extend GenDPR to
//! cope with side-channel attacks against TEEs by designing an oblivious
//! version of the protocol." SGX enclaves leak through memory access
//! patterns (§2.1), so an adversary observing the leader enclave's cache
//! lines could learn which SNPs were rejected *before* the release is
//! published, or worse, properties of individual genomes.
//!
//! This module provides the oblivious building blocks for the leader-side
//! decisions, trading time for pattern-freedom:
//!
//! * [`bitonic_sort`] — a fixed-topology sorting network (the comparison
//!   sequence depends only on the input *length*), replacing the
//!   data-dependent quickselect in the LR-test's quantile,
//! * [`select_safe_subset_oblivious`] — the SecureGenome subset search
//!   with branchless keep/back-out updates: every candidate performs the
//!   same reads and writes whether it is kept or rejected,
//! * [`oblivious_maf_flags`] — Phase 1's cutoff comparison as branchless
//!   flag arithmetic.
//!
//! The selected sets are **identical** to the non-oblivious kernels
//! (asserted by tests); the overhead is measured by the `ablation` and
//! criterion benches, reproducing the literature's observation that
//! data-oblivious genomic processing pays a significant constant factor.

use crate::lr::{LrSelection, LrTestParams, LrValues};

/// Branchless f64 select on the bit level (safe for infinities, where
/// `mask*a + (1-mask)*b` would produce NaN): picks `a` when `choice` is 1.
#[inline]
fn fselect(choice: u8, a: f64, b: f64) -> f64 {
    debug_assert!(choice <= 1);
    let mask = u64::from(choice).wrapping_neg();
    f64::from_bits((mask & a.to_bits()) | (!mask & b.to_bits()))
}

/// Sorts `data` in place with a bitonic network padded to the next power
/// of two. The sequence of compared indices depends only on `data.len()`,
/// never on the values.
///
/// # Panics
///
/// Panics if the input contains NaN (LR sums are always finite).
pub fn bitonic_sort(data: &mut [f64]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    assert!(data.iter().all(|x| !x.is_nan()), "cannot sort NaN");
    let padded = n.next_power_of_two();
    // Pad with +inf so the suffix sorts to the end and can be truncated.
    let mut buf = Vec::with_capacity(padded);
    buf.extend_from_slice(data);
    buf.resize(padded, f64::INFINITY);

    let mut k = 2;
    while k <= padded {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..padded {
                let partner = i ^ j;
                if partner > i {
                    let ascending = i & k == 0;
                    // Branchless compare-exchange: min/max are compiled to
                    // branch-free instructions on f64.
                    let (lo, hi) = (buf[i].min(buf[partner]), buf[i].max(buf[partner]));
                    if ascending {
                        buf[i] = lo;
                        buf[partner] = hi;
                    } else {
                        buf[i] = hi;
                        buf[partner] = lo;
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    data.copy_from_slice(&buf[..n]);
}

/// The (1−β) quantile computed over a bitonic-sorted copy — same type-7
/// estimator as the fast path, fixed access pattern.
fn oblivious_quantile(sums: &[f64], q: f64) -> f64 {
    let mut sorted = sums.to_vec();
    bitonic_sort(&mut sorted);
    crate::special::empirical_quantile(&sorted, q)
}

/// Oblivious SecureGenome subset search. Produces exactly the same
/// selection as [`crate::lr::select_safe_subset`], but every candidate
/// column triggers the identical sequence of memory operations whether it
/// is kept or backed out, and the null-quantile uses a sorting network.
///
/// # Panics
///
/// Same conditions as [`crate::lr::select_safe_subset`].
#[must_use]
pub fn select_safe_subset_oblivious<M: LrValues + ?Sized, N: LrValues + ?Sized>(
    case: &M,
    null: &N,
    order: &[usize],
    params: &LrTestParams,
) -> LrSelection {
    assert_eq!(
        case.snps(),
        null.snps(),
        "case and null must cover the same SNPs"
    );
    assert!(
        null.individuals() > 0,
        "need reference individuals for the null model"
    );
    assert!(
        (0.0..1.0).contains(&params.false_positive_rate),
        "false-positive rate must be in [0,1)"
    );

    let mut case_sums = vec![0.0f64; case.individuals()];
    let mut null_sums = vec![0.0f64; null.individuals()];
    // One keep flag per visited candidate — written unconditionally.
    let mut keep_flags = vec![0.0f64; order.len()];
    let mut final_power = 0.0;
    let mut final_threshold = f64::INFINITY;

    for (step, &col) in order.iter().enumerate() {
        assert!(col < case.snps(), "ranking indexes a non-existent column");
        // Tentatively add the column (always).
        for (i, sum) in case_sums.iter_mut().enumerate() {
            *sum += case.get(i, col);
        }
        for (i, sum) in null_sums.iter_mut().enumerate() {
            *sum += null.get(i, col);
        }
        let threshold = oblivious_quantile(&null_sums, 1.0 - params.false_positive_rate);
        // Branchless detection count: (sum > threshold) as f64 summed.
        let detected: f64 = case_sums
            .iter()
            .map(|&s| f64::from(u8::from(s > threshold)))
            .sum();
        let power = detected / case.individuals().max(1) as f64;
        let keep = u8::from(power < params.power_threshold);
        keep_flags[step] = f64::from(keep);
        // Back the column out scaled by (1 - keep): a kept column
        // subtracts zero, a rejected one subtracts its contribution —
        // identical reads and writes either way.
        let back = 1.0 - f64::from(keep);
        for (i, sum) in case_sums.iter_mut().enumerate() {
            *sum -= back * case.get(i, col);
        }
        for (i, sum) in null_sums.iter_mut().enumerate() {
            *sum -= back * null.get(i, col);
        }
        // Track the final decision metrics branchlessly.
        final_power = fselect(keep, power, final_power);
        final_threshold = fselect(keep, threshold, final_threshold);
    }

    // The kept set itself is public output (it IS the release), so
    // materializing it non-obliviously leaks nothing new.
    let kept_columns: Vec<usize> = order
        .iter()
        .zip(keep_flags.iter())
        .filter(|(_, &flag)| flag == 1.0)
        .map(|(&col, _)| col)
        .collect();

    LrSelection {
        kept_columns,
        final_power,
        final_threshold,
    }
}

/// Phase 1's cutoff decision as branchless flag arithmetic over the whole
/// panel: returns a 0/1 flag per SNP without any data-dependent branch or
/// early exit.
#[must_use]
pub fn oblivious_maf_flags(global_freqs: &[f64], cutoff: f64) -> Vec<u8> {
    global_freqs
        .iter()
        .map(|&f| {
            let folded = f.min(1.0 - f);
            u8::from(folded >= cutoff)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lr::select_safe_subset;
    use gendpr_crypto::rng::ChaChaRng;

    #[test]
    fn bitonic_sort_matches_std_sort() {
        let mut rng = ChaChaRng::from_seed_u64(1);
        for n in [0usize, 1, 2, 3, 7, 8, 9, 100, 255, 256, 1000] {
            let mut data: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
            let mut expected = data.clone();
            expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
            bitonic_sort(&mut data);
            assert_eq!(data, expected, "n = {n}");
        }
    }

    #[test]
    fn bitonic_sort_handles_duplicates_and_infinities() {
        let mut data = vec![3.0, f64::NEG_INFINITY, 3.0, 0.0, f64::INFINITY, -1.0];
        bitonic_sort(&mut data);
        assert_eq!(
            data,
            vec![f64::NEG_INFINITY, -1.0, 0.0, 3.0, 3.0, f64::INFINITY]
        );
    }

    #[test]
    #[should_panic(expected = "cannot sort NaN")]
    fn bitonic_sort_rejects_nan() {
        let mut data = vec![1.0, f64::NAN];
        bitonic_sort(&mut data);
    }

    fn random_matrices(
        snps: usize,
        n: usize,
        gap: f64,
        seed: u64,
    ) -> (crate::lr::LrMatrix, crate::lr::LrMatrix, Vec<usize>) {
        use gendpr_genomics::genotype::GenotypeMatrix;
        use gendpr_genomics::snp::SnpId;
        let mut rng = ChaChaRng::from_seed_u64(seed);
        let mut case = GenotypeMatrix::zeroed(n, snps);
        let mut reference = GenotypeMatrix::zeroed(n, snps);
        for j in 0..snps {
            let p = 0.2 + 0.3 * rng.next_f64();
            let q = (p + gap * rng.next_f64()).min(0.9);
            for i in 0..n {
                if rng.next_bool(q) {
                    case.set(i, j, true);
                }
                if rng.next_bool(p) {
                    reference.set(i, j, true);
                }
            }
        }
        use crate::lr::LrMatrix;
        let ids: Vec<SnpId> = (0..snps as u32).map(SnpId).collect();
        let cf: Vec<f64> = case
            .column_counts()
            .iter()
            .map(|&c| c as f64 / n as f64)
            .collect();
        let rf: Vec<f64> = reference
            .column_counts()
            .iter()
            .map(|&c| c as f64 / n as f64)
            .collect();
        let case_m = LrMatrix::from_genotypes(&case, &ids, &cf, &rf);
        let null_m = LrMatrix::from_genotypes(&reference, &ids, &cf, &rf);
        (case_m, null_m, (0..snps).collect())
    }

    #[test]
    fn oblivious_selection_equals_fast_path() {
        for seed in 0..6u64 {
            let (case, null, order) = random_matrices(30, 150, 0.25, seed);
            let params = LrTestParams {
                false_positive_rate: 0.1,
                power_threshold: 0.6,
            };
            let fast = select_safe_subset(&case, &null, &order, &params);
            let obl = select_safe_subset_oblivious(&case, &null, &order, &params);
            assert_eq!(fast.kept_columns, obl.kept_columns, "seed {seed}");
            assert!((fast.final_power - obl.final_power).abs() < 1e-12);
            assert!(
                (fast.final_threshold - obl.final_threshold).abs() < 1e-9
                    || (fast.final_threshold.is_infinite() && obl.final_threshold.is_infinite()),
                "seed {seed}: {} vs {}",
                fast.final_threshold,
                obl.final_threshold
            );
        }
    }

    #[test]
    fn oblivious_maf_flags_match_branching_path() {
        use crate::maf::passes_maf;
        let freqs = [0.0, 0.03, 0.05, 0.2, 0.5, 0.8, 0.97, 1.0];
        let flags = oblivious_maf_flags(&freqs, 0.05);
        for (f, flag) in freqs.iter().zip(flags.iter()) {
            assert_eq!(*flag == 1, passes_maf(*f, 0.05), "freq {f}");
        }
    }

    #[test]
    fn empty_candidate_list_is_fine() {
        let (case, null, _) = random_matrices(5, 20, 0.1, 9);
        let sel = select_safe_subset_oblivious(
            &case,
            &null,
            &[],
            &LrTestParams::secure_genome_defaults(),
        );
        assert!(sel.kept_columns.is_empty());
        assert_eq!(sel.final_power, 0.0);
    }
}
