//! Property-based equivalence of the columnar LR subset-search kernels
//! against the retained scalar reference: for any two-valued LR matrices
//! (dense, bit-packed or columnar), any candidate order, any forced set
//! and any thread count, the selection must be **byte-identical** —
//! `kept_columns`, `final_power` and `final_threshold` all compare equal
//! as exact values.

use gendpr_crypto::rng::ChaChaRng;
use gendpr_genomics::genotype::GenotypeMatrix;
use gendpr_genomics::snp::SnpId;
use gendpr_stats::lr::{
    select_safe_subset, select_safe_subset_naive, select_safe_subset_seeded,
    select_safe_subset_seeded_naive, select_safe_subset_seeded_threads, select_safe_subset_threads,
    BitLrMatrix, LrMatrix, LrTestParams, LrValues,
};
use proptest::prelude::*;

/// A reproducible LR test fixture: genotype-derived case/null matrices
/// with empirical frequencies, plus a candidate visiting order.
#[derive(Debug, Clone)]
struct Fixture {
    case_g: GenotypeMatrix,
    null_g: GenotypeMatrix,
    ids: Vec<SnpId>,
    case_freqs: Vec<f64>,
    ref_freqs: Vec<f64>,
    order: Vec<usize>,
}

impl Fixture {
    fn generate(n_case: usize, n_ref: usize, snps: usize, gap: f64, seed: u64) -> Self {
        let mut rng = ChaChaRng::from_seed_u64(seed);
        let mut case_freqs = Vec::with_capacity(snps);
        let mut ref_freqs = Vec::with_capacity(snps);
        for j in 0..snps {
            let p = 0.15 + 0.4 * rng.next_f64();
            ref_freqs.push(p);
            case_freqs.push(if j % 3 == 0 { (p + gap).min(0.95) } else { p });
        }
        let mut case_g = GenotypeMatrix::zeroed(n_case, snps);
        let mut null_g = GenotypeMatrix::zeroed(n_ref, snps);
        for i in 0..n_case {
            for (j, &f) in case_freqs.iter().enumerate() {
                if rng.next_bool(f) {
                    case_g.set(i, j, true);
                }
            }
        }
        for i in 0..n_ref {
            for (j, &f) in ref_freqs.iter().enumerate() {
                if rng.next_bool(f) {
                    null_g.set(i, j, true);
                }
            }
        }
        // The attack model uses the empirical frequencies, as the
        // protocol would compute them.
        let cf: Vec<f64> = case_g
            .column_counts()
            .iter()
            .map(|&c| c as f64 / n_case as f64)
            .collect();
        let rf: Vec<f64> = null_g
            .column_counts()
            .iter()
            .map(|&c| c as f64 / n_ref as f64)
            .collect();
        Self {
            case_g,
            null_g,
            ids: (0..snps as u32).map(SnpId).collect(),
            case_freqs: cf,
            ref_freqs: rf,
            order: (0..snps).collect(),
        }
    }

    fn dense(&self) -> (LrMatrix, LrMatrix) {
        (
            LrMatrix::from_genotypes(&self.case_g, &self.ids, &self.case_freqs, &self.ref_freqs),
            LrMatrix::from_genotypes(&self.null_g, &self.ids, &self.case_freqs, &self.ref_freqs),
        )
    }

    fn packed(&self) -> (BitLrMatrix, BitLrMatrix) {
        (
            BitLrMatrix::from_genotypes(&self.case_g, &self.ids, &self.case_freqs, &self.ref_freqs),
            BitLrMatrix::from_genotypes(&self.null_g, &self.ids, &self.case_freqs, &self.ref_freqs),
        )
    }
}

fn fixture_strategy() -> impl Strategy<Value = Fixture> {
    (
        1usize..200,  // case individuals (crossing the 64/128 word edges)
        1usize..200,  // reference individuals
        1usize..90,   // snps (crossing the one-word column edge)
        0.0f64..0.35, // case/ref frequency gap
        any::<u64>(), // seed
    )
        .prop_map(|(n_case, n_ref, snps, gap, seed)| {
            Fixture::generate(n_case, n_ref, snps, gap, seed)
        })
}

fn params_strategy() -> impl Strategy<Value = LrTestParams> {
    (0.0f64..0.5, 0.2f64..1.0).prop_map(|(fpr, power)| LrTestParams {
        false_positive_rate: fpr,
        power_threshold: power,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn columnar_search_equals_naive_for_all_representations(
        fx in fixture_strategy(),
        params in params_strategy(),
    ) {
        let (case_d, null_d) = fx.dense();
        let reference = select_safe_subset_naive(&case_d, &null_d, &fx.order, &params);

        // Dense input routed through the columnar kernels.
        prop_assert_eq!(
            &select_safe_subset(&case_d, &null_d, &fx.order, &params),
            &reference
        );
        // Bit-packed input (64×64 transpose path).
        let (case_p, null_p) = fx.packed();
        prop_assert_eq!(
            &select_safe_subset(&case_p, &null_p, &fx.order, &params),
            &reference
        );
        // Pre-built columnar input, and a mixed pairing.
        let case_c = case_p.to_columns().expect("packed is two-valued");
        let null_c = null_p.to_columns().expect("packed is two-valued");
        prop_assert_eq!(
            &select_safe_subset(&case_c, &null_c, &fx.order, &params),
            &reference
        );
        prop_assert_eq!(
            &select_safe_subset(&case_c, &null_d, &fx.order, &params),
            &reference
        );
    }

    #[test]
    fn seeded_columnar_search_equals_naive(
        fx in fixture_strategy(),
        params in params_strategy(),
        split in any::<proptest::sample::Index>(),
    ) {
        // Carve a forced prefix out of the candidate order; the rest are
        // candidates (the seeded contract forbids overlap).
        let cut = split.index(fx.order.len() + 1);
        let forced = &fx.order[..cut];
        let order = &fx.order[cut..];

        let (case_d, null_d) = fx.dense();
        let reference = select_safe_subset_seeded_naive(&case_d, &null_d, forced, order, &params);
        prop_assert_eq!(
            &select_safe_subset_seeded(&case_d, &null_d, forced, order, &params),
            &reference
        );
        let (case_p, null_p) = fx.packed();
        prop_assert_eq!(
            &select_safe_subset_seeded(&case_p, &null_p, forced, order, &params),
            &reference
        );

        // The memoized-prefix path: accumulate once, reuse for the search.
        let case_c = case_p.to_columns().expect("packed is two-valued");
        let null_c = null_p.to_columns().expect("packed is two-valued");
        let prefix = gendpr_stats::lr::LrPrefixSums::accumulate(&case_c, &null_c, forced, &params);
        prop_assert_eq!(
            &select_safe_subset_seeded_threads(
                &case_c, &null_c, forced, order, &params, 1, Some(&prefix)
            ),
            &reference
        );
    }

    #[test]
    fn threaded_search_equals_serial(
        fx in fixture_strategy(),
        params in params_strategy(),
        threads in 2usize..5,
        split in any::<proptest::sample::Index>(),
    ) {
        let (case_p, null_p) = fx.packed();
        let serial = select_safe_subset_threads(&case_p, &null_p, &fx.order, &params, 1);
        let parallel = select_safe_subset_threads(&case_p, &null_p, &fx.order, &params, threads);
        prop_assert_eq!(&parallel, &serial);

        let cut = split.index(fx.order.len() + 1);
        let (forced, order) = fx.order.split_at(cut);
        let serial_seeded =
            select_safe_subset_seeded_threads(&case_p, &null_p, forced, order, &params, 1, None);
        let parallel_seeded = select_safe_subset_seeded_threads(
            &case_p, &null_p, forced, order, &params, threads, None,
        );
        prop_assert_eq!(&parallel_seeded, &serial_seeded);
    }

    #[test]
    fn to_columns_roundtrips_every_cell(fx in fixture_strategy()) {
        let (case_d, _) = fx.dense();
        let cols = case_d.to_columns().expect("LR matrices are two-valued");
        prop_assert_eq!(cols.individuals(), case_d.individuals());
        prop_assert_eq!(cols.snps(), case_d.snps());
        for i in 0..case_d.individuals() {
            for j in 0..case_d.snps() {
                prop_assert_eq!(
                    cols.get(i, j).to_bits(),
                    LrValues::get(&case_d, i, j).to_bits(),
                    "cell ({}, {})", i, j
                );
            }
        }
    }
}

/// Three-valued columns must refuse the columnar view and fall back to the
/// reference path (not silently mis-pack).
#[test]
fn three_valued_matrix_declines_columnar_view() {
    let m = LrMatrix::from_values(3, 1, vec![0.25, 0.5, 0.75]);
    assert!(m.to_columns().is_none());
    let null = LrMatrix::from_values(2, 1, vec![0.1, 0.2]);
    let params = LrTestParams::secure_genome_defaults();
    // Still selects, via the naive fallback.
    let sel = select_safe_subset(&m, &null, &[0], &params);
    assert_eq!(sel, select_safe_subset_naive(&m, &null, &[0], &params));
}

/// `+0.0` and `-0.0` are distinct level values for the kernels: the bit
/// pattern matters for summation and `total_cmp` ordering.
#[test]
fn signed_zero_levels_stay_distinct() {
    let m = LrMatrix::from_values(2, 1, vec![0.0, -0.0]);
    let cols = m.to_columns().expect("two bitwise-distinct values");
    assert_eq!(cols.get(0, 0).to_bits(), 0.0f64.to_bits());
    assert_eq!(cols.get(1, 0).to_bits(), (-0.0f64).to_bits());
}
