//! Shared infrastructure for the GenDPR experiment harness.
//!
//! Every table and figure of the paper's evaluation (Section 7) has a
//! binary in `src/bin/` that regenerates it, plus criterion micro-benches
//! in `benches/`. This library holds what they share: the paper-shaped
//! workload builder, a fixed-width table printer and a tiny CLI argument
//! parser.
//!
//! | Paper artifact | Binary |
//! |----------------|--------|
//! | Table 3 (resource utilization)   | `cargo run -p gendpr-bench --bin table3 --release` |
//! | Figure 5 (running time, 1k SNPs) | `cargo run -p gendpr-bench --bin fig5 --release` |
//! | Figure 6 (running time, 10k SNPs)| `cargo run -p gendpr-bench --bin fig6 --release` |
//! | Table 4 (correctness)            | `cargo run -p gendpr-bench --bin table4 --release` |
//! | Table 5 (collusion tolerance)    | `cargo run -p gendpr-bench --bin table5 --release` |
//! | Design ablations                 | `cargo run -p gendpr-bench --bin ablation --release` |
//!
//! All binaries accept `--scale <f>` (default 0.25) to shrink the paper's
//! 27,895-genome / 10,000-SNP workloads proportionally, and `--full` as a
//! shorthand for `--scale 1.0`.

pub mod figures;
pub mod workload;

use std::fmt::Write as _;

/// The paper's case-population sizes (phs001039.v1.p1 has 14,860 cases;
/// half of them is the second evaluation setting).
pub const PAPER_CASES_FULL: usize = 14_860;
/// Half the case population, the paper's smaller setting.
pub const PAPER_CASES_HALF: usize = 7_430;
/// The control population (used as LR-test reference).
pub const PAPER_CONTROLS: usize = 13_035;

/// CLI options shared by the experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchArgs {
    /// Workload scale factor in `(0, 1]`.
    pub scale: f64,
    /// Number of repetitions to average over (the paper uses 5).
    pub repetitions: usize,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            scale: 0.25,
            repetitions: 1,
        }
    }
}

impl BenchArgs {
    /// Parses `--scale <f>`, `--full`, `--reps <n>` from the process args.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    #[must_use]
    pub fn from_env() -> Self {
        let mut out = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    let v: f64 = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--scale needs a number in (0, 1]");
                    assert!(v > 0.0 && v <= 1.0, "--scale must be in (0, 1]");
                    out.scale = v;
                }
                "--full" => out.scale = 1.0,
                "--reps" => {
                    i += 1;
                    out.repetitions = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--reps needs a positive integer");
                    assert!(out.repetitions > 0, "--reps must be positive");
                }
                other => panic!("unknown argument {other}; use --scale <f> | --full | --reps <n>"),
            }
            i += 1;
        }
        out
    }

    /// Applies the scale to a paper-sized quantity (at least 1).
    #[must_use]
    pub fn scaled(&self, paper_value: usize) -> usize {
        ((paper_value as f64 * self.scale).round() as usize).max(1)
    }
}

/// A minimal fixed-width text table, printed like the paper's tables.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (w, cell) in widths.iter().zip(cells.iter()) {
                let _ = write!(out, "| {cell:<w$} ");
            }
            out.push_str("|\n");
        };
        write_row(&mut out, &self.headers);
        for (w, i) in widths.iter().zip(0..) {
            let _ = write!(out, "|{}", "-".repeat(w + 2));
            if i + 1 == widths.len() {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a [`std::time::Duration`] as fractional milliseconds.
#[must_use]
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_rounds_and_floors_at_one() {
        let args = BenchArgs {
            scale: 0.25,
            repetitions: 1,
        };
        assert_eq!(args.scaled(10_000), 2_500);
        assert_eq!(args.scaled(2), 1);
        assert_eq!(args.scaled(1), 1);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["config", "value"]);
        t.row(vec!["2 GDOs", "1"]);
        t.row(vec!["a-longer-config", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(s.contains("a-longer-config"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(std::time::Duration::from_millis(1500)), "1500.0");
    }
}
