//! Shared driver for Figures 5 and 6 (running-time comparison).

use crate::workload::paper_cohort;
use crate::{ms, BenchArgs, TextTable};
use gendpr_core::baseline::centralized::CentralizedPipeline;
use gendpr_core::config::{FederationConfig, GwasParams};
use gendpr_core::protocol::PhaseTimings;
use gendpr_core::runtime::{run_federation, run_federation_with, RuntimeOptions};
use std::time::Duration;

/// Runs one figure: both genome settings at `paper_snps`, centralized
/// baseline plus 2/3/5/7-GDO federations, averaged over `args.repetitions`.
pub fn run_figure(figure: &str, paper_snps: usize, args: &BenchArgs) {
    let params = GwasParams::secure_genome_defaults();
    let snps = args.scaled(paper_snps);

    for paper_genomes in [crate::PAPER_CASES_HALF, crate::PAPER_CASES_FULL] {
        let genomes = args.scaled(paper_genomes);
        let cohort = paper_cohort(genomes, snps);
        println!(
            "\n== {figure}: {genomes} case genomes / {snps} SNPs (paper: {paper_genomes} / {paper_snps}) =="
        );
        let mut table = TextTable::new(vec![
            "Setting",
            "Data aggregation (ms)",
            "Indexing/Sorting/AlleleFreq (ms)",
            "LD analysis (ms)",
            "LR-test analysis (ms)",
            "Total (ms)",
        ]);

        // Centralized baseline (SecureGenome in a single enclave).
        let mut total = PhaseTimings::default();
        for _ in 0..args.repetitions {
            let out = CentralizedPipeline::new(params)
                .run(cohort.as_ref())
                .expect("centralized pipeline completes");
            total.aggregation += out.timings.aggregation;
            total.indexing += out.timings.indexing;
            total.ld += out.timings.ld;
            total.lr += out.timings.lr;
        }
        push_row(&mut table, "Centralized", &total, args.repetitions);

        // GenDPR with 2/3/5/7 members (threaded, attested, encrypted).
        for gdos in [2usize, 3, 5, 7] {
            let mut total = PhaseTimings::default();
            for rep in 0..args.repetitions {
                let report = run_federation(
                    FederationConfig::new(gdos).with_seed(rep as u64),
                    params,
                    &cohort,
                    None,
                    Duration::from_secs(3600),
                )
                .expect("fault-free run completes");
                total.aggregation += report.timings.aggregation;
                total.indexing += report.timings.indexing;
                total.ld += report.timings.ld;
                total.lr += report.timings.lr;
            }
            push_row(
                &mut table,
                &format!("{gdos} GDOs"),
                &total,
                args.repetitions,
            );
        }
        // One extra row beyond the paper: 7 GDOs with the selection-
        // preserving transport optimizations (compact LR + LD prefetch).
        let mut total = PhaseTimings::default();
        for rep in 0..args.repetitions {
            let report = run_federation_with(
                FederationConfig::new(7).with_seed(rep as u64),
                params,
                &cohort,
                None,
                RuntimeOptions {
                    timeout: Duration::from_secs(3600),
                    compact_lr: true,
                    prefetch_ld: true,
                    ..RuntimeOptions::default()
                },
            )
            .expect("fault-free run completes");
            total.aggregation += report.timings.aggregation;
            total.indexing += report.timings.indexing;
            total.ld += report.timings.ld;
            total.lr += report.timings.lr;
        }
        push_row(
            &mut table,
            "7 GDOs (optimized transport)",
            &total,
            args.repetitions,
        );
        table.print();
    }
}

fn push_row(table: &mut TextTable, label: &str, total: &PhaseTimings, reps: usize) {
    let div = |d: Duration| ms(d / reps as u32);
    table.row(vec![
        label.to_string(),
        div(total.aggregation),
        div(total.indexing),
        div(total.ld),
        div(total.lr),
        div(total.total()),
    ]);
}
