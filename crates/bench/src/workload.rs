//! Paper-shaped synthetic workloads.
//!
//! The paper evaluates on the dbGaP Age-Related Macular Degeneration
//! dataset: 14,860 case and 13,035 control genomes (the controls double
//! as the LR-test reference), with 1,000–10,000 SNP panels. The builder
//! here reproduces those shapes synthetically — see `DESIGN.md` §4 for
//! why the substitution preserves the evaluated behaviour.

use gendpr_genomics::synth::SyntheticCohort;

/// Fixed master seed so every experiment binary sees the same data.
pub const WORKLOAD_SEED: u64 = 20_221_107; // Middleware '22 opening day

/// Builds the evaluation cohort for a given case-population size and SNP
/// panel width. The reference population keeps the paper's control/case
/// ratio (13,035 / 14,860).
#[must_use]
pub fn paper_cohort(case_individuals: usize, snps: usize) -> SyntheticCohort {
    let reference = reference_size(case_individuals);
    SyntheticCohort::builder()
        .snps(snps)
        .case_individuals(case_individuals)
        .reference_individuals(reference)
        // A heavier low-frequency tail than the generator default, so the
        // MAF phase removes a paper-like ~25-30% of the panel.
        .maf_shape(0.35, 1.3)
        .seed(WORKLOAD_SEED ^ (case_individuals as u64) ^ ((snps as u64) << 20))
        .build()
}

/// The reference-population size for a given case population, preserving
/// the paper's 13,035 : 14,860 ratio.
#[must_use]
pub fn reference_size(case_individuals: usize) -> usize {
    ((case_individuals as f64) * 13_035.0 / 14_860.0).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_ratio_matches_paper() {
        assert_eq!(reference_size(14_860), 13_035);
        let half = reference_size(7_430);
        assert!((half as i64 - 6_518).abs() <= 1, "got {half}");
    }

    #[test]
    fn workload_is_deterministic_and_shaped() {
        let a = paper_cohort(200, 100);
        let b = paper_cohort(200, 100);
        assert_eq!(a.case(), b.case());
        assert_eq!(a.case().individuals(), 200);
        assert_eq!(a.reference().individuals(), reference_size(200));
        assert_eq!(a.panel().len(), 100);
    }

    #[test]
    fn different_dimensions_different_data() {
        let a = paper_cohort(100, 50);
        let b = paper_cohort(120, 50);
        assert_ne!(a.reference_freqs(), b.reference_freqs());
    }
}
