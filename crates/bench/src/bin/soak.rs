//! Continuous soak harness for the assessment daemon: rounds of real
//! multi-process deployments (`gendpr serve` with its member mesh over
//! loopback TCP under seeded link chaos and periodic lane crash/
//! re-election churn) driven by sustained mixed client traffic, each
//! round ended by a seeded failure — clean stop, SIGTERM mid-traffic,
//! SIGKILL mid-traffic, or an env-armed kill point inside the network
//! send or ledger append/fsync path. Half the rounds (seeded) run the
//! daemon multi-shard (`--shards`), so every failure class also lands on
//! deployments with live SNP-shard sub-federations; half the rounds
//! (independently seeded) run a multi-process replica-track fleet
//! (`--tracks`) over the shared ledger, with the induced failure always
//! landing on track 0 so the survivors' lease-expiry reclaim path gets
//! exercised by every failure class. Each round is followed by
//! invariant audits:
//!
//! * the ledger re-opens with frame-hash integrity, strictly monotone
//!   job ids, and byte-idempotent recovery (a second open recovers 0),
//! * every certificate charges a committed prefix of the ledger, proven
//!   both structurally (prefix-seeded audit) and by replaying a
//!   reference job after each restart,
//! * SLOs from the daemon's own `--metrics-addr` exposition: zero
//!   dropped jobs, bounded p99 job latency, admission rejects exactly
//!   accounted, and bounded thread/fd/RSS deltas across rounds (the new
//!   `gendpr_process_*` gauges).
//!
//! Jobs interrupted by a daemon death are re-submitted after the
//! restart, so "zero dropped" means: every job ever submitted ends in a
//! certified record or a typed rejection, never silence. The harness
//! enforces its own pass criteria and writes a round-by-round JSONL
//! audit report plus a `BENCH_soak.json` summary with latency and
//! per-failure-class recovery percentiles.

use gendpr_fednet::tcp::TcpOptions;
use gendpr_service::ledger::ReleaseLedger;
use gendpr_service::ServiceClient;
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Synthetic study width; job panels are slices of `0..SNPS`. Four
/// words of 64 SNPs, so the multi-shard rounds (`--shards`) survive the
/// shard plan's degrade rule instead of silently collapsing to one lane.
const SNPS: u32 = 256;
/// Federation seed, fixed across rounds so every restart re-elects the
/// same leader and certifies identically.
const FED_SEED: u64 = 29;
/// The reference panel replayed after every restart.
const REFERENCE_PANEL: std::ops::Range<u32> = 0..40;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Failure {
    /// Graceful `stop` through the client protocol; exit 0.
    Clean,
    /// SIGTERM mid-traffic; drain (hard-bounded) and exit 7.
    SigTerm,
    /// SIGKILL mid-traffic; no goodbye at all.
    SigKill,
    /// `GENDPR_KILLPOINT`-armed abort inside the named site.
    KillPoint(&'static str),
}

impl Failure {
    fn name(self) -> &'static str {
        match self {
            Self::Clean => "clean",
            Self::SigTerm => "sigterm",
            Self::SigKill => "sigkill",
            Self::KillPoint(_) => "killpoint",
        }
    }
}

/// SplitMix64: one seeded stream drives every scheduling decision, so a
/// failing run reproduces exactly from `--seed`.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

struct Config {
    rounds: usize,
    seed: u64,
    jobs: usize,
    workers: usize,
    gdos: usize,
    max_queue: usize,
    lane_crash_every: u64,
    shards: u32,
    tracks: u32,
    bin: PathBuf,
    out: String,
    report: String,
    p99_max_s: f64,
    smoke: bool,
}

fn parse_args() -> Config {
    let mut config = Config {
        rounds: 10,
        seed: 42,
        jobs: 8,
        workers: 2,
        gdos: 3,
        max_queue: 4,
        lane_crash_every: 5,
        shards: 2,
        tracks: 2,
        bin: PathBuf::from("target/release/gendpr"),
        out: String::from("BENCH_soak.json"),
        report: String::from("results/soak_report.jsonl"),
        p99_max_s: 60.0,
        smoke: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                config.smoke = true;
                config.rounds = 5;
                config.jobs = 5;
            }
            "--rounds" => {
                i += 1;
                config.rounds = args[i].parse().expect("--rounds needs a count");
            }
            "--seed" => {
                i += 1;
                config.seed = args[i].parse().expect("--seed needs a number");
            }
            "--jobs" => {
                i += 1;
                config.jobs = args[i].parse().expect("--jobs needs a count");
            }
            "--workers" => {
                i += 1;
                config.workers = args[i].parse().expect("--workers needs a count");
            }
            "--max-queue" => {
                i += 1;
                config.max_queue = args[i].parse().expect("--max-queue needs a bound");
            }
            "--lane-crash-every" => {
                i += 1;
                config.lane_crash_every = args[i].parse().expect("--lane-crash-every needs N");
            }
            "--shards" => {
                i += 1;
                config.shards = args[i].parse().expect("--shards needs a count");
            }
            "--tracks" => {
                i += 1;
                config.tracks = args[i].parse().expect("--tracks needs a count");
                assert!(config.tracks >= 1, "--tracks must be at least 1");
            }
            "--bin" => {
                i += 1;
                config.bin = PathBuf::from(&args[i]);
            }
            "--out" => {
                i += 1;
                config.out = args[i].clone();
            }
            "--report" => {
                i += 1;
                config.report = args[i].clone();
            }
            "--p99-max-s" => {
                i += 1;
                config.p99_max_s = args[i].parse().expect("--p99-max-s needs seconds");
            }
            other => panic!(
                "unknown argument {other}; use --smoke | --rounds N | --seed N | --jobs N | \
                 --workers N | --max-queue N | --lane-crash-every N | --shards N | --tracks N | \
                 --bin PATH | --out PATH | --report PATH | --p99-max-s F"
            ),
        }
        i += 1;
    }
    config
}

/// A spawned `gendpr serve` process plus its addresses.
struct Daemon {
    child: Child,
    addr: SocketAddr,
    metrics: SocketAddr,
}

fn probe_client(addr: SocketAddr) -> ServiceClient {
    ServiceClient::new(addr).with_options(TcpOptions {
        connect_timeout: Duration::from_millis(300),
        ..TcpOptions::default()
    })
}

/// Lease on every soak claim: short enough that survivors reclaim a
/// killed track's jobs within a round, long enough that a slow-but-live
/// commit is never stolen.
const TRACK_LEASE_MS: u64 = 2_000;

/// Spawns one daemon (track `track` of this round's fleet) and waits
/// until its client protocol answers. Ports are derived from the seed
/// and bumped on bind clashes.
#[allow(clippy::too_many_arguments)]
fn spawn_daemon(
    config: &Config,
    data: &Path,
    ledger: &Path,
    round: usize,
    shards: u32,
    track: u32,
    killpoint: Option<String>,
    rng: &mut Rng,
) -> Daemon {
    for attempt in 0..10u64 {
        let base = 16_000 + rng.below(40_000) + attempt * 97;
        #[allow(clippy::cast_possible_truncation)]
        let (port, mport) = (base as u16, (base + 1) as u16);
        let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
        let metrics: SocketAddr = format!("127.0.0.1:{mport}").parse().unwrap();
        let log = std::fs::File::create(data.join(format!("round-{round}-t{track}.log")))
            .expect("round log file");
        let elog = log.try_clone().expect("round log handle");
        let mut command = Command::new(&config.bin);
        command
            .arg("serve")
            .args(["--case", &data.join("case.vcf").display().to_string()])
            .args([
                "--reference",
                &data.join("reference.vcf").display().to_string(),
            ])
            .args(["--ledger", &ledger.display().to_string()])
            .args(["--gdos", &config.gdos.to_string()])
            .arg("--tcp")
            .args([
                "--chaos",
                &config.seed.wrapping_add(round as u64).to_string(),
            ])
            .args(["--seed", &FED_SEED.to_string()])
            .args(["--workers", &config.workers.to_string()])
            .args(["--max-queue", &config.max_queue.to_string()])
            .args(["--max-retries", "3"])
            .args(["--shards", &shards.to_string()])
            .args(["--drain-timeout", "10"])
            .args(["--lane-crash-every", &config.lane_crash_every.to_string()])
            .args(["--track-id", &track.to_string()])
            .args(["--track-lease-ms", &TRACK_LEASE_MS.to_string()])
            .args(["--listen", &addr.to_string()])
            .args(["--metrics-addr", &metrics.to_string()])
            .args(["--timeout", "120"])
            .args(["--log-level", "error"])
            .stdout(Stdio::from(log))
            .stderr(Stdio::from(elog))
            .stdin(Stdio::null());
        if let Some(spec) = &killpoint {
            command.env("GENDPR_KILLPOINT", spec);
        }
        let mut child = command.spawn().expect("spawning the daemon");

        let probe = probe_client(addr);
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            if probe.status().is_ok() {
                return Daemon {
                    child,
                    addr,
                    metrics,
                };
            }
            if let Ok(Some(status)) = child.try_wait() {
                // Bind clash or killpoint fired during boot: next ports /
                // next attempt (the ledger is consistent either way).
                eprintln!("  round {round}: daemon died during boot ({status}); respawning");
                break;
            }
            assert!(
                Instant::now() < deadline,
                "round {round}: daemon never became ready on {addr}"
            );
            thread::sleep(Duration::from_millis(50));
        }
    }
    panic!("round {round}: daemon failed to boot after 10 attempts");
}

fn sigterm(pid: u32) {
    let _ = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status();
}

/// Waits for the child with a deadline; hard-kills on overrun so the
/// harness itself can never wedge.
fn wait_with_deadline(child: &mut Child, timeout: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok(Some(status)) = child.try_wait() {
            return status;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            return child.wait().expect("reaping the killed daemon");
        }
        thread::sleep(Duration::from_millis(50));
    }
}

/// One `GET /metrics` scrape of the daemon's exposition endpoint.
fn scrape(addr: SocketAddr) -> Option<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_millis(500)).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    stream
        .set_write_timeout(Some(Duration::from_secs(2)))
        .ok()?;
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: soak\r\nConnection: close\r\n\r\n")
        .ok()?;
    let mut reply = String::new();
    stream.read_to_string(&mut reply).ok()?;
    let body = reply.split_once("\r\n\r\n")?.1;
    Some(body.to_string())
}

/// Reads one un-labeled series from a text exposition body.
fn metric(body: &str, name: &str) -> Option<f64> {
    body.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

/// Sums every labeled sample of one counter family.
fn metric_family_sum(body: &str, name: &str) -> f64 {
    body.lines()
        .filter_map(|line| {
            let rest = line.strip_prefix(name)?;
            if !rest.starts_with('{') && !rest.starts_with(' ') {
                return None;
            }
            line.rsplit(' ').next()?.trim().parse::<f64>().ok()
        })
        .sum()
}

/// The process-resource + scheduler sample kept from the last
/// successful scrape of a round.
#[derive(Debug, Clone, Default)]
struct ResourceSample {
    threads: f64,
    open_fds: f64,
    rss_bytes: f64,
    queue_full_rejects: f64,
    truncated_frames: f64,
    lane_rebuilds: f64,
}

fn parse_sample(body: &str) -> ResourceSample {
    ResourceSample {
        threads: metric(body, "gendpr_process_threads").unwrap_or(0.0),
        open_fds: metric(body, "gendpr_process_open_fds").unwrap_or(0.0),
        rss_bytes: metric(body, "gendpr_process_rss_bytes").unwrap_or(0.0),
        queue_full_rejects: metric_family_sum(body, "gendpr_sched_admission_rejects_total")
            - metric_family_sum(
                body,
                "gendpr_sched_admission_rejects_total{reason=\"shutdown\"}",
            ),
        truncated_frames: metric(body, "gendpr_ledger_truncated_frames_total").unwrap_or(0.0),
        lane_rebuilds: metric(body, "gendpr_sched_lane_rebuilds_total").unwrap_or(0.0),
    }
}

/// Hostile wire input: raw garbage, an absurd length prefix, and a
/// truncated frame. The daemon must shed all three and keep serving.
fn send_hostile_frames(addr: SocketAddr) -> usize {
    let frames: [&[u8]; 3] = [
        b"\xff\xff\xff\xff\xff\xff\xff\xff",
        b"\xff\xff\xff\x7f pretend this is huge",
        b"\x40\x00\x00\x00trunc",
    ];
    let mut sent = 0;
    for frame in frames {
        if let Ok(mut stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
            let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
            if stream.write_all(frame).is_ok() {
                sent += 1;
            }
        }
    }
    sent
}

/// How one submitted job ended, as seen from the client side.
enum JobOutcome {
    /// Certified; wall-clock latency of the successful attempt.
    Completed(f64),
    /// Daemon went away (or rejected for shutdown) before it ran:
    /// re-submit after the restart.
    Interrupted { panel: Vec<u32>, batches: u32 },
    /// A typed job failure — counts against the zero-dropped SLO.
    Failed(String),
}

/// Counters a traffic wave accumulates besides per-job outcomes.
#[derive(Default)]
struct WaveStats {
    queue_full_rejects: u64,
    status_probes: u64,
}

/// Runs one job to a terminal outcome: bounded retry on queue-full
/// backpressure, interruption on any connection-level failure.
fn drive_job(
    client: &ServiceClient,
    panel: Vec<u32>,
    batches: u32,
    no_wait: bool,
) -> (JobOutcome, u64) {
    let started = Instant::now();
    let deadline = started + Duration::from_secs(120);
    let mut rejects = 0u64;
    loop {
        let result = if no_wait {
            client.submit(panel.clone(), batches).and_then(|job_id| {
                // Poll results until the record lands, like `--no-wait`
                // CLI users do.
                loop {
                    match client.results(job_id) {
                        Ok(Some(record)) => return Ok(record),
                        Ok(None) => {
                            if Instant::now() > deadline {
                                return Err(std::io::Error::other("job never finished"));
                            }
                            thread::sleep(Duration::from_millis(50));
                        }
                        Err(e) => return Err(e),
                    }
                }
            })
        } else {
            client.submit_and_wait(panel.clone(), batches)
        };
        match result {
            Ok(_) => {
                return (
                    JobOutcome::Completed(started.elapsed().as_secs_f64()),
                    rejects,
                )
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                rejects += 1;
                if Instant::now() > deadline {
                    return (JobOutcome::Failed("backpressure deadline".into()), rejects);
                }
                thread::sleep(Duration::from_millis(20));
            }
            // The daemon died under us or is draining: the job is not
            // lost, it is re-submitted after the restart.
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::ConnectionAborted
                        | ErrorKind::ConnectionRefused
                        | ErrorKind::ConnectionReset
                        | ErrorKind::BrokenPipe
                        | ErrorKind::UnexpectedEof
                        | ErrorKind::TimedOut
                        | ErrorKind::WriteZero
                ) =>
            {
                return (JobOutcome::Interrupted { panel, batches }, rejects);
            }
            Err(e) => return (JobOutcome::Failed(e.to_string()), rejects),
        }
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Structural certificate audit over a re-opened ledger: strictly
/// monotone job ids, and every record's forced seed equal to the
/// released-union of a committed prefix no later than itself (the
/// scheduler's snapshot rule — certificates charge a committed prefix).
fn audit_records(records: &[gendpr_service::LedgerRecord]) -> Result<(), String> {
    for pair in records.windows(2) {
        if pair[1].job_id <= pair[0].job_id {
            return Err(format!(
                "job ids not strictly monotone: {} then {}",
                pair[0].job_id, pair[1].job_id
            ));
        }
    }
    let mut prefixes: Vec<Vec<u32>> = vec![Vec::new()];
    for record in records {
        let mut next = prefixes.last().unwrap().clone();
        next.extend_from_slice(&record.released);
        next.sort_unstable();
        next.dedup();
        prefixes.push(next);
    }
    for (i, record) in records.iter().enumerate() {
        if !prefixes[..=i].contains(&record.forced) {
            return Err(format!(
                "job {} seeded with a non-committed-prefix union",
                record.job_id
            ));
        }
        if record
            .released
            .iter()
            .any(|s| record.forced.binary_search(s).is_ok())
        {
            return Err(format!("job {} re-released a seeded SNP", record.job_id));
        }
    }
    Ok(())
}

/// Everything the post-round ledger audit yields.
struct LedgerAudit {
    records: usize,
    recovered_bytes: u64,
    released_union: Vec<u32>,
}

/// Re-opens the ledger after a daemon death and enforces every
/// invariant; a second open proves recovery was physical and idempotent.
/// The audit runs on a copy so a torn tail is left in place for the
/// *next daemon* to recover through the production open path (which is
/// what increments `gendpr_ledger_truncated_frames_total`).
fn audit_ledger(original: &Path) -> Result<LedgerAudit, String> {
    let path = original.with_extension("audit");
    std::fs::copy(original, &path).map_err(|e| format!("copying for audit: {e}"))?;
    let result = audit_copy(&path);
    let _ = std::fs::remove_file(&path);
    result
}

fn audit_copy(path: &Path) -> Result<LedgerAudit, String> {
    let first = ReleaseLedger::open(path).map_err(|e| format!("reopen failed: {e}"))?;
    let recovered_bytes = first.recovered_bytes();
    let len = first.len();
    drop(first);
    let second = ReleaseLedger::open(path).map_err(|e| format!("second open failed: {e}"))?;
    if second.recovered_bytes() != 0 {
        return Err(format!(
            "recovery not idempotent: second open recovered {} bytes",
            second.recovered_bytes()
        ));
    }
    if second.len() != len {
        return Err(format!(
            "recovery not stable: {len} records then {}",
            second.len()
        ));
    }
    audit_records(second.records())?;
    let mut released_union: Vec<u32> = second.released_union().into_iter().map(|s| s.0).collect();
    released_union.sort_unstable();
    Ok(LedgerAudit {
        records: len,
        recovered_bytes,
        released_union,
    })
}

fn main() {
    let config = parse_args();
    let data = std::env::temp_dir().join(format!("gendpr-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data);
    std::fs::create_dir_all(&data).expect("soak scratch dir");
    let ledger_path = data.join("soak.ledger");

    // The study every round serves; same seed ⇒ same cohort ⇒ every
    // restart certifies identically.
    let synth = Command::new(&config.bin)
        .args(["synth", "--snps", &SNPS.to_string()])
        .args(["--cases", "64", "--reference", "48", "--seed", "41"])
        .args(["--out", &data.display().to_string()])
        .stdout(Stdio::null())
        .status()
        .expect("running gendpr synth");
    assert!(synth.success(), "gendpr synth failed");

    let mut rng = Rng(config.seed);
    let mut report_lines: Vec<String> = Vec::new();
    let mut pending: Vec<(Vec<u32>, u32)> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut recoveries: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    // Per-round resource sample, keyed with the round's (shards, tracks)
    // shape: thread/fd footprints scale with the deployment shape, so
    // drift is only meaningful between same-shape rounds.
    let mut samples: BTreeMap<usize, (u32, u32, ResourceSample)> = BTreeMap::new();
    let mut prev_failure: Option<Failure> = None;
    let mut prev_union: Vec<u32> = Vec::new();
    let mut totals_completed = 0u64;
    let mut totals_resubmitted = 0u64;
    let mut totals_rejects = 0u64;
    let mut totals_hostile = 0usize;
    let mut dropped: Vec<String> = Vec::new();
    let mut audits_passed = 0usize;
    let mut final_records = 0usize;

    // One extra drain round so every interrupted job reaches a terminal
    // verdict before the zero-dropped SLO is judged.
    let total_rounds = config.rounds + 1;
    for round in 0..total_rounds {
        // Round 0 warms up and the final round drains: both clean.
        let failure = if round == 0 || round == total_rounds - 1 {
            Failure::Clean
        } else {
            match rng.below(6) {
                0 => Failure::Clean,
                1 => Failure::SigTerm,
                2 => Failure::SigKill,
                3 => Failure::KillPoint("net_send"),
                4 => Failure::KillPoint("ledger_tear"),
                _ => {
                    if rng.below(2) == 0 {
                        Failure::KillPoint("ledger_append")
                    } else {
                        Failure::KillPoint("ledger_commit")
                    }
                }
            }
        };
        let killpoint = match failure {
            // The nth hit: appends are one per job, sends are constant
            // background traffic — scale the trigger accordingly.
            Failure::KillPoint(site @ ("ledger_tear" | "ledger_append" | "ledger_commit")) => {
                Some(format!("{site}:{}", 1 + rng.below(3)))
            }
            Failure::KillPoint(site) => Some(format!("{site}:{}", 2_000 + rng.below(8_000))),
            _ => None,
        };
        // Half the rounds (seeded) run the daemon multi-shard, so every
        // failure class also lands on deployments with live shard lanes —
        // and the certificates across restarts must still be identical,
        // whichever shard counts the surviving ledger was written under.
        let shards = if rng.below(2) == 0 { config.shards } else { 1 };
        // Half the rounds (independently seeded) run a multi-track fleet
        // over the shared ledger. Every round is *tracked* (a 1-track
        // fleet is byte-identical to an untracked daemon by design), so
        // the claim log never mixes tracked and untracked commits; the
        // induced failure always lands on track 0, and the secondaries
        // are the lease-expiry survivors.
        let tracks = if rng.below(2) == 0 { config.tracks } else { 1 };

        let boot = Instant::now();
        let mut daemon = spawn_daemon(
            &config,
            &data,
            &ledger_path,
            round,
            shards,
            0,
            killpoint,
            &mut rng,
        );
        let ready = boot.elapsed().as_secs_f64();
        if let Some(prev) = prev_failure {
            recoveries.entry(prev.name()).or_default().push(ready);
        }
        // Secondary tracks never carry the killpoint env: the induced
        // death must hit track 0 so the survivors do the reclaiming.
        let mut secondaries: Vec<Daemon> = (1..tracks)
            .map(|track| {
                spawn_daemon(
                    &config,
                    &data,
                    &ledger_path,
                    round,
                    shards,
                    track,
                    None,
                    &mut rng,
                )
            })
            .collect();
        let endpoints: Vec<SocketAddr> = std::iter::once(daemon.addr)
            .chain(secondaries.iter().map(|s| s.addr))
            .collect();
        eprintln!(
            "round {round}/{}: {} in {ready:.2}s, failure class {}, {shards} shard(s), {tracks} track(s)",
            total_rounds - 1,
            daemon.addr,
            failure.name()
        );

        // Reference replay: the first job after every restart proves the
        // daemon still charges the committed prefix — its dispatch
        // snapshot must equal the audited released-union of the
        // surviving ledger.
        if round > 0 {
            let client = ServiceClient::new(daemon.addr);
            match client.submit_and_wait(REFERENCE_PANEL.collect(), 0) {
                Ok(record) => {
                    assert!(
                        record.certificate.is_some(),
                        "round {round}: reference replay came back uncertified"
                    );
                    let mut forced = record.forced.clone();
                    forced.sort_unstable();
                    assert_eq!(
                        forced, prev_union,
                        "round {round}: reference replay was not seeded with the committed union"
                    );
                    totals_completed += 1;
                }
                // A boot-armed killpoint can fire this early; the job
                // joins the pending pool like any interrupted one.
                Err(_) => pending.push((REFERENCE_PANEL.collect(), 0)),
            }
        }

        // This round's traffic: everything interrupted earlier, then a
        // fresh seeded mixed wave (blocking, --no-wait, dynamic batches).
        let mut wave: Vec<(Vec<u32>, u32, bool)> = pending
            .drain(..)
            .map(|(panel, batches)| (panel, batches, false))
            .collect();
        totals_resubmitted += wave.len() as u64;
        for _ in 0..config.jobs {
            // Dynamic jobs must assess the full panel; federated jobs
            // take seeded overlapping slices.
            let batches = if rng.below(4) == 0 { 2 } else { 0 };
            let panel: Vec<u32> = if batches > 0 {
                (0..SNPS).collect()
            } else {
                let start = rng.below(u64::from(SNPS - 16));
                #[allow(clippy::cast_possible_truncation)]
                let slice = (start as u32..start as u32 + 16).collect();
                slice
            };
            let no_wait = rng.below(4) == 0;
            wave.push((panel, batches, no_wait));
        }
        // Seeded per-job arrival times spread the wave across a couple
        // of seconds so mid-traffic kills genuinely interrupt jobs.
        let staggers: Vec<u64> = wave.iter().map(|_| rng.below(1_800)).collect();

        let outcomes: Arc<Mutex<Vec<JobOutcome>>> = Arc::new(Mutex::new(Vec::new()));
        let stats: Arc<Mutex<WaveStats>> = Arc::new(Mutex::new(WaveStats::default()));
        let addr = daemon.addr;
        let handles: Vec<_> = wave
            .into_iter()
            .zip(staggers)
            .map(|((panel, batches, no_wait), stagger_ms)| {
                let outcomes = Arc::clone(&outcomes);
                let stats = Arc::clone(&stats);
                let stagger = Duration::from_millis(stagger_ms);
                // Clients carry the whole fleet's address list: on clean
                // rounds every dial lands on track 0 (listed first and
                // alive), keeping the admission accounting exact; on
                // kill rounds traffic fails over to the survivors.
                let endpoints = endpoints.clone();
                thread::spawn(move || {
                    thread::sleep(stagger);
                    let client = ServiceClient::with_endpoints(endpoints);
                    let (outcome, rejects) = drive_job(&client, panel, batches, no_wait);
                    let mut stats = stats.lock().unwrap();
                    stats.queue_full_rejects += rejects;
                    drop(stats);
                    outcomes.lock().unwrap().push(outcome);
                })
            })
            .collect();

        // Interleaved status probes and hostile frames while jobs run.
        let hostile = send_hostile_frames(addr);
        totals_hostile += hostile;
        let probe = probe_client(addr);
        if probe.status().is_ok() {
            stats.lock().unwrap().status_probes += 1;
        }

        // A background scraper keeps the freshest exposition sample so
        // kill rounds still yield resource readings. It is stopped
        // *before* any induced death so a mid-shutdown scrape (half the
        // threads already gone) never becomes the round's sample.
        let scraping = Arc::new(Mutex::new(None::<String>));
        let scraper_done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let scraper = {
            let scraping = Arc::clone(&scraping);
            let metrics_addr = daemon.metrics;
            let flag = Arc::clone(&scraper_done);
            thread::spawn(move || {
                while !flag.load(std::sync::atomic::Ordering::SeqCst) {
                    if let Some(body) = scrape(metrics_addr) {
                        *scraping.lock().unwrap() = Some(body);
                    }
                    thread::sleep(Duration::from_millis(150));
                }
            })
        };
        let stop_scraper = || scraper_done.store(true, std::sync::atomic::Ordering::SeqCst);

        // Inject this round's failure mid-traffic.
        let status = match failure {
            Failure::Clean => {
                for handle in handles {
                    let _ = handle.join();
                }
                // Traffic is fully drained: take one authoritative
                // scrape, then stop through the protocol.
                if let Some(body) = scrape(daemon.metrics) {
                    *scraping.lock().unwrap() = Some(body);
                }
                stop_scraper();
                let _ = ServiceClient::new(addr).shutdown();
                wait_with_deadline(&mut daemon.child, Duration::from_secs(60))
            }
            Failure::SigTerm => {
                thread::sleep(Duration::from_millis(400 + rng.below(1_400)));
                stop_scraper();
                sigterm(daemon.child.id());
                for handle in handles {
                    let _ = handle.join();
                }
                wait_with_deadline(&mut daemon.child, Duration::from_secs(60))
            }
            Failure::SigKill => {
                thread::sleep(Duration::from_millis(400 + rng.below(1_400)));
                stop_scraper();
                let _ = daemon.child.kill();
                for handle in handles {
                    let _ = handle.join();
                }
                daemon.child.wait().expect("reaping the killed daemon")
            }
            Failure::KillPoint(_) => {
                // The armed site fires on its own (scrapes of the dead
                // process simply fail); if it never does — count too
                // high for this round's traffic — fall back to SIGKILL
                // so the round still ends in a hard death.
                for handle in handles {
                    let _ = handle.join();
                }
                stop_scraper();
                wait_with_deadline(&mut daemon.child, Duration::from_secs(5))
            }
        };
        stop_scraper();
        let _ = scraper.join();

        match failure {
            Failure::Clean => assert_eq!(
                status.code(),
                Some(0),
                "round {round}: clean stop must exit 0 (got {status})"
            ),
            Failure::SigTerm => assert_eq!(
                status.code(),
                Some(7),
                "round {round}: SIGTERM must exit 7 (got {status})"
            ),
            // SIGKILL and aborts die on a signal: no exit code at all.
            Failure::SigKill | Failure::KillPoint(_) => assert_eq!(
                status.code(),
                None,
                "round {round}: a hard kill must die on the signal (got {status})"
            ),
        }

        // Stop the surviving tracks through the protocol before the
        // ledger audit so nothing is appending while the file is copied.
        // No exit-code assertion here: the induced failure is track 0's
        // alone, the survivors just have to drain and leave.
        for secondary in &mut secondaries {
            let _ = ServiceClient::new(secondary.addr).shutdown();
            let _ = wait_with_deadline(&mut secondary.child, Duration::from_secs(60));
        }
        drop(secondaries);

        // Collect the wave's outcomes.
        let outcomes = Arc::try_unwrap(outcomes)
            .map_err(|_| ())
            .expect("all job threads joined")
            .into_inner()
            .unwrap();
        let stats = Arc::try_unwrap(stats)
            .map_err(|_| ())
            .expect("all job threads joined")
            .into_inner()
            .unwrap();
        let mut round_completed = 0u64;
        let mut round_interrupted = 0u64;
        for outcome in outcomes {
            match outcome {
                JobOutcome::Completed(latency) => {
                    round_completed += 1;
                    totals_completed += 1;
                    latencies.push(latency);
                }
                JobOutcome::Interrupted { panel, batches } => {
                    round_interrupted += 1;
                    pending.push((panel, batches));
                }
                JobOutcome::Failed(message) => dropped.push(format!("round {round}: {message}")),
            }
        }
        totals_rejects += stats.queue_full_rejects;

        // The invariant audits every round must pass.
        let audit = match audit_ledger(&ledger_path) {
            Ok(audit) => audit,
            Err(message) => panic!("round {round}: ledger audit failed: {message}"),
        };
        audits_passed += 1;
        final_records = audit.records;
        prev_union = audit.released_union.clone();
        prev_failure = Some(failure);

        let sample = scraping
            .lock()
            .unwrap()
            .as_deref()
            .map(parse_sample)
            .unwrap_or_default();
        // Admission accounting: on clean rounds the scrape happens after
        // the whole wave drained, so the daemon's queue-full counter
        // must equal what the clients saw.
        if failure == Failure::Clean {
            #[allow(clippy::cast_precision_loss)]
            let seen = stats.queue_full_rejects as f64;
            assert!(
                (sample.queue_full_rejects - seen).abs() < 0.5,
                "round {round}: admission rejects unaccounted (daemon {}, clients {seen})",
                sample.queue_full_rejects
            );
        }
        samples.insert(round, (shards, tracks, sample.clone()));

        report_lines.push(format!(
            "{{\"round\": {round}, \"failure\": \"{}\", \"shards\": {shards}, \"tracks\": {tracks}, \"ready_s\": {ready:.3}, \
             \"completed\": {round_completed}, \"interrupted\": {round_interrupted}, \
             \"queue_full_rejects\": {}, \"hostile_frames\": {hostile}, \
             \"ledger_records\": {}, \"recovered_bytes\": {}, \
             \"truncated_frames\": {}, \"lane_rebuilds\": {}, \
             \"threads\": {}, \"open_fds\": {}, \"rss_bytes\": {}}}",
            failure.name(),
            stats.queue_full_rejects,
            audit.records,
            audit.recovered_bytes,
            sample.truncated_frames,
            sample.lane_rebuilds,
            sample.threads,
            sample.open_fds,
            sample.rss_bytes,
        ));
        eprintln!(
            "  {} done, {} interrupted, ledger {} records ({} torn bytes recovered)",
            round_completed, round_interrupted, audit.records, audit.recovered_bytes
        );
    }

    if let Some(parent) = Path::new(&config.report).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("report directory");
        }
    }
    std::fs::write(&config.report, report_lines.join("\n") + "\n")
        .expect("writing the round report");

    // ---- SLO judgement -------------------------------------------------
    assert!(
        dropped.is_empty(),
        "dropped jobs (zero-dropped SLO violated):\n  {}",
        dropped.join("\n  ")
    );
    assert!(
        pending.is_empty(),
        "{} job(s) never reached a terminal verdict",
        pending.len()
    );
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p99) = (percentile(&latencies, 0.5), percentile(&latencies, 0.99));
    assert!(
        p99 <= config.p99_max_s,
        "p99 job latency {p99:.2}s exceeds the {:.2}s SLO",
        config.p99_max_s
    );
    // Resource ceilings: the daemon's own gauges must not drift between
    // an early warmed-up round and the last one — restarts being
    // equivalent is exactly the no-leak property under supervision. The
    // baseline is the earliest warmed-up round with the *same deployment
    // shape* (shards and tracks) as the last sampled one; thread and fd
    // counts legitimately differ across shapes.
    let last_entry = samples
        .iter()
        .rev()
        .find(|(_, (_, _, s))| s.rss_bytes > 0.0)
        .map(|(round, entry)| (*round, entry.clone()));
    let (last_round, last_shape, last) = match last_entry {
        Some((round, (shards, tracks, sample))) => (round, (shards, tracks), sample),
        None => (0, (0, 0), ResourceSample::default()),
    };
    let (baseline_round, baseline) = samples
        .iter()
        .find(|(round, (shards, tracks, s))| {
            **round >= 1
                && **round < last_round
                && (*shards, *tracks) == last_shape
                && s.rss_bytes > 0.0
        })
        .map_or((last_round, ResourceSample::default()), |(round, entry)| {
            (*round, entry.2.clone())
        });
    let (threads_delta, fds_delta, rss_delta) = (
        last.threads - baseline.threads,
        last.open_fds - baseline.open_fds,
        last.rss_bytes - baseline.rss_bytes,
    );
    if baseline.rss_bytes > 0.0 && last.rss_bytes > 0.0 {
        assert!(
            threads_delta.abs() <= 16.0,
            "thread count drifted {threads_delta} across rounds"
        );
        assert!(
            fds_delta.abs() <= 64.0,
            "open fds drifted {fds_delta} across rounds"
        );
        assert!(
            rss_delta <= 256.0 * 1024.0 * 1024.0,
            "RSS grew {rss_delta} bytes across rounds"
        );
    }

    let recovery_json: Vec<String> = recoveries
        .iter()
        .map(|(class, times)| {
            let mut sorted = times.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            format!(
                "    \"{class}\": {{ \"count\": {}, \"p50_s\": {:.3}, \"p99_s\": {:.3} }}",
                sorted.len(),
                percentile(&sorted, 0.5),
                percentile(&sorted, 0.99)
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"workload\": {{\n    \"rounds\": {},\n    \"seed\": {},\n    \"jobs_per_round\": {},\n    \"workers\": {},\n    \"gdos\": {},\n    \"max_queue\": {},\n    \"lane_crash_every\": {},\n    \"smoke\": {}\n  }},\n  \"totals\": {{\n    \"jobs_completed\": {totals_completed},\n    \"jobs_resubmitted\": {totals_resubmitted},\n    \"queue_full_rejects\": {totals_rejects},\n    \"hostile_frames\": {totals_hostile},\n    \"dropped\": 0,\n    \"ledger_records\": {final_records},\n    \"audits_passed\": {audits_passed}\n  }},\n  \"job_latency_s\": {{ \"p50\": {p50:.4}, \"p99\": {p99:.4} }},\n  \"recovery_s\": {{\n{}\n  }},\n  \"resources\": {{\n    \"baseline_round\": {baseline_round},\n    \"threads_delta\": {threads_delta},\n    \"open_fds_delta\": {fds_delta},\n    \"rss_delta_bytes\": {rss_delta}\n  }}\n}}\n",
        config.rounds,
        config.seed,
        config.jobs,
        config.workers,
        config.gdos,
        config.max_queue,
        config.lane_crash_every,
        config.smoke,
        recovery_json.join(",\n"),
    );
    std::fs::write(&config.out, &json).expect("writing the JSON summary");
    println!(
        "report written to {} (rounds in {})",
        config.out, config.report
    );
    println!(
        "soak passed: {totals_completed} jobs certified across {total_rounds} rounds \
         ({totals_resubmitted} resubmitted after kills), {audits_passed} ledger audits, \
         p50/p99 latency {p50:.2}/{p99:.2}s"
    );

    let _ = std::fs::remove_dir_all(&data);
}
