//! Measures the pooled LD-moment evaluation — the kernel the collusion
//! loop hammers hardest — before and after the columnar + memoization
//! rework, and emits machine-readable `BENCH_phases.json`.
//!
//! The "before" path is the pre-rework kernel exactly: row-major
//! `pair_count` scans (strided one word per individual) re-pooled from
//! scratch for every member combination. The "after" path is what
//! [`gendpr_core::gdo::GdoNode`] and the protocol driver now do: SNP-major
//! columnar popcount sweeps with per-member moment memoization (building
//! the columnar views and warming the memo are *included* in the timed
//! region). Both paths fold the pooled moments into a checksum that must
//! agree, so the comparison cannot drift semantically.
//!
//! Scale defaults to the paper's Table 5 setting — 14,860 case genomes ×
//! 10,000 SNPs, G = 5, f = 2 (11 combinations) — shrink with
//! `--scale <f>` for CI. `--out <path>` writes the JSON (default
//! `BENCH_phases.json`).

use gendpr_bench::workload::paper_cohort;
use gendpr_bench::PAPER_CASES_FULL;
use gendpr_core::collusion::evaluation_subsets;
use gendpr_core::config::{CollusionMode, FederationConfig, GwasParams};
use gendpr_core::gdo::GdoNode;
use gendpr_core::memo::MomentMemo;
use gendpr_core::protocol::Federation;
use gendpr_genomics::columnar::ColumnarGenotypes;
use gendpr_genomics::snp::SnpId;
use gendpr_service::ShardPlan;
use gendpr_stats::ld::LdMoments;
use gendpr_stats::lr::{
    select_safe_subset_naive, select_safe_subset_threads, BitLrMatrix, LrColumns, LrMatrix,
    LrValues,
};
use gendpr_stats::ranking::{rank_by_association, sort_most_significant_first};
use std::time::{Duration, Instant};

const G: usize = 5;
const F: usize = 2;

/// SplitMix64 step: cheap deterministic words for the synthetic packed
/// matrices (quality is irrelevant here, width is).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn checksum(acc: u64, m: LdMoments) -> u64 {
    acc.rotate_left(7)
        ^ m.sum_x
        ^ m.sum_y.rotate_left(13)
        ^ m.sum_xy.rotate_left(26)
        ^ m.n.rotate_left(39)
}

fn main() {
    let mut scale = 1.0f64;
    let mut out = String::from("BENCH_phases.json");
    let mut shard_sweep: Vec<u32> = vec![1, 2, 4, 8];
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--scale needs a number in (0, 1]");
                assert!(scale > 0.0 && scale <= 1.0, "--scale must be in (0, 1]");
            }
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a path").clone();
            }
            "--shards" => {
                i += 1;
                shard_sweep = args
                    .get(i)
                    .expect("--shards needs a comma-separated list")
                    .split(',')
                    .map(|s| s.parse().expect("--shards entries must be integers"))
                    .collect();
                assert!(!shard_sweep.is_empty(), "--shards list is empty");
            }
            other => {
                panic!("unknown argument {other}; use --scale <f> | --out <path> | --shards S,...")
            }
        }
        i += 1;
    }
    let scaled = |v: usize| ((v as f64 * scale).round() as usize).max(1);
    let genomes = scaled(PAPER_CASES_FULL);
    let snps = scaled(10_000);

    eprintln!("generating cohort: {genomes} case genomes x {snps} SNPs (G = {G}, f = {F})…");
    let cohort = paper_cohort(genomes, snps);
    let reference = cohort.reference();
    let shards = cohort.split_case_among(G);
    let subsets = evaluation_subsets(G, CollusionMode::Fixed(F));
    // The LD scan queries (mostly adjacent) pairs of the retained panel;
    // adjacent pairs over the full panel are a faithful stand-in.
    let pairs: Vec<(SnpId, SnpId)> = (0..snps.saturating_sub(1) as u32)
        .map(|i| (SnpId(i), SnpId(i + 1)))
        .collect();

    // ---- Before: row-major scans, recomputed per combination ----
    // (Marginal counts are precomputed outside the timer, as the old
    // protocol did via the pre-processing reports.)
    let ref_counts = reference.column_counts();
    let n_ref = reference.individuals() as u64;
    let shard_counts: Vec<Vec<u64>> = shards.iter().map(|s| s.column_counts()).collect();
    eprintln!(
        "timing row-major kernels ({} combinations x {} pairs)…",
        subsets.len(),
        pairs.len()
    );
    let t = Instant::now();
    let mut sum_before = 0u64;
    for subset in &subsets {
        for &(a, b) in &pairs {
            let mut pooled = LdMoments::from_cached_counts(
                reference,
                a,
                b,
                ref_counts[a.index()],
                ref_counts[b.index()],
            );
            for &m in subset {
                pooled = pooled.merge(LdMoments::from_cached_counts(
                    &shards[m],
                    a,
                    b,
                    shard_counts[m][a.index()],
                    shard_counts[m][b.index()],
                ));
            }
            sum_before = checksum(sum_before, pooled);
        }
    }
    let before = t.elapsed();

    // ---- After: columnar popcount sweeps + per-member memoization ----
    // (Transposing the shards and warming every memo is part of the
    // timed region — this is the full cost a fresh federation pays.)
    eprintln!("timing columnar + memoized kernels…");
    let t = Instant::now();
    let nodes: Vec<GdoNode> = shards
        .iter()
        .enumerate()
        .map(|(id, s)| GdoNode::new(id, s.clone()))
        .collect();
    let ref_columnar = ColumnarGenotypes::from_matrix(reference);
    let ref_memo = MomentMemo::new();
    let mut sum_after = 0u64;
    for subset in &subsets {
        for &(a, b) in &pairs {
            let mut pooled = ref_memo.get_or_compute(a, b, || {
                LdMoments::from_counts(
                    ref_counts[a.index()],
                    ref_counts[b.index()],
                    ref_columnar.pair_count(a, b),
                    n_ref,
                )
            });
            for &m in subset {
                pooled = pooled.merge(LdMoments::from(nodes[m].ld_moments(a, b)));
            }
            sum_after = checksum(sum_after, pooled);
        }
    }
    let after = t.elapsed();
    assert_eq!(
        sum_before, sum_after,
        "kernel rework changed the pooled moments"
    );

    // ---- LR subset search: naive dense vs columnar kernels ----
    // One combination (the full pooled roster) over the whole panel. The
    // "before" path is the retained scalar reference verbatim: a dense
    // per-cell matrix for each population plus per-scalar add/back-out
    // sweeps. The "after" path is the production route: bit-packed
    // SNP-major gathers and branchless word kernels. Both include their
    // matrix construction in the timed region, and the selections must be
    // identical — the comparison doubles as a checksum gate.
    let case_all = cohort.case();
    let n_case_all = case_all.individuals() as u64;
    let case_counts_all = case_all.column_counts();
    let ids: Vec<SnpId> = (0..snps as u32).map(SnpId).collect();
    let cf: Vec<f64> = case_counts_all
        .iter()
        .map(|&c| c as f64 / n_case_all.max(1) as f64)
        .collect();
    let rf: Vec<f64> = ref_counts
        .iter()
        .map(|&c| c as f64 / n_ref.max(1) as f64)
        .collect();
    let ranks = rank_by_association(&ids, &case_counts_all, n_case_all, &ref_counts, n_ref);
    let order: Vec<usize> = sort_most_significant_first(ranks)
        .iter()
        .map(|r| r.snp.index())
        .collect();
    let params = GwasParams::secure_genome_defaults();

    eprintln!("timing naive dense LR search ({} candidates)…", order.len());
    let t = Instant::now();
    let naive_selection = {
        let case_matrix = LrMatrix::from_genotypes(case_all, &ids, &cf, &rf);
        let null_matrix = LrMatrix::from_genotypes(reference, &ids, &cf, &rf);
        select_safe_subset_naive(&case_matrix, &null_matrix, &order, &params.lr)
    };
    let lr_naive = t.elapsed();

    eprintln!("timing columnar LR search (single thread)…");
    let t = Instant::now();
    let (case_cols, null_cols) = {
        let case_view = ColumnarGenotypes::from_matrix(case_all);
        let null_view = ColumnarGenotypes::from_matrix(reference);
        (
            LrColumns::from_columnar(&case_view, &ids, &cf, &rf),
            LrColumns::from_columnar(&null_view, &ids, &cf, &rf),
        )
    };
    let columnar_selection =
        select_safe_subset_threads(&case_cols, &null_cols, &order, &params.lr, 1);
    let lr_columnar = t.elapsed();
    assert_eq!(
        naive_selection, columnar_selection,
        "columnar kernels changed the LR selection"
    );

    let workers = gendpr_core::pool::available_parallelism();
    eprintln!("timing columnar LR search ({workers} threads)…");
    let t = Instant::now();
    let threaded_selection =
        select_safe_subset_threads(&case_cols, &null_cols, &order, &params.lr, workers);
    let lr_threaded = t.elapsed();
    assert_eq!(
        naive_selection, threaded_selection,
        "row chunking changed the LR selection"
    );
    drop((case_cols, null_cols));

    // ---- Full protocol phase breakdown at the same scale ----
    eprintln!("running the full three-phase protocol for the phase breakdown…");
    let config = FederationConfig::new(G).with_collusion(CollusionMode::Fixed(F));
    let run = |threads: usize| {
        Federation::new(config, params, &cohort)
            .with_threads(threads)
            .run()
            .expect("protocol completes")
    };
    let sequential = run(1);
    let parallel = run(workers);
    assert_eq!(
        sequential.safe_snps, parallel.safe_snps,
        "thread count changed the release"
    );

    // ---- Chromosome-scale workloads ----
    // (a) A full three-phase run at chromosome width: 10x the panel of the
    // paper's Table 5 setting, same populations.
    let chrom_snps = scaled(100_000);
    eprintln!("chromosome workload: full run at {genomes} x {chrom_snps}…");
    let chrom_cohort = paper_cohort(genomes, chrom_snps);
    let chrom = Federation::new(config, params, &chrom_cohort)
        .with_threads(1)
        .run()
        .expect("chromosome-scale protocol completes");

    // ---- SNP-sharded phase 1-2 sweep at chromosome width ----
    // `gendpr serve --shards S` splits the panel into word-aligned ranges,
    // each assessed by its own sub-federation, and the merge recombines
    // per-shard counts and LD moments by coordinate translation. This
    // sweep runs the same split over the phase 1-2 kernels: each shard
    // thread slices its column range, computes the per-SNP counts (the MAF
    // screen's input) and the within-shard adjacent-pair LD moments; the
    // merge concatenates counts and stitches boundary pairs from the
    // primary view, exactly as the shard-merge oracle does. Every shard
    // count must reproduce the unsharded checksum bit for bit.
    let shard_case = chrom_cohort.case();
    let n_chrom = shard_case.individuals() as u64;
    let chrom_truth = shard_case.column_counts();
    let chrom_columnar = ColumnarGenotypes::from_matrix(shard_case);
    let fold = |counts: &[u64], moments: &[LdMoments]| -> u64 {
        let acc = counts.iter().fold(0u64, |acc, &c| acc.rotate_left(3) ^ c);
        moments.iter().fold(acc, |acc, &m| checksum(acc, m))
    };
    let mut shard_rows: Vec<(u32, usize, Duration)> = Vec::new();
    let mut shard_truth_sum: Option<u64> = None;
    for &s in &shard_sweep {
        let plan = ShardPlan::new(chrom_snps, s);
        eprintln!(
            "shard sweep: phase 1-2 kernels, --shards {s} ({} shard lanes)…",
            plan.len()
        );
        let t = Instant::now();
        let per_shard: Vec<(usize, Vec<u64>, Vec<LdMoments>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = plan
                .ranges()
                .iter()
                .map(|range| {
                    let cohort = &chrom_cohort;
                    scope.spawn(move || {
                        let slice = cohort
                            .as_ref()
                            .column_range(range.start as usize, range.len as usize);
                        let case = slice.case();
                        let counts = case.column_counts();
                        let view = ColumnarGenotypes::from_matrix(case);
                        let n = case.individuals() as u64;
                        let moments: Vec<LdMoments> = (1..range.len as usize)
                            .map(|i| {
                                LdMoments::from_counts(
                                    counts[i - 1],
                                    counts[i],
                                    view.pair_count(SnpId(i as u32 - 1), SnpId(i as u32)),
                                    n,
                                )
                            })
                            .collect();
                        (range.start as usize, counts, moments)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread completes"))
                .collect()
        });
        // Merge: concatenate translated counts, stitch the cross-shard
        // boundary pairs from the primary (unsliced) view.
        let mut merged_counts = Vec::with_capacity(chrom_snps);
        let mut merged_moments = Vec::with_capacity(chrom_snps.saturating_sub(1));
        for (start, counts, moments) in &per_shard {
            if *start > 0 {
                let b = *start as u32;
                merged_moments.push(LdMoments::from_counts(
                    chrom_truth[*start - 1],
                    chrom_truth[*start],
                    chrom_columnar.pair_count(SnpId(b - 1), SnpId(b)),
                    n_chrom,
                ));
            }
            merged_counts.extend_from_slice(counts);
            merged_moments.extend_from_slice(moments);
        }
        let elapsed = t.elapsed();
        assert_eq!(merged_counts, chrom_truth, "sharding changed the counts");
        let sum = fold(&merged_counts, &merged_moments);
        match shard_truth_sum {
            None => shard_truth_sum = Some(sum),
            Some(truth) => assert_eq!(sum, truth, "--shards {s} changed the merged moments"),
        }
        shard_rows.push((s, plan.len(), elapsed));
    }
    drop(chrom_columnar);
    drop(chrom_cohort);

    // (b) The LR phase alone at 1M SNPs: synthetic packed indicator
    // matrices (the screens would never pass a million candidates, but the
    // kernels must sustain the width), transposed to columns and swept in
    // admission order.
    let mega_snps = scaled(1_000_000);
    let mega_individuals = scaled(2_000);
    eprintln!("chromosome workload: LR-only sweep at {mega_individuals} x {mega_snps}…");
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    let words_per_row = mega_snps.div_ceil(64);
    let tail_mask = if mega_snps % 64 == 0 {
        u64::MAX
    } else {
        (1u64 << (mega_snps % 64)) - 1
    };
    let packed = |rng: &mut u64| -> Vec<u64> {
        let mut bits: Vec<u64> = (0..mega_individuals * words_per_row)
            .map(|_| splitmix(rng))
            .collect();
        for row in bits.chunks_mut(words_per_row) {
            row[words_per_row - 1] &= tail_mask;
        }
        bits
    };
    let case_bits = packed(&mut rng);
    let null_bits = packed(&mut rng);
    let mega_cf: Vec<f64> = (0..mega_snps)
        .map(|_| 0.1 + (splitmix(&mut rng) % 1000) as f64 / 1250.0)
        .collect();
    let mega_rf: Vec<f64> = (0..mega_snps)
        .map(|_| 0.1 + (splitmix(&mut rng) % 1000) as f64 / 1250.0)
        .collect();
    let mega_case =
        BitLrMatrix::from_raw_bits(mega_individuals, mega_snps, case_bits, &mega_cf, &mega_rf)
            .expect("well-formed packed case matrix");
    let mega_null =
        BitLrMatrix::from_raw_bits(mega_individuals, mega_snps, null_bits, &mega_cf, &mega_rf)
            .expect("well-formed packed null matrix");
    let mega_order: Vec<usize> = (0..mega_snps).collect();
    let t = Instant::now();
    let mega_cols = (
        mega_case.to_columns().expect("two-valued packed matrix"),
        mega_null.to_columns().expect("two-valued packed matrix"),
    );
    let mega_selection =
        select_safe_subset_threads(&mega_cols.0, &mega_cols.1, &mega_order, &params.lr, 1);
    let mega_lr = t.elapsed();
    drop(mega_cols);
    eprintln!(
        "LR-only sweep kept {} of {} candidates in {:.1} s",
        mega_selection.kept_columns.len(),
        mega_snps,
        mega_lr.as_secs_f64()
    );

    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let speedup = before.as_secs_f64() / after.as_secs_f64().max(1e-9);
    let lr_speedup = lr_naive.as_secs_f64() / lr_columnar.as_secs_f64().max(1e-9);
    let shard_json = shard_rows
        .iter()
        .map(|(s, lanes, d)| {
            format!(
                "      {{ \"shards\": {s}, \"lanes\": {lanes}, \"phase12_ms\": {:.3} }}",
                ms(*d)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"workload\": {{\n    \"case_genomes\": {genomes},\n    \"snps\": {snps},\n    \"gdos\": {G},\n    \"colluders\": {F},\n    \"combinations\": {},\n    \"pairs\": {},\n    \"scale\": {scale}\n  }},\n  \"pooled_ld_moments\": {{\n    \"row_major_ms\": {:.3},\n    \"columnar_memo_ms\": {:.3},\n    \"speedup\": {:.2}\n  }},\n  \"lr_subset_search\": {{\n    \"candidates\": {},\n    \"naive_dense_ms\": {:.3},\n    \"columnar_ms\": {:.3},\n    \"columnar_threaded_ms\": {:.3},\n    \"threads\": {workers},\n    \"speedup\": {:.2},\n    \"selection_identical\": true\n  }},\n  \"protocol_phases_ms\": {{\n    \"threads\": 1,\n    \"aggregation\": {:.3},\n    \"indexing\": {:.3},\n    \"ld\": {:.3},\n    \"lr\": {:.3},\n    \"total\": {:.3}\n  }},\n  \"protocol_parallel\": {{\n    \"threads\": {workers},\n    \"total_ms\": {:.3},\n    \"release_identical\": true\n  }},\n  \"chromosome_100k\": {{\n    \"snps\": {chrom_snps},\n    \"lr_ms\": {:.3},\n    \"total_ms\": {:.3},\n    \"safe_snps\": {}\n  }},\n  \"shard_sweep\": {{\n    \"snps\": {chrom_snps},\n    \"plans\": [\n{shard_json}\n    ],\n    \"shard_identical\": true\n  }},\n  \"chromosome_1m_lr_only\": {{\n    \"snps\": {mega_snps},\n    \"individuals\": {mega_individuals},\n    \"search_ms\": {:.3},\n    \"kept_columns\": {}\n  }}\n}}\n",
        subsets.len(),
        pairs.len(),
        ms(before),
        ms(after),
        speedup,
        order.len(),
        ms(lr_naive),
        ms(lr_columnar),
        ms(lr_threaded),
        lr_speedup,
        ms(sequential.timings.aggregation),
        ms(sequential.timings.indexing),
        ms(sequential.timings.ld),
        ms(sequential.timings.lr),
        ms(sequential.timings.total()),
        ms(parallel.timings.total()),
        ms(chrom.timings.lr),
        ms(chrom.timings.total()),
        chrom.safe_snps.len(),
        ms(mega_lr),
        mega_selection.kept_columns.len(),
    );
    std::fs::write(&out, &json).expect("writing the JSON report");
    println!(
        "pooled LD moments: row-major {:.1} ms -> columnar+memo {:.1} ms ({speedup:.1}x)",
        ms(before),
        ms(after)
    );
    println!(
        "LR subset search: naive dense {:.1} ms -> columnar {:.1} ms ({lr_speedup:.1}x)",
        ms(lr_naive),
        ms(lr_columnar)
    );
    for (s, lanes, d) in &shard_rows {
        println!(
            "shard sweep: --shards {s} -> {lanes} lanes, phase 1-2 in {:.1} ms (merge identical)",
            ms(*d)
        );
    }
    println!("report written to {out}");
}
