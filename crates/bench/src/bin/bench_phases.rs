//! Measures the pooled LD-moment evaluation — the kernel the collusion
//! loop hammers hardest — before and after the columnar + memoization
//! rework, and emits machine-readable `BENCH_phases.json`.
//!
//! The "before" path is the pre-rework kernel exactly: row-major
//! `pair_count` scans (strided one word per individual) re-pooled from
//! scratch for every member combination. The "after" path is what
//! [`gendpr_core::gdo::GdoNode`] and the protocol driver now do: SNP-major
//! columnar popcount sweeps with per-member moment memoization (building
//! the columnar views and warming the memo are *included* in the timed
//! region). Both paths fold the pooled moments into a checksum that must
//! agree, so the comparison cannot drift semantically.
//!
//! Scale defaults to the paper's Table 5 setting — 14,860 case genomes ×
//! 10,000 SNPs, G = 5, f = 2 (11 combinations) — shrink with
//! `--scale <f>` for CI. `--out <path>` writes the JSON (default
//! `BENCH_phases.json`).

use gendpr_bench::workload::paper_cohort;
use gendpr_bench::PAPER_CASES_FULL;
use gendpr_core::collusion::evaluation_subsets;
use gendpr_core::config::{CollusionMode, FederationConfig, GwasParams};
use gendpr_core::gdo::GdoNode;
use gendpr_core::memo::MomentMemo;
use gendpr_core::protocol::Federation;
use gendpr_genomics::columnar::ColumnarGenotypes;
use gendpr_genomics::snp::SnpId;
use gendpr_stats::ld::LdMoments;
use std::time::{Duration, Instant};

const G: usize = 5;
const F: usize = 2;

fn checksum(acc: u64, m: LdMoments) -> u64 {
    acc.rotate_left(7)
        ^ m.sum_x
        ^ m.sum_y.rotate_left(13)
        ^ m.sum_xy.rotate_left(26)
        ^ m.n.rotate_left(39)
}

fn main() {
    let mut scale = 1.0f64;
    let mut out = String::from("BENCH_phases.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--scale needs a number in (0, 1]");
                assert!(scale > 0.0 && scale <= 1.0, "--scale must be in (0, 1]");
            }
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a path").clone();
            }
            other => panic!("unknown argument {other}; use --scale <f> | --out <path>"),
        }
        i += 1;
    }
    let scaled = |v: usize| ((v as f64 * scale).round() as usize).max(1);
    let genomes = scaled(PAPER_CASES_FULL);
    let snps = scaled(10_000);

    eprintln!("generating cohort: {genomes} case genomes x {snps} SNPs (G = {G}, f = {F})…");
    let cohort = paper_cohort(genomes, snps);
    let reference = cohort.reference();
    let shards = cohort.split_case_among(G);
    let subsets = evaluation_subsets(G, CollusionMode::Fixed(F));
    // The LD scan queries (mostly adjacent) pairs of the retained panel;
    // adjacent pairs over the full panel are a faithful stand-in.
    let pairs: Vec<(SnpId, SnpId)> = (0..snps.saturating_sub(1) as u32)
        .map(|i| (SnpId(i), SnpId(i + 1)))
        .collect();

    // ---- Before: row-major scans, recomputed per combination ----
    // (Marginal counts are precomputed outside the timer, as the old
    // protocol did via the pre-processing reports.)
    let ref_counts = reference.column_counts();
    let n_ref = reference.individuals() as u64;
    let shard_counts: Vec<Vec<u64>> = shards.iter().map(|s| s.column_counts()).collect();
    eprintln!(
        "timing row-major kernels ({} combinations x {} pairs)…",
        subsets.len(),
        pairs.len()
    );
    let t = Instant::now();
    let mut sum_before = 0u64;
    for subset in &subsets {
        for &(a, b) in &pairs {
            let mut pooled = LdMoments::from_cached_counts(
                reference,
                a,
                b,
                ref_counts[a.index()],
                ref_counts[b.index()],
            );
            for &m in subset {
                pooled = pooled.merge(LdMoments::from_cached_counts(
                    &shards[m],
                    a,
                    b,
                    shard_counts[m][a.index()],
                    shard_counts[m][b.index()],
                ));
            }
            sum_before = checksum(sum_before, pooled);
        }
    }
    let before = t.elapsed();

    // ---- After: columnar popcount sweeps + per-member memoization ----
    // (Transposing the shards and warming every memo is part of the
    // timed region — this is the full cost a fresh federation pays.)
    eprintln!("timing columnar + memoized kernels…");
    let t = Instant::now();
    let nodes: Vec<GdoNode> = shards
        .iter()
        .enumerate()
        .map(|(id, s)| GdoNode::new(id, s.clone()))
        .collect();
    let ref_columnar = ColumnarGenotypes::from_matrix(reference);
    let ref_memo = MomentMemo::new();
    let mut sum_after = 0u64;
    for subset in &subsets {
        for &(a, b) in &pairs {
            let mut pooled = ref_memo.get_or_compute(a, b, || {
                LdMoments::from_counts(
                    ref_counts[a.index()],
                    ref_counts[b.index()],
                    ref_columnar.pair_count(a, b),
                    n_ref,
                )
            });
            for &m in subset {
                pooled = pooled.merge(LdMoments::from(nodes[m].ld_moments(a, b)));
            }
            sum_after = checksum(sum_after, pooled);
        }
    }
    let after = t.elapsed();
    assert_eq!(
        sum_before, sum_after,
        "kernel rework changed the pooled moments"
    );

    // ---- Full protocol phase breakdown at the same scale ----
    eprintln!("running the full three-phase protocol for the phase breakdown…");
    let params = GwasParams::secure_genome_defaults();
    let config = FederationConfig::new(G).with_collusion(CollusionMode::Fixed(F));
    let run = |threads: usize| {
        Federation::new(config, params, &cohort)
            .with_threads(threads)
            .run()
            .expect("protocol completes")
    };
    let sequential = run(1);
    let workers = gendpr_core::pool::available_parallelism();
    let parallel = run(workers);
    assert_eq!(
        sequential.safe_snps, parallel.safe_snps,
        "thread count changed the release"
    );

    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let speedup = before.as_secs_f64() / after.as_secs_f64().max(1e-9);
    let json = format!(
        "{{\n  \"workload\": {{\n    \"case_genomes\": {genomes},\n    \"snps\": {snps},\n    \"gdos\": {G},\n    \"colluders\": {F},\n    \"combinations\": {},\n    \"pairs\": {},\n    \"scale\": {scale}\n  }},\n  \"pooled_ld_moments\": {{\n    \"row_major_ms\": {:.3},\n    \"columnar_memo_ms\": {:.3},\n    \"speedup\": {:.2}\n  }},\n  \"protocol_phases_ms\": {{\n    \"threads\": 1,\n    \"aggregation\": {:.3},\n    \"indexing\": {:.3},\n    \"ld\": {:.3},\n    \"lr\": {:.3},\n    \"total\": {:.3}\n  }},\n  \"protocol_parallel\": {{\n    \"threads\": {workers},\n    \"total_ms\": {:.3},\n    \"release_identical\": true\n  }}\n}}\n",
        subsets.len(),
        pairs.len(),
        ms(before),
        ms(after),
        speedup,
        ms(sequential.timings.aggregation),
        ms(sequential.timings.indexing),
        ms(sequential.timings.ld),
        ms(sequential.timings.lr),
        ms(sequential.timings.total()),
        ms(parallel.timings.total()),
    );
    std::fs::write(&out, &json).expect("writing the JSON report");
    println!(
        "pooled LD moments: row-major {:.1} ms -> columnar+memo {:.1} ms ({speedup:.1}x)",
        ms(before),
        ms(after)
    );
    println!("report written to {out}");
}
