//! Regenerates **Figure 5** — running-time comparison over 1,000 SNPs:
//! (a) 7,430 case genomes, (b) 14,860 case genomes; centralized baseline
//! vs GenDPR with 2/3/5/7 GDOs, broken down into the paper's four tasks.

use gendpr_bench::figures::run_figure;
use gendpr_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    run_figure("Figure 5", 1_000, &args);
}
