//! Ablations of GenDPR's design choices (DESIGN.md §6).
//!
//! 1. **Work distribution** — LR-phase time vs federation size (the paper
//!    claims more GDOs make GenDPR faster because LR matrices are built
//!    in parallel at the members).
//! 2. **Collusion combinations** — verification cost vs (G, f).
//! 3. **Bit-packed genotypes** — column-count throughput vs a byte-matrix.
//! 4. **Empirical vs normal-approximation LR power** — agreement of the
//!    two estimators across frequency gaps.
//! 5. **Encryption overhead** — measured ciphertext expansion and the
//!    cost of the attested channel.

use gendpr_bench::workload::paper_cohort;
use gendpr_bench::{ms, BenchArgs, TextTable, PAPER_CASES_FULL};
use gendpr_core::config::{CollusionMode, FederationConfig, GwasParams};
use gendpr_core::protocol::Federation;
use gendpr_core::runtime::run_federation;
use gendpr_stats::lr::TheoreticalLr;
use std::time::{Duration, Instant};

fn main() {
    let args = BenchArgs::from_env();
    let params = GwasParams::secure_genome_defaults();

    ablation_work_distribution(&args, params);
    ablation_collusion_cost(&args, params);
    ablation_bit_packing(&args);
    ablation_lr_estimators();
    ablation_encryption_overhead(&args, params);
    ablation_transport_optimizations(&args, params);
    ablation_wan_estimate(&args, params);
    ablation_oblivious_overhead(&args);
}

fn ablation_oblivious_overhead(args: &BenchArgs) {
    use gendpr_genomics::snp::SnpId;
    use gendpr_stats::lr::{select_safe_subset, LrMatrix, LrTestParams};
    use gendpr_stats::oblivious::select_safe_subset_oblivious;
    use gendpr_stats::ranking::rank_by_association;

    println!("\n== Ablation 8: data-oblivious LR selection overhead (paper's future work) ==");
    let cohort = paper_cohort(args.scaled(PAPER_CASES_FULL / 4), args.scaled(1_000));
    let n_case = cohort.case().individuals() as u64;
    let n_ref = cohort.reference().individuals() as u64;
    let case_counts = cohort.case().column_counts();
    let ref_counts = cohort.reference().column_counts();
    let candidates: Vec<SnpId> = (0..cohort.panel().len() as u32).map(SnpId).collect();
    let case_freqs: Vec<f64> = case_counts
        .iter()
        .map(|&x| x as f64 / n_case as f64)
        .collect();
    let ref_freqs: Vec<f64> = ref_counts
        .iter()
        .map(|&x| x as f64 / n_ref as f64)
        .collect();
    let case_m = LrMatrix::from_genotypes(cohort.case(), &candidates, &case_freqs, &ref_freqs);
    let null_m = LrMatrix::from_genotypes(cohort.reference(), &candidates, &case_freqs, &ref_freqs);
    let ranks = rank_by_association(&candidates, &case_counts, n_case, &ref_counts, n_ref);
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| ranks[a].p_value.partial_cmp(&ranks[b].p_value).unwrap());
    let params = LrTestParams::secure_genome_defaults();

    let t = Instant::now();
    let fast = select_safe_subset(&case_m, &null_m, &order, &params);
    let fast_time = t.elapsed();
    let t = Instant::now();
    let oblivious = select_safe_subset_oblivious(&case_m, &null_m, &order, &params);
    let oblivious_time = t.elapsed();
    assert_eq!(fast.kept_columns, oblivious.kept_columns);

    let mut table = TextTable::new(vec!["Variant", "Time (ms)", "Slowdown"]);
    table.row(vec![
        "fast (quickselect, branching)".to_string(),
        ms(fast_time),
        "1.0x".to_string(),
    ]);
    table.row(vec![
        "oblivious (bitonic network, branchless)".to_string(),
        ms(oblivious_time),
        format!(
            "{:.1}x",
            oblivious_time.as_secs_f64() / fast_time.as_secs_f64()
        ),
    ]);
    table.print();
    println!("(identical selections — asserted; the overhead is the price of pattern-freedom)");
}

fn ablation_transport_optimizations(args: &BenchArgs, params: GwasParams) {
    use gendpr_core::runtime::{run_federation_with, RuntimeOptions};
    println!("\n== Ablation 6: transport optimizations (same selection, different cost) ==");
    let cohort = paper_cohort(args.scaled(PAPER_CASES_FULL), args.scaled(2_500));
    let config = FederationConfig::new(3).with_seed(1);
    let variants: [(&str, RuntimeOptions); 4] = [
        (
            "paper-faithful (dense LR, per-pair LD)",
            RuntimeOptions::default(),
        ),
        (
            "compact LR matrices",
            RuntimeOptions {
                compact_lr: true,
                ..RuntimeOptions::default()
            },
        ),
        (
            "adjacent-pair LD prefetch",
            RuntimeOptions {
                prefetch_ld: true,
                ..RuntimeOptions::default()
            },
        ),
        (
            "both optimizations",
            RuntimeOptions {
                compact_lr: true,
                prefetch_ld: true,
                ..RuntimeOptions::default()
            },
        ),
    ];
    let mut table = TextTable::new(vec![
        "Variant",
        "Messages",
        "Wire bytes",
        "LD (ms)",
        "LR (ms)",
        "Total (ms)",
        "L_safe",
    ]);
    let mut reference_selection: Option<Vec<gendpr_genomics::snp::SnpId>> = None;
    for (label, opts) in variants {
        let opts = RuntimeOptions {
            timeout: Duration::from_secs(600),
            ..opts
        };
        let report =
            run_federation_with(config, params, &cohort, None, opts).expect("run completes");
        match &reference_selection {
            None => reference_selection = Some(report.safe_snps.clone()),
            Some(expected) => assert_eq!(
                expected, &report.safe_snps,
                "optimizations must not change the selection"
            ),
        }
        table.row(vec![
            label.to_string(),
            report.traffic.messages.to_string(),
            report.traffic.wire_bytes.to_string(),
            ms(report.timings.ld),
            ms(report.timings.lr),
            ms(report.timings.total()),
            report.safe_snps.len().to_string(),
        ]);
    }
    table.print();
    println!("(every variant selects the identical L_safe — asserted)");
}

fn ablation_wan_estimate(args: &BenchArgs, params: GwasParams) {
    use gendpr_fednet::latency::LatencyModel;
    println!("\n== Ablation 7: estimated communication cost in a geo-distributed federation ==");
    let cohort = paper_cohort(args.scaled(PAPER_CASES_FULL), args.scaled(2_500));
    let outcome = Federation::new(FederationConfig::new(3), params, &cohort)
        .run()
        .expect("run completes");
    let t = outcome.traffic;
    println!(
        "critical-path rounds: {} (dominated by the LD scan's per-pair queries)",
        t.round_trips
    );
    for (label, model) in [
        ("datacenter (0.2 ms, 10 Gb/s)", LatencyModel::datacenter()),
        ("wide-area  (40 ms, 100 Mb/s)", LatencyModel::wide_area()),
    ] {
        println!(
            "{label}: ~{:.1} s of pure communication",
            t.wan_estimate(&model).as_secs_f64()
        );
    }
    println!("(the adjacent-pair prefetch of Ablation 6 removes nearly all of those rounds)");
}

fn ablation_work_distribution(args: &BenchArgs, params: GwasParams) {
    println!("== Ablation 1: LR-phase wall time vs federation size ==");
    let cohort = paper_cohort(args.scaled(PAPER_CASES_FULL), args.scaled(5_000));
    let mut table = TextTable::new(vec!["GDOs", "LR phase (ms)", "Total (ms)"]);
    for gdos in [1usize, 2, 3, 5, 7] {
        let report = run_federation(
            FederationConfig::new(gdos),
            params,
            &cohort,
            None,
            Duration::from_secs(600),
        )
        .expect("run completes");
        table.row(vec![
            gdos.to_string(),
            ms(report.timings.lr),
            ms(report.timings.total()),
        ]);
    }
    table.print();
    println!();
}

fn ablation_collusion_cost(args: &BenchArgs, params: GwasParams) {
    println!("== Ablation 2: collusion verification cost vs (G, f) ==");
    let cohort = paper_cohort(args.scaled(PAPER_CASES_FULL / 4), args.scaled(2_000));
    let mut table = TextTable::new(vec!["G", "f", "Combinations", "Total (ms)"]);
    for g in [3usize, 5] {
        for f in 0..g {
            let mode = if f == 0 {
                CollusionMode::None
            } else {
                CollusionMode::Fixed(f)
            };
            let out = Federation::new(
                FederationConfig::new(g).with_collusion(mode),
                params,
                &cohort,
            )
            .run()
            .expect("run completes");
            table.row(vec![
                g.to_string(),
                f.to_string(),
                out.evaluations.to_string(),
                ms(out.timings.total()),
            ]);
        }
    }
    table.print();
    println!();
}

fn ablation_bit_packing(args: &BenchArgs) {
    println!("== Ablation 3: bit-packed vs byte-matrix column counts ==");
    let cohort = paper_cohort(args.scaled(PAPER_CASES_FULL), args.scaled(10_000));
    let m = cohort.case();

    let t = Instant::now();
    let packed = m.column_counts();
    let packed_time = t.elapsed();

    // Byte-matrix strawman.
    let rows: Vec<Vec<u8>> = (0..m.individuals()).map(|i| m.row(i)).collect();
    let t = Instant::now();
    let mut bytes_counts = vec![0u64; m.snps()];
    for row in &rows {
        for (c, &x) in bytes_counts.iter_mut().zip(row.iter()) {
            *c += u64::from(x);
        }
    }
    let byte_time = t.elapsed();
    assert_eq!(packed, bytes_counts);

    let mut table = TextTable::new(vec!["Representation", "Memory (KB)", "Column counts (ms)"]);
    table.row(vec![
        "bit-packed".to_string(),
        format!("{}", m.heap_bytes() / 1024),
        ms(packed_time),
    ]);
    table.row(vec![
        "byte matrix".to_string(),
        format!("{}", m.individuals() * m.snps() / 1024),
        ms(byte_time),
    ]);
    table.print();
    println!();
}

fn ablation_lr_estimators() {
    println!("== Ablation 4: empirical vs normal-approximation LR power ==");
    let mut table = TextTable::new(vec!["freq gap", "SNPs", "theoretical power", "note"]);
    for gap in [0.0f64, 0.05, 0.10, 0.20] {
        for snps in [10usize, 50] {
            let mut th = TheoreticalLr::default();
            for _ in 0..snps {
                th.add_snp(0.3 + gap, 0.3);
            }
            let p = th.power(0.1);
            table.row(vec![
                format!("{gap:.2}"),
                snps.to_string(),
                format!("{p:.3}"),
                if p >= 0.9 {
                    "would be rejected"
                } else {
                    "releasable"
                }
                .to_string(),
            ]);
        }
    }
    table.print();
    println!("(the empirical estimator's agreement is asserted in the stats test suite)\n");
}

fn ablation_encryption_overhead(args: &BenchArgs, params: GwasParams) {
    println!("== Ablation 5: encryption/framing overhead on the wire ==");
    let cohort = paper_cohort(args.scaled(PAPER_CASES_FULL / 4), args.scaled(2_000));
    let report = run_federation(
        FederationConfig::new(3),
        params,
        &cohort,
        None,
        Duration::from_secs(600),
    )
    .expect("run completes");
    let t = report.traffic;
    println!("messages:        {}", t.messages);
    println!("plaintext bytes: {}", t.plaintext_bytes);
    println!("wire bytes:      {}", t.wire_bytes);
    println!(
        "expansion:       {:.4}x (paper's AES-256+padding estimate was ~1.3x; \
ChaCha20-Poly1305 pays only a 16-byte tag plus framing per message)",
        t.expansion()
    );
}
