//! Regenerates **Table 4** — comparison of the SNPs selected as safe after
//! each phase by the centralized baseline, GenDPR, and the naïve
//! distributed protocol (§7.3).
//!
//! The paper's claims, all checked here:
//! * GenDPR retains **exactly** the same SNPs as the centralized baseline
//!   at every phase (the middle column equals the left column);
//! * the naïve protocol agrees on MAF but selects smaller (and possibly
//!   disjoint) sets in the LD and LR phases — releasing those would still
//!   allow membership inference.

use gendpr_bench::workload::paper_cohort;
use gendpr_bench::{BenchArgs, TextTable, PAPER_CASES_FULL, PAPER_CASES_HALF};
use gendpr_core::baseline::centralized::CentralizedPipeline;
use gendpr_core::baseline::naive::NaiveDistributed;
use gendpr_core::config::{FederationConfig, GwasParams};
use gendpr_core::protocol::Federation;

fn main() {
    let args = BenchArgs::from_env();
    let params = GwasParams::secure_genome_defaults();
    const GDOS: usize = 3;

    println!("== Table 4: retained SNPs after each phase (centralized / GenDPR / naive) ==");
    println!(
        "(scale {:.2}, {GDOS} GDOs for the distributed protocols)\n",
        args.scale
    );

    let mut table = TextTable::new(vec![
        "genomes / SNPs",
        "Centralized",
        "GenDPR",
        "Naive distributed",
        "GenDPR == centralized?",
    ]);
    let mut all_equal = true;

    for paper_genomes in [PAPER_CASES_HALF, PAPER_CASES_FULL] {
        for paper_snps in [1_000usize, 2_500, 5_000, 10_000] {
            let genomes = args.scaled(paper_genomes);
            let snps = args.scaled(paper_snps);
            let cohort = paper_cohort(genomes, snps);

            let central = CentralizedPipeline::new(params)
                .run(cohort.as_ref())
                .expect("centralized pipeline completes");
            let gendpr = Federation::new(FederationConfig::new(GDOS), params, &cohort)
                .run()
                .expect("GenDPR completes");
            let naive = NaiveDistributed::new(params, GDOS)
                .run(cohort.as_ref())
                .expect("naive protocol completes");

            let equal = central.l_prime == gendpr.l_prime
                && central.l_double_prime == gendpr.l_double_prime
                && central.safe_snps == gendpr.safe_snps;
            all_equal &= equal;

            let fmt = |maf: usize, ld: usize, lr: usize| format!("MAF {maf} / LD {ld} / LR {lr}");
            table.row(vec![
                format!("{genomes} / {snps}"),
                fmt(
                    central.l_prime.len(),
                    central.l_double_prime.len(),
                    central.safe_snps.len(),
                ),
                fmt(
                    gendpr.l_prime.len(),
                    gendpr.l_double_prime.len(),
                    gendpr.safe_snps.len(),
                ),
                fmt(
                    naive.l_prime.len(),
                    naive.l_double_prime.len(),
                    naive.safe_snps.len(),
                ),
                if equal {
                    "yes".to_string()
                } else {
                    "NO".to_string()
                },
            ]);
        }
    }
    table.print();

    assert!(
        all_equal,
        "correctness violation: GenDPR diverged from the centralized baseline"
    );
    println!(
        "\nAll rows: GenDPR selected exactly the centralized sets (paper's correctness claim)."
    );
    println!("The naive protocol's LD/LR columns fall short — its releases would be unsafe.");
}
