//! Regenerates **Table 3** — GenDPR's average resource utilization — plus
//! the bandwidth accounting discussed alongside it (§7.1).
//!
//! The paper reports, for {2, 3, 5, 7} GDOs × {1,000, 10,000} SNPs, that
//! every enclave stays under ~2.2 MB of trusted memory and <1% CPU. Here
//! the threaded runtime meters each member's enclave allocations (peak
//! bytes) and every byte on the wire, and additionally prints the
//! analytic savings of not shipping genomes (`2·L_des·N_T` bits).

use gendpr_bench::workload::paper_cohort;
use gendpr_bench::{BenchArgs, TextTable, PAPER_CASES_FULL};
use gendpr_core::config::{FederationConfig, GwasParams};
use gendpr_core::runtime::{run_federation_with, RuntimeOptions};
use std::time::Duration;

fn main() {
    let args = BenchArgs::from_env();
    let params = GwasParams::secure_genome_defaults();
    let genomes = args.scaled(PAPER_CASES_FULL);

    println!("== Table 3: GenDPR's average resource utilization ==");
    println!(
        "(scale {:.2}: {genomes} case genomes; paper: 14,860)\n",
        args.scale
    );

    let mut table = TextTable::new(vec![
        "Configuration",
        "Member enclave peak (dense / compact)",
        "Leader enclave peak (dense / compact)",
        "Messages",
        "Wire bytes (dense / compact)",
        "Ciphertext expansion",
    ]);

    for snps in [args.scaled(1_000), args.scaled(10_000)] {
        let cohort = paper_cohort(genomes, snps);
        for gdos in [2usize, 3, 5, 7] {
            let report = run_federation_with(
                FederationConfig::new(gdos).with_seed(7),
                params,
                &cohort,
                None,
                RuntimeOptions {
                    timeout: Duration::from_secs(600),
                    ..RuntimeOptions::default()
                },
            )
            .expect("fault-free run completes");
            let compact = run_federation_with(
                FederationConfig::new(gdos).with_seed(7),
                params,
                &cohort,
                None,
                RuntimeOptions {
                    timeout: Duration::from_secs(600),
                    compact_lr: true,
                    prefetch_ld: true,
                    ..RuntimeOptions::default()
                },
            )
            .expect("fault-free run completes");
            assert_eq!(report.safe_snps, compact.safe_snps);
            let member_peak = |r: &gendpr_core::runtime::RuntimeReport| {
                r.resources
                    .iter()
                    .filter(|m| m.id != r.leader)
                    .map(|m| m.peak_enclave_bytes)
                    .max()
                    .unwrap_or(0)
            };
            let leader_peak = |r: &gendpr_core::runtime::RuntimeReport| {
                r.resources
                    .iter()
                    .find(|m| m.id == r.leader)
                    .map(|m| m.peak_enclave_bytes)
                    .unwrap_or(0)
            };
            let kb = |b: u64| format!("{:.0} KB", b as f64 / 1024.0);
            table.row(vec![
                format!("{gdos} GDOs / {snps} SNPs"),
                format!(
                    "{} / {}",
                    kb(member_peak(&report)),
                    kb(member_peak(&compact))
                ),
                format!(
                    "{} / {}",
                    kb(leader_peak(&report)),
                    kb(leader_peak(&compact))
                ),
                format!("{}", report.traffic.messages),
                format!(
                    "{} / {}",
                    report.traffic.wire_bytes, compact.traffic.wire_bytes
                ),
                format!("{:.3}x", report.traffic.expansion()),
            ]);
        }
    }
    table.print();

    // §7.1 bandwidth discussion: count vectors vs raw genomes.
    println!("\n== Bandwidth accounting (paper §7.1) ==");
    let snps = args.scaled(10_000);
    let cohort = paper_cohort(genomes, snps);
    let n_total = cohort.case().individuals() + cohort.reference().individuals();
    let counts_vector_bytes = 4 * snps; // 32-bit integer per SNP, as the paper assumes
    let genome_bits = 2 * snps * n_total;
    println!("count vector per GDO:        {counts_vector_bytes} bytes (4*L_des)");
    println!(
        "raw genomes (never shipped): {} bytes (2*L_des*N_T bits)",
        genome_bits / 8
    );
    println!(
        "saving factor:               {:.0}x",
        genome_bits as f64 / 8.0 / counts_vector_bytes as f64
    );
}
