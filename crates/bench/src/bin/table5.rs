//! Regenerates **Table 5** — collusion-tolerant GenDPR (§7.4): how many
//! SNPs stay releasable when the federation defends against f colluding
//! members, which SNPs turn out vulnerable, and what the extra
//! verification rounds cost in running time.
//!
//! Shape targets from the paper (14,860 genomes / 10,000 SNPs):
//! * collusion tolerance releases ~70–80% of the f = 0 set;
//! * running time grows with the number of combinations;
//! * within one G, the f = G−1 setting is the cheapest (fewest and
//!   smallest combinations), and f = {1..G−1} the most expensive.

use gendpr_bench::workload::paper_cohort;
use gendpr_bench::{ms, BenchArgs, TextTable, PAPER_CASES_FULL};
use gendpr_core::config::{CollusionMode, FederationConfig, GwasParams};
use gendpr_core::protocol::Federation;

fn main() {
    let args = BenchArgs::from_env();
    let params = GwasParams::secure_genome_defaults();
    let genomes = args.scaled(PAPER_CASES_FULL);
    let snps = args.scaled(10_000);
    let cohort = paper_cohort(genomes, snps);

    println!("== Table 5: collusion-tolerant GenDPR ({genomes} genomes / {snps} SNPs) ==\n");

    let mut table = TextTable::new(vec![
        "Settings",
        "# safe released SNPs with collusion-tolerance",
        "# vulnerable SNPs without collusion-tolerance",
        "Combinations",
        "Running time (ms)",
    ]);

    for g in [3usize, 4, 5] {
        let mut modes: Vec<(String, CollusionMode)> = (1..g)
            .map(|f| (format!("G = {g}, f = {f}"), CollusionMode::Fixed(f)))
            .collect();
        modes.push((
            format!(
                "G = {g}, f = {{{}}}",
                (1..g).map(|f| f.to_string()).collect::<Vec<_>>().join(",")
            ),
            CollusionMode::AllUpTo,
        ));

        for (label, mode) in modes {
            let outcome = Federation::new(
                FederationConfig::new(g).with_collusion(mode),
                params,
                &cohort,
            )
            .run()
            .expect("collusion-tolerant run completes");
            let safe = outcome.safe_snps.len();
            // The paper's comparison: against what the same run would have
            // released with zero colluders (the full-set combination) —
            // safe_snps is a subset of it by construction.
            let base_count = outcome.full_set_safe.len();
            let vulnerable = base_count - safe;
            let pct = |x: usize| {
                if base_count == 0 {
                    0.0
                } else {
                    100.0 * x as f64 / base_count as f64
                }
            };
            table.row(vec![
                label,
                format!("{safe} ({:.1}%)", pct(safe)),
                format!("{vulnerable} ({:.1}%)", pct(vulnerable)),
                format!("{}", outcome.evaluations),
                ms(outcome.timings.total()),
            ]);
        }
    }
    table.print();
    println!(
        "\nPercentages are relative to the run's own zero-colluder (full-set) selection, \
of which the tolerant release is a subset by construction."
    );
}
