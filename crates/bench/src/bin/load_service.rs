//! Load-tests the assessment daemon's concurrent scheduler: hundreds of
//! simulated clients hammer one daemon over the client protocol, first
//! with a single worker lane (the historical FIFO behaviour), then with
//! a pool, and the harness reports per-phase throughput and latency
//! percentiles from the daemon's own `gendpr_sched_*` histograms.
//!
//! Job *execution* on a development box is microseconds of arithmetic,
//! which no scheduler can speed up on one core. What the worker pool
//! actually buys is overlap of the protocol's **network waits** — the
//! paper's GDOs are geo-distributed, and every MAF/LD/LR round blocks on
//! the slowest link. The harness reproduces that honestly: each lane's
//! member mesh runs over real loopback TCP with seeded fault-plan delays
//! (`reorder_window_ms`, zero loss, zero duplication), so every job
//! spends most of its life waiting on sockets, exactly like a WAN
//! deployment, and lanes overlap those waits.
//!
//! The binary enforces its own pass criteria (everything completed,
//! nothing dropped, optional `--min-speedup`), so `scripts/loadtest.sh`
//! needs no JSON parsing; `--out` writes `BENCH_service.json`.

use gendpr_core::config::{FederationConfig, GwasParams};
use gendpr_core::runtime::RuntimeOptions;
use gendpr_core::serving::ServiceFederation;
use gendpr_fednet::fault::{ChaosFaults, FaultPlan};
use gendpr_fednet::tcp::{ephemeral_listeners, TcpOptions, TcpTransport};
use gendpr_fednet::transport::{PeerId, Transport};
use gendpr_genomics::synth::SyntheticCohort;
use gendpr_obs::quantile_from_counts;
use gendpr_service::daemon::AssessmentService;
use gendpr_service::ledger::ReleaseLedger;
use gendpr_service::{telemetry, SchedulerConfig, ServiceClient};
use gendpr_stats::lr::LrTestParams;
use std::io::ErrorKind;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const GDOS: usize = 3;
const SNPS: usize = 96;
const JOB_PANEL: u32 = 16;

struct Config {
    clients: usize,
    delay_ms: u32,
    max_queue: usize,
    worker_phases: Vec<usize>,
    min_speedup: f64,
    out: String,
    smoke: bool,
}

struct PhaseReport {
    workers: usize,
    wall: Duration,
    completed: u64,
    dropped: u64,
    queue_full_rejects: u64,
    latency: [f64; 3],
    wait_p50: f64,
}

fn study() -> SyntheticCohort {
    SyntheticCohort::builder()
        .snps(SNPS)
        .case_individuals(64)
        .reference_individuals(48)
        .seed(97)
        .drift(0.3)
        .build()
}

fn params() -> GwasParams {
    GwasParams {
        maf_cutoff: 0.05,
        ld_cutoff: 1e-5,
        lr: LrTestParams {
            false_positive_rate: 0.1,
            power_threshold: 0.6,
        },
    }
}

/// One federation lane over loopback TCP with seeded delay faults on
/// every member, so each protocol round has genuine socket waits.
fn start_lane(lane: usize, delay_ms: u32) -> ServiceFederation {
    let (roster, listeners) = ephemeral_listeners(GDOS).expect("localhost listeners");
    let transports: Vec<TcpTransport> = listeners
        .into_iter()
        .enumerate()
        .map(|(id, listener)| {
            let transport = TcpTransport::from_listener(
                PeerId(id as u32),
                listener,
                &roster,
                TcpOptions::default(),
            )
            .expect("transport from bound listener");
            let mut plan = FaultPlan::none();
            plan.chaos(ChaosFaults {
                seed: 1000 + (lane * GDOS + id) as u64,
                drop_rate: 0.0,
                duplicate_rate: 0.0,
                reorder_window_ms: delay_ms,
            });
            transport.set_faults(plan);
            transport
        })
        .collect();
    let options = RuntimeOptions {
        timeout: Duration::from_secs(120),
        ..RuntimeOptions::default()
    };
    ServiceFederation::start_over(
        transports,
        FederationConfig::new(GDOS).with_seed(53),
        params(),
        study(),
        options,
    )
    .expect("lane session starts")
}

/// Snapshot of the cumulative scheduler histograms; subtracting two
/// isolates one phase's observations.
struct MetricsSnapshot {
    latency: Vec<u64>,
    wait: Vec<u64>,
    queue_full: u64,
}

fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        latency: telemetry::sched_job_latency_seconds().bucket_counts(),
        wait: telemetry::sched_job_wait_seconds().bucket_counts(),
        queue_full: telemetry::sched_admission_rejects("queue_full").get(),
    }
}

fn delta(before: &[u64], after: &[u64]) -> Vec<u64> {
    after
        .iter()
        .zip(before)
        .map(|(a, b)| a.saturating_sub(*b))
        .collect()
}

fn run_phase(config: &Config, workers: usize, ledger_path: &PathBuf) -> PhaseReport {
    eprintln!(
        "phase: {workers} worker lane(s), {} clients…",
        config.clients
    );
    let lanes: Vec<ServiceFederation> = (0..workers)
        .map(|lane| {
            let session = start_lane(lane, config.delay_ms);
            eprintln!("  lane {lane} attested");
            session
        })
        .collect();
    let cohort = study();
    let ledger = ReleaseLedger::open(ledger_path).expect("fresh ledger");
    let listener = TcpListener::bind("127.0.0.1:0").expect("client listener");
    let service = AssessmentService::start_with(
        lanes,
        ledger,
        cohort.as_ref(),
        params(),
        listener,
        SchedulerConfig {
            workers,
            max_queue: config.max_queue,
            ..SchedulerConfig::default()
        },
    )
    .expect("daemon starts");
    let addr = service.client_addr();
    eprintln!("  daemon on {addr}");

    let before = snapshot();
    let completed = Arc::new(AtomicU64::new(0));
    let dropped = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let handles: Vec<_> = (0..config.clients)
        .map(|i| {
            let completed = Arc::clone(&completed);
            let dropped = Arc::clone(&dropped);
            thread::spawn(move || {
                let client = ServiceClient::new(addr);
                // Distinct overlapping slices so jobs differ but stay valid.
                let start = (i as u32 * 7) % (SNPS as u32 - JOB_PANEL);
                let panel: Vec<u32> = (start..start + JOB_PANEL).collect();
                let deadline = Instant::now() + Duration::from_secs(600);
                loop {
                    match client.submit_and_wait(panel.clone(), 0) {
                        Ok(_) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                        // Backpressure: the queue is full, retry shortly.
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            if Instant::now() > deadline {
                                dropped.fetch_add(1, Ordering::Relaxed);
                                return;
                            }
                            thread::sleep(Duration::from_millis(5 + (i as u64 % 7)));
                        }
                        Err(e) => {
                            eprintln!("client {i}: job lost: {e}");
                            dropped.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        let _ = handle.join();
    }
    let wall = started.elapsed();
    let after = snapshot();
    service.stop().expect("daemon drains cleanly");

    let latency_delta = delta(&before.latency, &after.latency);
    let wait_delta = delta(&before.wait, &after.wait);
    let bounds = telemetry::sched_job_latency_seconds().bounds().to_vec();
    PhaseReport {
        workers,
        wall,
        completed: completed.load(Ordering::Relaxed),
        dropped: dropped.load(Ordering::Relaxed),
        queue_full_rejects: after.queue_full - before.queue_full,
        latency: [0.5, 0.95, 0.99].map(|q| quantile_from_counts(&bounds, &latency_delta, q)),
        wait_p50: quantile_from_counts(&bounds, &wait_delta, 0.5),
    }
}

fn parse_args() -> Config {
    let mut config = Config {
        clients: 200,
        delay_ms: 12,
        max_queue: 48,
        worker_phases: vec![1, 4],
        min_speedup: 0.0,
        out: String::from("BENCH_service.json"),
        smoke: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                config.smoke = true;
                config.clients = 24;
                config.delay_ms = 4;
                config.max_queue = 8;
            }
            "--clients" => {
                i += 1;
                config.clients = args[i].parse().expect("--clients needs a count");
            }
            "--delay-ms" => {
                i += 1;
                config.delay_ms = args[i].parse().expect("--delay-ms needs milliseconds");
            }
            "--max-queue" => {
                i += 1;
                config.max_queue = args[i].parse().expect("--max-queue needs a bound");
            }
            "--min-speedup" => {
                i += 1;
                config.min_speedup = args[i].parse().expect("--min-speedup needs a factor");
            }
            "--out" => {
                i += 1;
                config.out = args[i].clone();
            }
            other => panic!(
                "unknown argument {other}; use --smoke | --clients N | --delay-ms MS | \
                 --max-queue N | --min-speedup F | --out PATH"
            ),
        }
        i += 1;
    }
    config
}

fn main() {
    let config = parse_args();
    // Job-lifecycle events for hundreds of jobs would swamp stderr.
    gendpr_obs::set_level("error").expect("valid log level");

    let mut reports = Vec::new();
    let mut ledgers = Vec::new();
    for &workers in &config.worker_phases {
        let ledger_path = std::env::temp_dir().join(format!(
            "gendpr-load-{}-w{workers}.ledger",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&ledger_path);
        let report = run_phase(&config, workers, &ledger_path);
        eprintln!(
            "  {} lane(s): {} jobs in {:.2?} ({:.2} jobs/s), {} queue-full rejects, p50 {:.0} ms",
            report.workers,
            report.completed,
            report.wall,
            report.completed as f64 / report.wall.as_secs_f64(),
            report.queue_full_rejects,
            report.latency[0] * 1e3,
        );
        reports.push(report);
        ledgers.push(ledger_path);
    }
    for ledger in &ledgers {
        let _ = std::fs::remove_file(ledger);
    }

    let throughput =
        |r: &PhaseReport| -> f64 { r.completed as f64 / r.wall.as_secs_f64().max(1e-9) };
    let speedup = if reports.len() >= 2 {
        throughput(&reports[reports.len() - 1]) / throughput(&reports[0]).max(1e-9)
    } else {
        1.0
    };

    let phase_json: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"workers\": {},\n      \"wall_s\": {:.3},\n      \"completed\": {},\n      \"dropped\": {},\n      \"queue_full_rejects\": {},\n      \"throughput_jobs_per_s\": {:.3},\n      \"latency_s\": {{ \"p50\": {:.4}, \"p95\": {:.4}, \"p99\": {:.4} }},\n      \"queue_wait_p50_s\": {:.4}\n    }}",
                r.workers,
                r.wall.as_secs_f64(),
                r.completed,
                r.dropped,
                r.queue_full_rejects,
                throughput(r),
                r.latency[0],
                r.latency[1],
                r.latency[2],
                r.wait_p50,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"workload\": {{\n    \"clients\": {},\n    \"gdos\": {GDOS},\n    \"snps\": {SNPS},\n    \"job_panel\": {JOB_PANEL},\n    \"link_delay_ms\": {},\n    \"max_queue\": {},\n    \"smoke\": {}\n  }},\n  \"phases\": [\n{}\n  ],\n  \"speedup\": {:.2}\n}}\n",
        config.clients,
        config.delay_ms,
        config.max_queue,
        config.smoke,
        phase_json.join(",\n"),
        speedup,
    );
    std::fs::write(&config.out, &json).expect("writing the JSON report");
    println!("report written to {}", config.out);
    println!("speedup: {speedup:.2}x");

    let expected = config.clients as u64;
    for report in &reports {
        assert_eq!(
            report.dropped, 0,
            "{} lane(s): {} job(s) dropped",
            report.workers, report.dropped
        );
        assert_eq!(
            report.completed, expected,
            "{} lane(s): only {}/{expected} jobs completed",
            report.workers, report.completed
        );
    }
    assert!(
        speedup >= config.min_speedup,
        "worker-pool speedup {speedup:.2}x is below the required {:.2}x",
        config.min_speedup
    );
}
