//! Criterion benchmarks of collusion-tolerant evaluation — the cost of
//! the extra per-combination verifications (Table 5's runtime column at
//! sampling-friendly scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gendpr_bench::workload::paper_cohort;
use gendpr_core::collusion::{combinations, evaluation_subsets, intersect_selections};
use gendpr_core::config::{CollusionMode, FederationConfig, GwasParams};
use gendpr_core::gdo::GdoNode;
use gendpr_core::protocol::Federation;
use gendpr_genomics::genotype::GenotypeMatrix;
use gendpr_genomics::snp::SnpId;
use gendpr_stats::ld::LdMoments;
use std::hint::black_box;

fn bench_combination_generation(c: &mut Criterion) {
    c.bench_function("combinations_20_choose_10", |b| {
        b.iter(|| combinations(black_box(20), black_box(10)));
    });
    c.bench_function("evaluation_subsets_g7_all", |b| {
        b.iter(|| evaluation_subsets(black_box(7), CollusionMode::AllUpTo));
    });
}

fn bench_intersection(c: &mut Criterion) {
    let selections: Vec<Vec<SnpId>> = (0..16)
        .map(|offset| (offset..5_000u32).map(SnpId).collect())
        .collect();
    c.bench_function("intersect_16_selections_5k", |b| {
        b.iter(|| intersect_selections(black_box(&selections)));
    });
}

fn bench_collusion_modes(c: &mut Criterion) {
    let cohort = paper_cohort(600, 300);
    let params = GwasParams::secure_genome_defaults();
    let mut group = c.benchmark_group("collusion_g4_600_genomes_300_snps");
    group.sample_size(10);
    for (label, mode) in [
        ("f0", CollusionMode::None),
        ("f1", CollusionMode::Fixed(1)),
        ("f3", CollusionMode::Fixed(3)),
        ("all", CollusionMode::AllUpTo),
    ] {
        let fed = Federation::new(
            FederationConfig::new(4).with_collusion(mode),
            params,
            &cohort,
        );
        group.bench_with_input(BenchmarkId::from_parameter(label), &fed, |b, fed| {
            b.iter(|| fed.run().unwrap());
        });
    }
    group.finish();
}

fn bench_pooled_moments(c: &mut Criterion) {
    // The kernel the collusion loop hammers: pooling per-member LD
    // moments for every (pair, combination). Row-major scans recompute
    // each member's contribution once per combination; the columnar +
    // memoized path (what `GdoNode` now does, transpose included in the
    // iteration) computes each member-pair once.
    let cohort = paper_cohort(1_000, 300);
    let g = 4;
    let shards = cohort.split_case_among(g);
    let subsets = evaluation_subsets(g, CollusionMode::AllUpTo);
    let counts: Vec<Vec<u64>> = shards.iter().map(GenotypeMatrix::column_counts).collect();
    let pairs: Vec<(SnpId, SnpId)> = (0..299u32).map(|i| (SnpId(i), SnpId(i + 1))).collect();
    let mut group = c.benchmark_group("pooled_ld_moments_g4_all");
    group.sample_size(10);
    group.bench_function("row_major", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for subset in &subsets {
                for &(x, y) in &pairs {
                    let mut pooled = LdMoments::default();
                    for &m in subset {
                        pooled = pooled.merge(LdMoments::from_cached_counts(
                            &shards[m],
                            x,
                            y,
                            counts[m][x.index()],
                            counts[m][y.index()],
                        ));
                    }
                    acc ^= pooled.sum_xy;
                }
            }
            acc
        });
    });
    group.bench_function("columnar_memo", |b| {
        b.iter(|| {
            let nodes: Vec<GdoNode> = shards
                .iter()
                .enumerate()
                .map(|(id, s)| GdoNode::new(id, s.clone()))
                .collect();
            let mut acc = 0u64;
            for subset in &subsets {
                for &(x, y) in &pairs {
                    let mut pooled = LdMoments::default();
                    for &m in subset {
                        pooled = pooled.merge(LdMoments::from(nodes[m].ld_moments(x, y)));
                    }
                    acc ^= pooled.sum_xy;
                }
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_combination_generation,
    bench_intersection,
    bench_collusion_modes,
    bench_pooled_moments
);
criterion_main!(benches);
