//! Criterion benchmarks of end-to-end protocol runs — scaled-down
//! versions of the Figure 5/6 comparison suitable for repeated sampling
//! (the full-size figures come from `cargo run --bin fig5/fig6`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gendpr_bench::workload::paper_cohort;
use gendpr_core::baseline::centralized::CentralizedPipeline;
use gendpr_core::config::{FederationConfig, GwasParams};
use gendpr_core::protocol::Federation;
use gendpr_core::runtime::run_federation;
use std::hint::black_box;
use std::time::Duration;

const GENOMES: usize = 1_000;
const SNPS: usize = 500;

fn bench_centralized(c: &mut Criterion) {
    let cohort = paper_cohort(GENOMES, SNPS);
    let params = GwasParams::secure_genome_defaults();
    c.bench_function("centralized_1k_genomes_500_snps", |b| {
        b.iter(|| {
            CentralizedPipeline::new(params)
                .run(black_box(cohort.as_ref()))
                .unwrap()
        });
    });
}

fn bench_gendpr_in_process(c: &mut Criterion) {
    let cohort = paper_cohort(GENOMES, SNPS);
    let params = GwasParams::secure_genome_defaults();
    let mut group = c.benchmark_group("gendpr_in_process_1k_500");
    for gdos in [2usize, 3, 5, 7] {
        let fed = Federation::new(FederationConfig::new(gdos), params, &cohort);
        group.bench_with_input(BenchmarkId::from_parameter(gdos), &fed, |b, fed| {
            b.iter(|| fed.run().unwrap());
        });
    }
    group.finish();
}

fn bench_gendpr_threaded(c: &mut Criterion) {
    let cohort = paper_cohort(GENOMES, SNPS);
    let params = GwasParams::secure_genome_defaults();
    let mut group = c.benchmark_group("gendpr_threaded_1k_500");
    group.sample_size(10);
    for gdos in [2usize, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(gdos), &gdos, |b, &gdos| {
            b.iter(|| {
                run_federation(
                    FederationConfig::new(gdos),
                    params,
                    &cohort,
                    None,
                    Duration::from_secs(600),
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_centralized,
    bench_gendpr_in_process,
    bench_gendpr_threaded
);
criterion_main!(benches);
