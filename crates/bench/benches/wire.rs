//! Criterion micro-benchmarks of the binary wire codec and the attested
//! channel — the per-message cost GenDPR pays over raw computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gendpr_core::messages::{CountsReport, LrReport, ProtocolMessage};
use gendpr_crypto::rng::ChaChaRng;
use gendpr_fednet::wire::{from_bytes, to_bytes};
use gendpr_tee::attestation::AttestationService;
use gendpr_tee::platform::Platform;
use gendpr_tee::session::Handshake;
use std::hint::black_box;

fn bench_counts_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("counts_report");
    for snps in [1_000usize, 10_000] {
        let msg = ProtocolMessage::Counts(CountsReport {
            counts: (0..snps as u64).collect(),
            n_case: 5_000,
        });
        let bytes = to_bytes(&msg);
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", snps), &msg, |b, msg| {
            b.iter(|| to_bytes(black_box(msg)));
        });
        group.bench_with_input(BenchmarkId::new("decode", snps), &bytes, |b, bytes| {
            b.iter(|| from_bytes::<ProtocolMessage>(black_box(bytes)).unwrap());
        });
    }
    group.finish();
}

fn bench_lr_report_roundtrip(c: &mut Criterion) {
    let msg = ProtocolMessage::Lr(
        0,
        LrReport {
            individuals: 500,
            snps: 100,
            values: vec![0.125f64; 500 * 100],
        },
    );
    let bytes = to_bytes(&msg);
    let mut group = c.benchmark_group("lr_report_500x100");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode", |b| b.iter(|| to_bytes(black_box(&msg))));
    group.bench_function("decode", |b| {
        b.iter(|| from_bytes::<ProtocolMessage>(black_box(&bytes)).unwrap())
    });
    group.finish();
}

fn bench_attested_handshake(c: &mut Criterion) {
    let mut rng = ChaChaRng::from_seed_u64(3);
    let svc = AttestationService::new(&mut rng);
    let pa = Platform::new("a", &svc, &mut rng);
    let pb = Platform::new("b", &svc, &mut rng);
    let ea = pa.launch_enclave("gendpr", ());
    let eb = pb.launch_enclave("gendpr", ());
    c.bench_function("attested_handshake_pair", |b| {
        b.iter(|| {
            let ha = Handshake::start(&ea, &mut rng);
            let hb = Handshake::start(&eb, &mut rng);
            let mb = hb.message().clone();
            let ma = ha.message().clone();
            let ca = ha.complete(&mb, &eb.measurement()).unwrap();
            let cb = hb.complete(&ma, &ea.measurement()).unwrap();
            black_box((ca, cb))
        });
    });
}

fn bench_channel_message(c: &mut Criterion) {
    let mut rng = ChaChaRng::from_seed_u64(4);
    let svc = AttestationService::new(&mut rng);
    let pa = Platform::new("a", &svc, &mut rng);
    let pb = Platform::new("b", &svc, &mut rng);
    let ea = pa.launch_enclave("gendpr", ());
    let eb = pb.launch_enclave("gendpr", ());
    let ha = Handshake::start(&ea, &mut rng);
    let hb = Handshake::start(&eb, &mut rng);
    let mb = hb.message().clone();
    let ma = ha.message().clone();
    let mut ca = ha.complete(&mb, &eb.measurement()).unwrap();
    let mut cb = hb.complete(&ma, &ea.measurement()).unwrap();
    let payload = vec![0u8; 4096];
    c.bench_function("channel_send_recv_4k", |b| {
        b.iter(|| {
            let ct = ca.send(black_box(&payload), b"phase");
            cb.recv(&ct, b"phase").unwrap()
        });
    });
}

criterion_group!(
    benches,
    bench_counts_roundtrip,
    bench_lr_report_roundtrip,
    bench_attested_handshake,
    bench_channel_message
);
criterion_main!(benches);
