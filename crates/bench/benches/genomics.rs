//! Criterion benchmarks of the genome substrate: synthetic generation,
//! bit-packed matrix kernels and the signed variant-file codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gendpr_genomics::columnar::ColumnarGenotypes;
use gendpr_genomics::genotype::GenotypeMatrix;
use gendpr_genomics::snp::SnpId;
use gendpr_genomics::synth::SyntheticCohort;
use gendpr_genomics::vcf;
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthetic_generation");
    group.sample_size(10);
    for (n, l) in [(500usize, 500usize), (2_000, 1_000)] {
        group.throughput(Throughput::Elements((n * l) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{l}")),
            &(n, l),
            |b, &(n, l)| {
                b.iter(|| {
                    SyntheticCohort::builder()
                        .snps(l)
                        .case_individuals(n)
                        .reference_individuals(8)
                        .seed(1)
                        .build()
                });
            },
        );
    }
    group.finish();
}

fn bench_matrix_kernels(c: &mut Criterion) {
    let cohort = SyntheticCohort::builder()
        .snps(2_000)
        .case_individuals(4_000)
        .reference_individuals(8)
        .seed(2)
        .build();
    let m = cohort.case().clone();
    c.bench_function("pair_count_4k_individuals", |b| {
        b.iter(|| m.pair_count(black_box(SnpId(3)), black_box(SnpId(1_500))));
    });
    // The same joint count off the SNP-major transpose: a contiguous
    // popcount(AND) sweep instead of one strided word per individual.
    let col = ColumnarGenotypes::from_matrix(&m);
    c.bench_function("pair_count_4k_individuals_columnar", |b| {
        b.iter(|| col.pair_count(black_box(SnpId(3)), black_box(SnpId(1_500))));
    });
    c.bench_function("columnar_transpose_4k_x_2k", |b| {
        b.iter(|| ColumnarGenotypes::from_matrix(black_box(&m)));
    });
    let rest: Vec<SnpId> = (1..64u32).map(SnpId).collect();
    c.bench_function("columnar_batched_pair_counts_63", |b| {
        b.iter(|| col.pair_counts(black_box(SnpId(0)), black_box(&rest)));
    });
    c.bench_function("column_counts_4k_x_2k", |b| {
        b.iter(|| black_box(&m).column_counts());
    });
    c.bench_function("row_range_shard_quarter", |b| {
        b.iter(|| black_box(&m).row_range(0, 1_000));
    });
    let shards: Vec<GenotypeMatrix> = (0..4).map(|i| m.row_range(i * 1_000, 1_000)).collect();
    c.bench_function("stack_4_shards", |b| {
        b.iter(|| {
            let mut acc = shards[0].clone();
            for s in &shards[1..] {
                acc = acc.stack(s).unwrap();
            }
            acc
        });
    });
}

fn bench_vcf_codec(c: &mut Criterion) {
    let cohort = SyntheticCohort::builder()
        .snps(500)
        .case_individuals(500)
        .reference_individuals(8)
        .seed(3)
        .build();
    let text = vcf::write_signed(cohort.panel(), cohort.case(), b"key");
    let mut group = c.benchmark_group("vcf_500x500");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("write_signed", |b| {
        b.iter(|| vcf::write_signed(cohort.panel(), cohort.case(), b"key"));
    });
    group.bench_function("read_signed", |b| {
        b.iter(|| vcf::read_signed(black_box(&text), b"key").unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_matrix_kernels,
    bench_vcf_codec
);
criterion_main!(benches);
