//! Criterion micro-benchmarks of the from-scratch crypto primitives that
//! every GenDPR message passes through.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gendpr_crypto::aead::ChaCha20Poly1305;
use gendpr_crypto::hmac::HmacSha256;
use gendpr_crypto::rng::ChaChaRng;
use gendpr_crypto::{sha256, x25519};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65_536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256::digest(black_box(data)));
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let data = vec![0u8; 1024];
    c.bench_function("hmac_sha256_1k", |b| {
        b.iter(|| HmacSha256::mac(black_box(b"key"), black_box(&data)));
    });
}

fn bench_aead(c: &mut Criterion) {
    let cipher = ChaCha20Poly1305::new(&[7u8; 32]);
    let mut group = c.benchmark_group("chacha20poly1305");
    for size in [256usize, 4096, 65_536] {
        let plaintext = vec![0x55u8; size];
        let nonce = [1u8; 12];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(
            BenchmarkId::new("seal", size),
            &plaintext,
            |b, plaintext| {
                b.iter(|| cipher.seal(black_box(&nonce), black_box(plaintext), b"aad"));
            },
        );
        let sealed = cipher.seal(&nonce, &plaintext, b"aad");
        group.bench_with_input(BenchmarkId::new("open", size), &sealed, |b, sealed| {
            b.iter(|| {
                cipher
                    .open(black_box(&nonce), black_box(sealed), b"aad")
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_x25519(c: &mut Criterion) {
    let mut rng = ChaChaRng::from_seed_u64(1);
    let sk_a = x25519::clamp_scalar(rng.gen_key());
    let pk_b = x25519::public_key(&x25519::clamp_scalar(rng.gen_key()));
    c.bench_function("x25519_diffie_hellman", |b| {
        b.iter(|| x25519::diffie_hellman(black_box(&sk_a), black_box(&pk_b)).unwrap());
    });
}

fn bench_rng(c: &mut Criterion) {
    let mut rng = ChaChaRng::from_seed_u64(2);
    let mut buf = vec![0u8; 4096];
    c.bench_function("chacha_rng_fill_4k", |b| {
        b.iter(|| rng.fill_bytes(black_box(&mut buf)));
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_hmac,
    bench_aead,
    bench_x25519,
    bench_rng
);
criterion_main!(benches);
