//! Criterion micro-benchmarks of the statistical kernels behind the three
//! GenDPR phases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gendpr_bench::workload::paper_cohort;
use gendpr_genomics::snp::SnpId;
use gendpr_stats::ld::LdMoments;
use gendpr_stats::lr::{select_safe_subset, LrMatrix, LrTestParams};
use gendpr_stats::special::{chi2_sf, normal_quantile};
use std::hint::black_box;

fn bench_column_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("column_counts");
    for (n, l) in [(1_000usize, 1_000usize), (4_000, 2_500)] {
        let cohort = paper_cohort(n, l);
        let m = cohort.case().clone();
        group.throughput(Throughput::Elements((n * l) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{l}")),
            &m,
            |b, m| b.iter(|| black_box(m.column_counts())),
        );
    }
    group.finish();
}

fn bench_ld_moments(c: &mut Criterion) {
    let cohort = paper_cohort(4_000, 500);
    let m = cohort.case().clone();
    c.bench_function("ld_moments_pair_4k_individuals", |b| {
        b.iter(|| LdMoments::from_matrix(black_box(&m), SnpId(10), SnpId(11)));
    });
}

fn bench_special_functions(c: &mut Criterion) {
    c.bench_function("chi2_sf_df1", |b| {
        b.iter(|| chi2_sf(black_box(7.3), 1));
    });
    c.bench_function("normal_quantile", |b| {
        b.iter(|| normal_quantile(black_box(0.937)));
    });
}

fn bench_lr_selection(c: &mut Criterion) {
    let cohort = paper_cohort(1_000, 200);
    let ids: Vec<SnpId> = (0..200u32).map(SnpId).collect();
    let n_case = cohort.case().individuals() as f64;
    let n_ref = cohort.reference().individuals() as f64;
    let case_freqs: Vec<f64> = cohort
        .case()
        .column_counts()
        .iter()
        .map(|&x| x as f64 / n_case)
        .collect();
    let ref_freqs: Vec<f64> = cohort
        .reference()
        .column_counts()
        .iter()
        .map(|&x| x as f64 / n_ref)
        .collect();
    let case_m = LrMatrix::from_genotypes(cohort.case(), &ids, &case_freqs, &ref_freqs);
    let null_m = LrMatrix::from_genotypes(cohort.reference(), &ids, &case_freqs, &ref_freqs);
    let order: Vec<usize> = (0..200).collect();
    let params = LrTestParams::secure_genome_defaults();
    c.bench_function("lr_select_200snps_1k_cases", |b| {
        b.iter(|| {
            select_safe_subset(
                black_box(&case_m),
                black_box(&null_m),
                black_box(&order),
                &params,
            )
        });
    });
}

fn bench_oblivious_kernels(c: &mut Criterion) {
    use gendpr_stats::oblivious::{bitonic_sort, select_safe_subset_oblivious};
    let mut data: Vec<f64> = (0..1024)
        .map(|i| ((i * 2654435761u64 as usize) % 977) as f64)
        .collect();
    c.bench_function("bitonic_sort_1024", |b| {
        b.iter(|| {
            let mut copy = data.clone();
            bitonic_sort(black_box(&mut copy));
            copy
        });
    });
    data.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let cohort = paper_cohort(400, 60);
    let ids: Vec<SnpId> = (0..60u32).map(SnpId).collect();
    let n = cohort.case().individuals() as f64;
    let cf: Vec<f64> = cohort
        .case()
        .column_counts()
        .iter()
        .map(|&x| x as f64 / n)
        .collect();
    let rf: Vec<f64> = cohort
        .reference()
        .column_counts()
        .iter()
        .map(|&x| x as f64 / cohort.reference().individuals() as f64)
        .collect();
    let case_m = LrMatrix::from_genotypes(cohort.case(), &ids, &cf, &rf);
    let null_m = LrMatrix::from_genotypes(cohort.reference(), &ids, &cf, &rf);
    let order: Vec<usize> = (0..60).collect();
    let params = LrTestParams::secure_genome_defaults();
    c.bench_function("lr_select_oblivious_60snps_400", |b| {
        b.iter(|| select_safe_subset_oblivious(black_box(&case_m), &null_m, &order, &params));
    });
    c.bench_function("lr_select_fast_60snps_400", |b| {
        b.iter(|| select_safe_subset(black_box(&case_m), &null_m, &order, &params));
    });
}

fn bench_lr_matrix_build(c: &mut Criterion) {
    let cohort = paper_cohort(2_000, 300);
    let ids: Vec<SnpId> = (0..300u32).map(SnpId).collect();
    let case_freqs = vec![0.3; 300];
    let ref_freqs = vec![0.25; 300];
    c.bench_function("lr_matrix_build_2k_x_300", |b| {
        b.iter(|| {
            LrMatrix::from_genotypes(black_box(cohort.case()), &ids, &case_freqs, &ref_freqs)
        });
    });
}

criterion_group!(
    benches,
    bench_column_counts,
    bench_ld_moments,
    bench_special_functions,
    bench_lr_selection,
    bench_oblivious_kernels,
    bench_lr_matrix_build
);
criterion_main!(benches);
