//! Criterion benchmarks of the three GenDPR phases in isolation
//! (leader-side decision logic over pre-computed aggregates).

use criterion::{criterion_group, criterion_main, Criterion};
use gendpr_bench::workload::paper_cohort;
use gendpr_core::messages::CountsReport;
use gendpr_core::phases::ld::run_ld_scan;
use gendpr_core::phases::lrtest::run_lr_test;
use gendpr_core::phases::maf::run_maf;
use gendpr_genomics::columnar::ColumnarGenotypes;
use gendpr_genomics::snp::SnpId;
use gendpr_stats::ld::LdMoments;
use gendpr_stats::lr::{LrMatrix, LrTestParams};
use gendpr_stats::ranking::rank_by_association;
use std::hint::black_box;

fn bench_maf_phase(c: &mut Criterion) {
    let cohort = paper_cohort(2_000, 5_000);
    let shards = cohort.split_case_among(3);
    let reports: Vec<CountsReport> = shards
        .iter()
        .map(|s| CountsReport {
            counts: s.column_counts(),
            n_case: s.individuals() as u64,
        })
        .collect();
    let ref_counts = cohort.reference().column_counts();
    let n_ref = cohort.reference().individuals() as u64;
    c.bench_function("maf_phase_3gdos_5k_snps", |b| {
        b.iter(|| run_maf(black_box(&reports), ref_counts.clone(), n_ref, 0.05));
    });
}

fn bench_ld_phase(c: &mut Criterion) {
    let cohort = paper_cohort(2_000, 1_000);
    let case = cohort.case().clone();
    let reference = cohort.reference().clone();
    let maf = run_maf(
        &[CountsReport {
            counts: case.column_counts(),
            n_case: case.individuals() as u64,
        }],
        reference.column_counts(),
        reference.individuals() as u64,
        0.05,
    );
    let all_ids: Vec<SnpId> = (0..1_000u32).map(SnpId).collect();
    let ranks = rank_by_association(
        &all_ids,
        &maf.case_counts,
        maf.n_case,
        &maf.ref_counts,
        maf.n_ref,
    );
    c.bench_function("ld_scan_1k_snps_4k_individuals", |b| {
        b.iter(|| {
            run_ld_scan(
                black_box(&maf.retained),
                |x, y| {
                    LdMoments::from_matrix(&case, x, y)
                        .merge(LdMoments::from_matrix(&reference, x, y))
                },
                |s| ranks[s.index()].p_value,
                1e-5,
            )
        });
    });
    // The same scan off SNP-major transposes and cached marginal counts —
    // the kernels the protocol driver now uses.
    let case_col = ColumnarGenotypes::from_matrix(&case);
    let ref_col = ColumnarGenotypes::from_matrix(&reference);
    let n_case = case.individuals() as u64;
    let n_ref = reference.individuals() as u64;
    c.bench_function("ld_scan_1k_snps_4k_individuals_columnar", |b| {
        b.iter(|| {
            run_ld_scan(
                black_box(&maf.retained),
                |x, y| {
                    LdMoments::from_counts(
                        maf.case_counts[x.index()],
                        maf.case_counts[y.index()],
                        case_col.pair_count(x, y),
                        n_case,
                    )
                    .merge(LdMoments::from_counts(
                        maf.ref_counts[x.index()],
                        maf.ref_counts[y.index()],
                        ref_col.pair_count(x, y),
                        n_ref,
                    ))
                },
                |s| ranks[s.index()].p_value,
                1e-5,
            )
        });
    });
}

fn bench_lr_phase(c: &mut Criterion) {
    let cohort = paper_cohort(2_000, 400);
    let candidates: Vec<SnpId> = (0..400u32).map(SnpId).collect();
    let n_case = cohort.case().individuals() as u64;
    let n_ref = cohort.reference().individuals() as u64;
    let case_counts = cohort.case().column_counts();
    let ref_counts = cohort.reference().column_counts();
    let case_freqs: Vec<f64> = case_counts
        .iter()
        .map(|&x| x as f64 / n_case as f64)
        .collect();
    let ref_freqs: Vec<f64> = ref_counts
        .iter()
        .map(|&x| x as f64 / n_ref as f64)
        .collect();
    let case_m = LrMatrix::from_genotypes(cohort.case(), &candidates, &case_freqs, &ref_freqs);
    let null_m = LrMatrix::from_genotypes(cohort.reference(), &candidates, &case_freqs, &ref_freqs);
    let ranks = rank_by_association(&candidates, &case_counts, n_case, &ref_counts, n_ref);
    let params = LrTestParams::secure_genome_defaults();
    c.bench_function("lr_phase_400_candidates_2k_cases", |b| {
        b.iter(|| {
            run_lr_test(
                black_box(&candidates),
                black_box(&case_m),
                black_box(&null_m),
                &ranks,
                &params,
            )
        });
    });
}

criterion_group!(benches, bench_maf_phase, bench_ld_phase, bench_lr_phase);
criterion_main!(benches);
