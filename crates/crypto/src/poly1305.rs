//! The Poly1305 one-time authenticator (RFC 8439 §2.5).
//!
//! Implemented with 26-bit limbs and 64-bit accumulators (the widely used
//! "donna" radix-2^26 schedule), which keeps every intermediate product
//! comfortably inside `u64`.

/// Key length in bytes (16-byte `r` part plus 16-byte `s` part).
pub const KEY_LEN: usize = 32;
/// Tag length in bytes.
pub const TAG_LEN: usize = 16;
/// Internal block size in bytes.
pub const BLOCK_LEN: usize = 16;

const MASK26: u64 = 0x3ff_ffff;

/// Incremental Poly1305 state.
///
/// A Poly1305 key must never be reused across messages; the AEAD in
/// [`crate::aead`] derives a fresh one per nonce.
#[derive(Debug, Clone)]
pub struct Poly1305 {
    r: [u64; 5],
    s: [u64; 4],
    h: [u64; 5],
    buffer: [u8; BLOCK_LEN],
    buffered: usize,
}

impl Poly1305 {
    /// Initializes the authenticator with a 32-byte one-time key.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let le32 = |b: &[u8]| u64::from(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
        // Clamp r per the RFC.
        let r0 = le32(&key[0..4]) & 0x3ff_ffff;
        let r1 = (le32(&key[3..7]) >> 2) & 0x3ff_ff03;
        let r2 = (le32(&key[6..10]) >> 4) & 0x3ff_c0ff;
        let r3 = (le32(&key[9..13]) >> 6) & 0x3f0_3fff;
        let r4 = (le32(&key[12..16]) >> 8) & 0x00f_ffff;
        let s = [
            le32(&key[16..20]),
            le32(&key[20..24]),
            le32(&key[24..28]),
            le32(&key[28..32]),
        ];
        Self {
            r: [r0, r1, r2, r3, r4],
            s,
            h: [0; 5],
            buffer: [0; BLOCK_LEN],
            buffered: 0,
        }
    }

    fn process_block(&mut self, block: &[u8; BLOCK_LEN], hibit: u64) {
        let le32 = |b: &[u8]| u64::from(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
        let [r0, r1, r2, r3, r4] = self.r;
        let (s1, s2, s3, s4) = (r1 * 5, r2 * 5, r3 * 5, r4 * 5);

        self.h[0] += le32(&block[0..4]) & MASK26;
        self.h[1] += (le32(&block[3..7]) >> 2) & MASK26;
        self.h[2] += (le32(&block[6..10]) >> 4) & MASK26;
        self.h[3] += (le32(&block[9..13]) >> 6) & MASK26;
        self.h[4] += (le32(&block[12..16]) >> 8) | hibit;

        let [h0, h1, h2, h3, h4] = self.h;
        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        let mut c = d0 >> 26;
        self.h[0] = d0 & MASK26;
        let d1 = d1 + c;
        c = d1 >> 26;
        self.h[1] = d1 & MASK26;
        let d2 = d2 + c;
        c = d2 >> 26;
        self.h[2] = d2 & MASK26;
        let d3 = d3 + c;
        c = d3 >> 26;
        self.h[3] = d3 & MASK26;
        let d4 = d4 + c;
        c = d4 >> 26;
        self.h[4] = d4 & MASK26;
        self.h[0] += c * 5;
        c = self.h[0] >> 26;
        self.h[0] &= MASK26;
        self.h[1] += c;
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buffered > 0 {
            let take = (BLOCK_LEN - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == BLOCK_LEN {
                let block = self.buffer;
                self.process_block(&block, 1 << 24);
                self.buffered = 0;
            }
        }
        while data.len() >= BLOCK_LEN {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(&data[..BLOCK_LEN]);
            self.process_block(&block, 1 << 24);
            data = &data[BLOCK_LEN..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Consumes the state and returns the 16-byte tag.
    #[must_use]
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buffered > 0 {
            let mut block = [0u8; BLOCK_LEN];
            block[..self.buffered].copy_from_slice(&self.buffer[..self.buffered]);
            block[self.buffered] = 1;
            self.process_block(&block, 0);
        }
        // Fully reduce h modulo 2^130 - 5.
        let [mut h0, mut h1, mut h2, mut h3, mut h4] = self.h;
        let mut c = h1 >> 26;
        h1 &= MASK26;
        h2 += c;
        c = h2 >> 26;
        h2 &= MASK26;
        h3 += c;
        c = h3 >> 26;
        h3 &= MASK26;
        h4 += c;
        c = h4 >> 26;
        h4 &= MASK26;
        h0 += c * 5;
        c = h0 >> 26;
        h0 &= MASK26;
        h1 += c;

        // Compute h + -p = h - (2^130 - 5) and select it if non-negative.
        let mut g0 = h0.wrapping_add(5);
        c = g0 >> 26;
        g0 &= MASK26;
        let mut g1 = h1.wrapping_add(c);
        c = g1 >> 26;
        g1 &= MASK26;
        let mut g2 = h2.wrapping_add(c);
        c = g2 >> 26;
        g2 &= MASK26;
        let mut g3 = h3.wrapping_add(c);
        c = g3 >> 26;
        g3 &= MASK26;
        let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

        // If g4's sign bit (bit 63) is clear, h >= p and we take g.
        let take_g = ((g4 >> 63) ^ 1) & 1; // 1 => take g
        let mask = take_g.wrapping_neg();
        h0 = (g0 & mask) | (h0 & !mask);
        h1 = (g1 & mask) | (h1 & !mask);
        h2 = (g2 & mask) | (h2 & !mask);
        h3 = (g3 & mask) | (h3 & !mask);
        h4 = ((g4 & MASK26) & mask) | (h4 & !mask);

        // Convert to four 32-bit little-endian words.
        let f0 = (h0 | (h1 << 26)) & 0xffff_ffff;
        let f1 = ((h1 >> 6) | (h2 << 20)) & 0xffff_ffff;
        let f2 = ((h2 >> 12) | (h3 << 14)) & 0xffff_ffff;
        let f3 = ((h3 >> 18) | (h4 << 8)) & 0xffff_ffff;

        // Add s modulo 2^128.
        let mut acc = f0 + self.s[0];
        let w0 = acc as u32;
        acc = (acc >> 32) + f1 + self.s[1];
        let w1 = acc as u32;
        acc = (acc >> 32) + f2 + self.s[2];
        let w2 = acc as u32;
        acc = (acc >> 32) + f3 + self.s[3];
        let w3 = acc as u32;

        let mut tag = [0u8; TAG_LEN];
        tag[0..4].copy_from_slice(&w0.to_le_bytes());
        tag[4..8].copy_from_slice(&w1.to_le_bytes());
        tag[8..12].copy_from_slice(&w2.to_le_bytes());
        tag[12..16].copy_from_slice(&w3.to_le_bytes());
        tag
    }

    /// One-shot tag computation.
    #[must_use]
    pub fn mac(key: &[u8; KEY_LEN], data: &[u8]) -> [u8; TAG_LEN] {
        let mut p = Self::new(key);
        p.update(data);
        p.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.5.2.
    #[test]
    fn rfc8439_tag() {
        let key_bytes = unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
        let mut key = [0u8; KEY_LEN];
        key.copy_from_slice(&key_bytes);
        let tag = Poly1305::mac(&key, b"Cryptographic Forum Research Group");
        assert_eq!(hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    // RFC 8439 Appendix A.3 vector #1: zero key, zero message.
    #[test]
    fn zero_key_zero_message() {
        let key = [0u8; KEY_LEN];
        let tag = Poly1305::mac(&key, &[0u8; 64]);
        assert_eq!(hex(&tag), "00000000000000000000000000000000");
    }

    // RFC 8439 Appendix A.3 vector #2: r = 0, s = secret, text message.
    #[test]
    fn r_zero_tag_equals_s() {
        let mut key = [0u8; KEY_LEN];
        key[16..].copy_from_slice(&unhex("36e5f6b5c5e06070f0efca96227a863e"));
        let msg = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to";
        let tag = Poly1305::mac(&key, msg);
        assert_eq!(hex(&tag), "36e5f6b5c5e06070f0efca96227a863e");
    }

    // RFC 8439 Appendix A.3 vector #11-style edge: tests the g-selection path
    // where h is exactly p - 1 or wraps. Vector #5: 0xffff.. block with r = 2.
    #[test]
    fn reduction_edge_case() {
        let mut key = [0u8; KEY_LEN];
        key[0] = 2;
        let msg = unhex("ffffffffffffffffffffffffffffffff");
        let tag = Poly1305::mac(&key, &msg);
        assert_eq!(hex(&tag), "03000000000000000000000000000000");
    }

    // RFC 8439 A.3 vector #6: s has high bit pattern, message = -1.
    #[test]
    fn s_addition_carry() {
        let mut key = [0u8; KEY_LEN];
        key[0] = 2;
        key[16..].copy_from_slice(&unhex("ffffffffffffffffffffffffffffffff"));
        let msg = unhex("02000000000000000000000000000000");
        let tag = Poly1305::mac(&key, &msg);
        assert_eq!(hex(&tag), "03000000000000000000000000000000");
    }

    // RFC 8439 A.3 vector #7: tests carry propagation in full reduction.
    #[test]
    fn carry_propagation() {
        let mut key = [0u8; KEY_LEN];
        key[0] = 1;
        let msg = unhex(
            "ffffffffffffffffffffffffffffffff\
             f0ffffffffffffffffffffffffffffff\
             11000000000000000000000000000000",
        );
        let tag = Poly1305::mac(&key, &msg);
        assert_eq!(hex(&tag), "05000000000000000000000000000000");
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = (i * 7 + 1) as u8;
        }
        let msg: Vec<u8> = (0..255u8).collect();
        for chunk in [1usize, 5, 15, 16, 17, 100] {
            let mut p = Poly1305::new(&key);
            for piece in msg.chunks(chunk) {
                p.update(piece);
            }
            assert_eq!(p.finalize(), Poly1305::mac(&key, &msg), "chunk {chunk}");
        }
    }
}
