//! Timing-safe comparison helpers.
//!
//! Branching on secret data leaks it through execution time. Every tag or
//! MAC comparison in this workspace goes through [`ct_eq`], which inspects
//! all bytes regardless of where the first mismatch occurs.

/// Compares two byte slices in constant time with respect to their contents.
///
/// Returns `false` immediately if the lengths differ (lengths are public).
///
/// # Example
///
/// ```
/// use gendpr_crypto::constant_time::ct_eq;
/// assert!(ct_eq(b"tag", b"tag"));
/// assert!(!ct_eq(b"tag", b"tad"));
/// assert!(!ct_eq(b"tag", b"tags"));
/// ```
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Collapse to 0/1 without a data-dependent branch.
    diff == 0
}

/// Selects `a` if `choice` is 1 and `b` if `choice` is 0, without branching.
///
/// # Panics
///
/// Panics if `choice` is neither 0 nor 1 (a caller bug, not secret data).
#[must_use]
pub fn ct_select_u64(choice: u8, a: u64, b: u64) -> u64 {
    assert!(choice <= 1, "choice must be 0 or 1");
    let mask = (choice as u64).wrapping_neg(); // 0x00..00 or 0xff..ff
    (a & mask) | (b & !mask)
}

/// Conditionally swaps two `u64` slices in constant time.
///
/// Used by the X25519 Montgomery ladder, where the swap decision is a
/// secret key bit.
///
/// # Panics
///
/// Panics if the slices have different lengths or `choice > 1`.
pub fn ct_swap_u64(choice: u8, a: &mut [u64], b: &mut [u64]) {
    assert!(choice <= 1, "choice must be 0 or 1");
    assert_eq!(a.len(), b.len(), "slices must have equal length");
    let mask = (choice as u64).wrapping_neg();
    for (x, y) in a.iter_mut().zip(b.iter_mut()) {
        let t = mask & (*x ^ *y);
        *x ^= t;
        *y ^= t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_matches_std_eq() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"", b""),
            (b"a", b"a"),
            (b"a", b"b"),
            (b"abc", b"abd"),
            (b"abc", b"abcd"),
            (b"\x00\x00", b"\x00\x00"),
        ];
        for (a, b) in cases {
            assert_eq!(ct_eq(a, b), a == b, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn select_picks_correct_operand() {
        assert_eq!(ct_select_u64(1, 5, 9), 5);
        assert_eq!(ct_select_u64(0, 5, 9), 9);
    }

    #[test]
    fn swap_swaps_only_when_asked() {
        let mut a = [1u64, 2, 3];
        let mut b = [9u64, 8, 7];
        ct_swap_u64(0, &mut a, &mut b);
        assert_eq!(a, [1, 2, 3]);
        ct_swap_u64(1, &mut a, &mut b);
        assert_eq!(a, [9, 8, 7]);
        assert_eq!(b, [1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "choice must be 0 or 1")]
    fn swap_rejects_bad_choice() {
        let mut a = [0u64];
        let mut b = [0u64];
        ct_swap_u64(2, &mut a, &mut b);
    }
}
