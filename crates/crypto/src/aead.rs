//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//!
//! This is the cipher every GenDPR message travels under: allele-count
//! vectors, LD moments and LR matrices are sealed with a session key bound
//! to the attested enclave pair, with the protocol phase as associated data.

use crate::chacha20::{self, NONCE_LEN};
use crate::constant_time::ct_eq;
use crate::poly1305::{Poly1305, TAG_LEN};
use crate::CryptoError;

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Total ciphertext expansion: the appended Poly1305 tag.
pub const OVERHEAD: usize = TAG_LEN;

/// A ChaCha20-Poly1305 AEAD cipher keyed once and used for many messages
/// (with distinct nonces).
///
/// # Example
///
/// ```
/// use gendpr_crypto::aead::ChaCha20Poly1305;
///
/// let cipher = ChaCha20Poly1305::new(&[1u8; 32]);
/// let ct = cipher.seal(&[0u8; 12], b"secret", b"header");
/// assert_eq!(cipher.open(&[0u8; 12], &ct, b"header").unwrap(), b"secret");
/// assert!(cipher.open(&[0u8; 12], &ct, b"tampered").is_err());
/// ```
#[derive(Clone)]
pub struct ChaCha20Poly1305 {
    key: [u8; KEY_LEN],
}

impl std::fmt::Debug for ChaCha20Poly1305 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("ChaCha20Poly1305").finish_non_exhaustive()
    }
}

impl ChaCha20Poly1305 {
    /// Creates a cipher from a 32-byte key.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        Self { key: *key }
    }

    fn poly_key(&self, nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
        let block = chacha20::block(&self.key, 0, nonce);
        let mut pk = [0u8; 32];
        pk.copy_from_slice(&block[..32]);
        pk
    }

    fn compute_tag(poly_key: &[u8; 32], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let mut mac = Poly1305::new(poly_key);
        mac.update(aad);
        mac.update(&zero_pad(aad.len()));
        mac.update(ciphertext);
        mac.update(&zero_pad(ciphertext.len()));
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(&(ciphertext.len() as u64).to_le_bytes());
        mac.finalize()
    }

    /// Encrypts `plaintext` with `aad` as associated data, returning
    /// `ciphertext || tag`.
    #[must_use]
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let mut out = chacha20::encrypt(&self.key, nonce, 1, plaintext);
        let tag = Self::compute_tag(&self.poly_key(nonce), aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypts and verifies `sealed` (as produced by [`Self::seal`]).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError`] if the input is shorter than a tag or the tag
    /// does not verify (wrong key, nonce, AAD or modified ciphertext).
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        sealed: &[u8],
        aad: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expected = Self::compute_tag(&self.poly_key(nonce), aad, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError);
        }
        Ok(chacha20::encrypt(&self.key, nonce, 1, ciphertext))
    }
}

fn zero_pad(len: usize) -> Vec<u8> {
    vec![0u8; (16 - len % 16) % 16]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.8.2 AEAD test vector.
    #[test]
    fn rfc8439_aead_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = 0x80 + i as u8;
        }
        let nonce: [u8; 12] = [
            0x07, 0, 0, 0, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47,
        ];
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could \
offer you only one tip for the future, sunscreen would be it.";
        let cipher = ChaCha20Poly1305::new(&key);
        let sealed = cipher.seal(&nonce, plaintext, &aad);
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        assert_eq!(
            hex(ct),
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
             3ff4def08e4b7a9de576d26586cec64b6116"
        );
        assert_eq!(hex(tag), "1ae10b594f09e26a7e902ecbd0600691");
        let opened = cipher.open(&nonce, &sealed, &aad).unwrap();
        assert_eq!(opened, plaintext);
    }

    #[test]
    fn tamper_detection_every_byte() {
        let cipher = ChaCha20Poly1305::new(&[9u8; 32]);
        let nonce = [1u8; 12];
        let sealed = cipher.seal(&nonce, b"counts: [1, 2, 3]", b"phase1");
        for i in 0..sealed.len() {
            let mut corrupted = sealed.clone();
            corrupted[i] ^= 0x01;
            assert!(
                cipher.open(&nonce, &corrupted, b"phase1").is_err(),
                "bit flip at byte {i} must be detected"
            );
        }
    }

    #[test]
    fn wrong_nonce_key_or_aad_fails() {
        let cipher = ChaCha20Poly1305::new(&[9u8; 32]);
        let sealed = cipher.seal(&[1u8; 12], b"data", b"aad");
        assert!(cipher.open(&[2u8; 12], &sealed, b"aad").is_err());
        assert!(cipher.open(&[1u8; 12], &sealed, b"dad").is_err());
        let other = ChaCha20Poly1305::new(&[8u8; 32]);
        assert!(other.open(&[1u8; 12], &sealed, b"aad").is_err());
    }

    #[test]
    fn empty_plaintext_and_aad() {
        let cipher = ChaCha20Poly1305::new(&[3u8; 32]);
        let sealed = cipher.seal(&[0u8; 12], b"", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(cipher.open(&[0u8; 12], &sealed, b"").unwrap(), b"");
    }

    #[test]
    fn truncated_input_rejected() {
        let cipher = ChaCha20Poly1305::new(&[3u8; 32]);
        assert_eq!(cipher.open(&[0u8; 12], &[0u8; 15], b""), Err(CryptoError));
    }

    #[test]
    fn overhead_is_exactly_tag_len() {
        let cipher = ChaCha20Poly1305::new(&[3u8; 32]);
        for len in [0usize, 1, 15, 16, 17, 1000] {
            let sealed = cipher.seal(&[0u8; 12], &vec![0u8; len], b"");
            assert_eq!(sealed.len(), len + OVERHEAD);
        }
    }

    #[test]
    fn debug_does_not_leak_key() {
        let cipher = ChaCha20Poly1305::new(&[0xaau8; 32]);
        let s = format!("{cipher:?}");
        assert!(!s.contains("aa"), "Debug output must not contain key bytes");
    }
}
