//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! Used for attestation quotes (the simulated attestation service signs
//! enclave reports with an HMAC root key) and for signing VCF-like genome
//! files whose authenticity enclaves verify before use.

use crate::constant_time::ct_eq;
use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Incremental HMAC-SHA-256 computation.
///
/// # Example
///
/// ```
/// use gendpr_crypto::hmac::HmacSha256;
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"The quick brown fox jumps over the lazy dog");
/// let tag = mac.finalize();
/// assert!(HmacSha256::verify(b"key", b"The quick brown fox jumps over the lazy dog", &tag));
/// ```
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC context keyed with `key` (any length).
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            block_key[..DIGEST_LEN].copy_from_slice(&crate::sha256::digest(key));
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = block_key[i] ^ 0x36;
            opad[i] = block_key[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        Self {
            inner,
            outer_key: opad,
        }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Returns the 32-byte authentication tag.
    #[must_use]
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot tag computation.
    #[must_use]
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = Self::new(key);
        h.update(data);
        h.finalize()
    }

    /// Verifies `tag` against `data` under `key` in constant time.
    #[must_use]
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        ct_eq(&Self::mac(key, data), tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2_short_key() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_binary() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = HmacSha256::mac(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = HmacSha256::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_rejects_wrong_tag() {
        let mut tag = HmacSha256::mac(b"k", b"m");
        assert!(HmacSha256::verify(b"k", b"m", &tag));
        tag[0] ^= 1;
        assert!(!HmacSha256::verify(b"k", b"m", &tag));
        assert!(!HmacSha256::verify(b"k", b"m", &tag[..31]));
        assert!(!HmacSha256::verify(b"other", b"m", &tag));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut mac = HmacSha256::new(b"key");
        mac.update(b"part one ");
        mac.update(b"part two");
        assert_eq!(
            mac.finalize(),
            HmacSha256::mac(b"key", b"part one part two")
        );
    }
}
