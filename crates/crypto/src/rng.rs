//! Deterministic ChaCha20-based random generator.
//!
//! Every source of randomness in the GenDPR workspace — leader-election
//! nonces, ephemeral X25519 keys, synthetic cohort generation — draws from a
//! [`ChaChaRng`] so that whole experiments are reproducible from a single
//! seed. The generator runs ChaCha20 in counter mode over a zero message,
//! i.e. it emits the raw keystream, which is indistinguishable from random
//! under the same assumption the cipher itself relies on.

use crate::chacha20::{self, BLOCK_LEN, KEY_LEN, NONCE_LEN};

/// A seedable, deterministic cryptographic random generator.
///
/// # Example
///
/// ```
/// use gendpr_crypto::rng::ChaChaRng;
///
/// let mut a = ChaChaRng::from_seed_u64(42);
/// let mut b = ChaChaRng::from_seed_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone)]
pub struct ChaChaRng {
    key: [u8; KEY_LEN],
    counter: u32,
    block: [u8; BLOCK_LEN],
    offset: usize,
}

impl std::fmt::Debug for ChaChaRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaChaRng")
            .field("counter", &self.counter)
            .finish_non_exhaustive()
    }
}

impl ChaChaRng {
    /// Creates a generator from a full 32-byte seed.
    #[must_use]
    pub fn from_seed(seed: [u8; KEY_LEN]) -> Self {
        Self {
            key: seed,
            counter: 0,
            block: [0; BLOCK_LEN],
            offset: BLOCK_LEN,
        }
    }

    /// Creates a generator from a 64-bit seed (expanded via SHA-256).
    #[must_use]
    pub fn from_seed_u64(seed: u64) -> Self {
        let mut material = *b"gendpr/rng/seed/........        ";
        material[16..24].copy_from_slice(&seed.to_le_bytes());
        Self::from_seed(crate::sha256::digest(&material))
    }

    /// Derives an independent child generator labeled by `label`.
    ///
    /// Useful for giving each GDO / phase its own stream so that adding a
    /// consumer does not perturb the draws of another.
    #[must_use]
    pub fn fork(&mut self, label: &str) -> Self {
        let mut seed_input = Vec::with_capacity(KEY_LEN + label.len() + 8);
        let mut fresh = [0u8; 32];
        self.fill_bytes(&mut fresh);
        seed_input.extend_from_slice(&fresh);
        seed_input.extend_from_slice(label.as_bytes());
        Self::from_seed(crate::sha256::digest(&seed_input))
    }

    fn refill(&mut self) {
        let nonce = [0u8; NONCE_LEN];
        self.block = chacha20::block(&self.key, self.counter, &nonce);
        self.counter = self
            .counter
            .checked_add(1)
            .expect("ChaChaRng exhausted 256 GiB of keystream; reseed required");
        self.offset = 0;
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut written = 0;
        while written < dest.len() {
            if self.offset == BLOCK_LEN {
                self.refill();
            }
            let take = (BLOCK_LEN - self.offset).min(dest.len() - written);
            dest[written..written + take]
                .copy_from_slice(&self.block[self.offset..self.offset + take]);
            self.offset += take;
            written += take;
        }
    }

    /// Returns a uniformly random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.fill_bytes(&mut buf);
        u64::from_le_bytes(buf)
    }

    /// Returns a uniformly random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        self.fill_bytes(&mut buf);
        u32::from_le_bytes(buf)
    }

    /// Returns a uniform value in `[0, bound)` using rejection sampling
    /// (no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a standard-normal draw (Box-Muller).
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0) by mapping the zero draw away from 0.
        let u1 = (self.next_u64() >> 11) as f64 + 0.5;
        let u1 = u1 * (1.0 / (1u64 << 53) as f64);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.next_f64() < p
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Generates a fresh 32-byte key.
    pub fn gen_key(&mut self) -> [u8; 32] {
        let mut k = [0u8; 32];
        self.fill_bytes(&mut k);
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = ChaChaRng::from_seed_u64(7);
        let mut b = ChaChaRng::from_seed_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaChaRng::from_seed_u64(1);
        let mut b = ChaChaRng::from_seed_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn forked_streams_are_independent_of_consumption() {
        let mut parent1 = ChaChaRng::from_seed_u64(5);
        let mut parent2 = ChaChaRng::from_seed_u64(5);
        let mut child1 = parent1.fork("gdo-0");
        let mut child2 = parent2.fork("gdo-0");
        assert_eq!(child1.next_u64(), child2.next_u64());
        // Distinct labels give distinct streams.
        let mut parent3 = ChaChaRng::from_seed_u64(5);
        let mut other = parent3.fork("gdo-1");
        assert_ne!(child1.next_u64(), other.next_u64());
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = ChaChaRng::from_seed_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = ChaChaRng::from_seed_u64(13);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = ChaChaRng::from_seed_u64(17);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = ChaChaRng::from_seed_u64(19);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move things"
        );
    }

    #[test]
    fn fill_bytes_chunking_consistent() {
        let mut a = ChaChaRng::from_seed_u64(23);
        let mut b = ChaChaRng::from_seed_u64(23);
        let mut buf_a = [0u8; 200];
        a.fill_bytes(&mut buf_a);
        let mut buf_b = [0u8; 200];
        for chunk in buf_b.chunks_mut(7) {
            b.fill_bytes(chunk);
        }
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn monobit_sanity() {
        let mut rng = ChaChaRng::from_seed_u64(29);
        let mut buf = [0u8; 8192];
        rng.fill_bytes(&mut buf);
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        let total = (buf.len() * 8) as f64;
        let frac = f64::from(ones) / total;
        assert!((frac - 0.5).abs() < 0.02, "ones fraction {frac}");
    }
}
