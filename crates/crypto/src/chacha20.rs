//! The ChaCha20 stream cipher (RFC 8439 §2.3–2.4).
//!
//! Provides the keystream generator behind both the AEAD construction in
//! [`crate::aead`] and the deterministic random generator in [`crate::rng`].

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes (IETF variant).
pub const NONCE_LEN: usize = 12;
/// Keystream block size in bytes.
pub const BLOCK_LEN: usize = 64;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 block for (`key`, `counter`, `nonce`).
#[must_use]
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }
    let initial = state;
    for _ in 0..10 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = state[i].wrapping_add(initial[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Encrypts or decrypts `data` in place (XOR with the keystream starting at
/// block `initial_counter`).
///
/// # Panics
///
/// Panics if the keystream counter would wrap (more than ~256 GiB under one
/// (key, nonce) pair), which would reuse keystream.
pub fn xor_in_place(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    let blocks_needed = data.len().div_ceil(BLOCK_LEN) as u64;
    assert!(
        u64::from(initial_counter) + blocks_needed <= u64::from(u32::MAX) + 1,
        "ChaCha20 counter overflow: keystream would repeat"
    );
    for (i, chunk) in data.chunks_mut(BLOCK_LEN).enumerate() {
        let ks = block(key, initial_counter.wrapping_add(i as u32), nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// Encrypts `data`, returning a fresh buffer.
#[must_use]
pub fn encrypt(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &[u8],
) -> Vec<u8> {
    let mut out = data.to_vec();
    xor_in_place(key, nonce, initial_counter, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn test_key() -> [u8; KEY_LEN] {
        let mut k = [0u8; KEY_LEN];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    // RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block() {
        let key = test_key();
        let nonce = [0u8, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let out = block(&key, 1, &nonce);
        assert_eq!(
            hex(&out),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    // RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encrypt() {
        let key = test_key();
        let nonce = [0u8, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could \
offer you only one tip for the future, sunscreen would be it.";
        let ct = encrypt(&key, &nonce, 1, plaintext);
        assert_eq!(
            hex(&ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d"
        );
    }

    // RFC 8439 Appendix A.1 test vector #1: all-zero key/nonce, counter 0.
    #[test]
    fn rfc8439_a1_vector_1() {
        let out = block(&[0u8; KEY_LEN], 0, &[0u8; NONCE_LEN]);
        assert_eq!(
            hex(&out),
            "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7\
             da41597c5157488d7724e03fb8d84a376a43b8f41518a11cc387b669b2ee6586"
        );
    }

    // RFC 8439 Appendix A.1 test vector #2: counter 1.
    #[test]
    fn rfc8439_a1_vector_2() {
        let out = block(&[0u8; KEY_LEN], 1, &[0u8; NONCE_LEN]);
        assert_eq!(
            hex(&out),
            "9f07e7be5551387a98ba977c732d080dcb0f29a048e3656912c6533e32ee7aed\
             29b721769ce64e43d57133b074d839d531ed1f28510afb45ace10a1f4b794d6f"
        );
    }

    // RFC 8439 Appendix A.1 test vector #5: nonce ending in 02.
    #[test]
    fn rfc8439_a1_vector_5() {
        let mut nonce = [0u8; NONCE_LEN];
        nonce[11] = 2;
        let out = block(&[0u8; KEY_LEN], 0, &nonce);
        assert_eq!(
            hex(&out),
            "ef3fdfd6c61578fbf5cf35bd3dd33b8009631634d21e42ac33960bd138e50d32\
             111e4caf237ee53ca8ad6426194a88545ddc497a0b466e7d6bbdb0041b2f586b"
        );
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = test_key();
        let nonce = [7u8; NONCE_LEN];
        let msg: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let ct = encrypt(&key, &nonce, 0, &msg);
        assert_ne!(ct, msg);
        let pt = encrypt(&key, &nonce, 0, &ct);
        assert_eq!(pt, msg);
    }

    #[test]
    fn distinct_nonces_distinct_streams() {
        let key = test_key();
        let a = encrypt(&key, &[1u8; NONCE_LEN], 0, &[0u8; 64]);
        let b = encrypt(&key, &[2u8; NONCE_LEN], 0, &[0u8; 64]);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_continuity() {
        // Encrypting 128 bytes at counter 0 equals two 64-byte encryptions at
        // counters 0 and 1.
        let key = test_key();
        let nonce = [3u8; NONCE_LEN];
        let msg = [0x5au8; 128];
        let whole = encrypt(&key, &nonce, 0, &msg);
        let first = encrypt(&key, &nonce, 0, &msg[..64]);
        let second = encrypt(&key, &nonce, 1, &msg[64..]);
        assert_eq!(&whole[..64], &first[..]);
        assert_eq!(&whole[64..], &second[..]);
    }

    #[test]
    #[should_panic(expected = "counter overflow")]
    fn counter_overflow_detected() {
        let key = test_key();
        let nonce = [0u8; NONCE_LEN];
        let mut data = [0u8; 65];
        xor_in_place(&key, &nonce, u32::MAX, &mut data);
    }
}
