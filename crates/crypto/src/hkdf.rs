//! HKDF with SHA-256 (RFC 5869).
//!
//! Key derivation for sealed storage (sealing keys are derived from a
//! platform secret and the enclave measurement) and for attested channel
//! session keys (derived from the X25519 shared secret and the handshake
//! transcript).

use crate::hmac::HmacSha256;
use crate::sha256::DIGEST_LEN;

/// Extracts a pseudorandom key from input keying material.
///
/// `salt` may be empty, in which case a string of zeros is used per the RFC.
#[must_use]
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    let salt: &[u8] = if salt.is_empty() {
        &[0u8; DIGEST_LEN]
    } else {
        salt
    };
    HmacSha256::mac(salt, ikm)
}

/// Expands a pseudorandom key into `out.len()` bytes of output keying
/// material bound to `info`.
///
/// # Panics
///
/// Panics if more than `255 * 32` bytes are requested (RFC 5869 limit).
pub fn expand(prk: &[u8; DIGEST_LEN], info: &[u8], out: &mut [u8]) {
    assert!(
        out.len() <= 255 * DIGEST_LEN,
        "HKDF-Expand output limited to 8160 bytes"
    );
    let mut t: Vec<u8> = Vec::new();
    let mut generated = 0usize;
    let mut counter = 1u8;
    while generated < out.len() {
        let mut mac = HmacSha256::new(prk);
        mac.update(&t);
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        let take = (out.len() - generated).min(DIGEST_LEN);
        out[generated..generated + take].copy_from_slice(&block[..take]);
        generated += take;
        t = block.to_vec();
        counter = counter.wrapping_add(1);
    }
}

/// One-call extract-then-expand.
///
/// # Example
///
/// ```
/// let mut key = [0u8; 32];
/// gendpr_crypto::hkdf::derive(b"salt", b"secret", b"gendpr/session", &mut key);
/// assert_ne!(key, [0u8; 32]);
/// ```
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], out: &mut [u8]) {
    let prk = extract(salt, ikm);
    expand(&prk, info, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 5869 Test Case 1.
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 Test Case 2 (longer inputs/outputs).
    #[test]
    fn rfc5869_case_2() {
        let ikm: Vec<u8> = (0x00..=0x4f).collect();
        let salt: Vec<u8> = (0x60..=0xaf).collect();
        let info: Vec<u8> = (0xb0..=0xff).collect();
        let mut okm = [0u8; 82];
        derive(&salt, &ikm, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
             59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
             cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    // RFC 5869 Test Case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case_3() {
        let ikm = [0x0bu8; 22];
        let mut okm = [0u8; 42];
        derive(&[], &ikm, &[], &mut okm);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn different_info_different_keys() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        derive(b"salt", b"ikm", b"context-a", &mut a);
        derive(b"salt", b"ikm", b"context-b", &mut b);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "HKDF-Expand output limited")]
    fn expand_rejects_oversized_output() {
        let prk = [0u8; DIGEST_LEN];
        let mut out = vec![0u8; 255 * DIGEST_LEN + 1];
        expand(&prk, b"", &mut out);
    }
}
