//! X25519 Diffie-Hellman over Curve25519 (RFC 7748).
//!
//! Used by the TEE substrate to establish attested end-to-end encrypted
//! sessions between enclaves: each side contributes an ephemeral key pair
//! whose public half is bound into its attestation quote.
//!
//! Field arithmetic uses five 51-bit limbs with `u128` products and a
//! constant-time Montgomery ladder.

// Index-based loops mirror the reference field-arithmetic formulas.
#![allow(clippy::needless_range_loop)]

use crate::constant_time::ct_swap_u64;

/// Length of public keys, secret keys and shared secrets in bytes.
pub const KEY_LEN: usize = 32;

const MASK51: u64 = (1 << 51) - 1;

/// Field element of GF(2^255 - 19), five 51-bit limbs, little-endian.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fe([u64; 5]);

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |b: &[u8]| -> u64 {
            let mut v = [0u8; 8];
            v.copy_from_slice(b);
            u64::from_le_bytes(v)
        };
        // RFC 7748: the top bit of the u-coordinate is masked off.
        let l0 = load(&bytes[0..8]) & MASK51;
        let l1 = (load(&bytes[6..14]) >> 3) & MASK51;
        let l2 = (load(&bytes[12..20]) >> 6) & MASK51;
        let l3 = (load(&bytes[19..27]) >> 1) & MASK51;
        let l4 = (load(&bytes[24..32]) >> 12) & MASK51;
        Fe([l0, l1, l2, l3, l4])
    }

    fn to_bytes(mut self) -> [u8; 32] {
        self = self.reduce_weak();
        // Fully reduce: conditionally subtract p = 2^255 - 19.
        let mut limbs = self.0;
        // First, carry.
        let mut carry;
        for _ in 0..2 {
            carry = 0u64;
            for limb in &mut limbs {
                let v = *limb + carry;
                *limb = v & MASK51;
                carry = v >> 51;
            }
            limbs[0] += 19 * carry;
        }
        // Compute limbs + 19, and if that overflows 2^255, subtract p by
        // keeping the carried value.
        let mut q = [0u64; 5];
        let mut c = 19u64;
        for i in 0..5 {
            let v = limbs[i] + c;
            q[i] = v & MASK51;
            c = v >> 51;
        }
        // c == 1 iff limbs >= p.
        let mask = c.wrapping_neg();
        for i in 0..5 {
            limbs[i] = (q[i] & mask) | (limbs[i] & !mask);
        }

        let mut out = [0u8; 32];
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut idx = 0usize;
        for limb in limbs {
            acc |= (limb as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 {
                out[idx] = acc as u8;
                acc >>= 8;
                acc_bits -= 8;
                idx += 1;
            }
        }
        debug_assert_eq!(idx, 31);
        out[31] = acc as u8;
        out
    }

    /// Partially reduces so all limbs fit in 52 bits.
    fn reduce_weak(self) -> Fe {
        let mut l = self.0;
        let mut c = l[0] >> 51;
        l[0] &= MASK51;
        for i in 1..5 {
            l[i] += c;
            c = l[i] >> 51;
            l[i] &= MASK51;
        }
        l[0] += 19 * c;
        Fe(l)
    }

    fn add(self, rhs: Fe) -> Fe {
        let mut out = [0u64; 5];
        for i in 0..5 {
            out[i] = self.0[i] + rhs.0[i];
        }
        Fe(out).reduce_weak()
    }

    fn sub(self, rhs: Fe) -> Fe {
        // Add 2p before subtracting to stay non-negative.
        // 2p in radix 2^51: low limb 2*(2^51-19), others 2*(2^51-1).
        let low = 2 * (MASK51 - 18);
        let high = 2 * MASK51;
        let mut out = [0u64; 5];
        out[0] = self.0[0] + low - rhs.0[0];
        for i in 1..5 {
            out[i] = self.0[i] + high - rhs.0[i];
        }
        Fe(out).reduce_weak()
    }

    fn mul(self, rhs: Fe) -> Fe {
        let a = self.0;
        let b = rhs.0;
        let m = |x: u64, y: u64| (x as u128) * (y as u128);
        // Schoolbook multiply with the 19-fold wraparound for limbs >= 5.
        let b1_19 = b[1] * 19;
        let b2_19 = b[2] * 19;
        let b3_19 = b[3] * 19;
        let b4_19 = b[4] * 19;

        let c0 = m(a[0], b[0]) + m(a[1], b4_19) + m(a[2], b3_19) + m(a[3], b2_19) + m(a[4], b1_19);
        let c1 = m(a[0], b[1]) + m(a[1], b[0]) + m(a[2], b4_19) + m(a[3], b3_19) + m(a[4], b2_19);
        let c2 = m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + m(a[3], b4_19) + m(a[4], b3_19);
        let c3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + m(a[4], b4_19);
        let c4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        Self::carry(c0, c1, c2, c3, c4)
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    fn carry(mut c0: u128, mut c1: u128, mut c2: u128, mut c3: u128, mut c4: u128) -> Fe {
        c1 += c0 >> 51;
        let l0 = (c0 as u64) & MASK51;
        c2 += c1 >> 51;
        let l1 = (c1 as u64) & MASK51;
        c3 += c2 >> 51;
        let l2 = (c2 as u64) & MASK51;
        c4 += c3 >> 51;
        let l3 = (c3 as u64) & MASK51;
        c0 = c4 >> 51;
        let l4 = (c4 as u64) & MASK51;
        let mut l0 = l0 + 19 * (c0 as u64);
        let l1 = l1 + (l0 >> 51);
        l0 &= MASK51;
        Fe([l0, l1, l2, l3, l4])
    }

    fn mul_small(self, scalar: u64) -> Fe {
        let m = |x: u64| (x as u128) * (scalar as u128);
        Self::carry(
            m(self.0[0]),
            m(self.0[1]),
            m(self.0[2]),
            m(self.0[3]),
            m(self.0[4]),
        )
    }

    /// Computes the multiplicative inverse via Fermat: a^(p-2).
    fn invert(self) -> Fe {
        // Addition chain for 2^255 - 21 (standard curve25519 chain).
        let z2 = self.square();
        let z9 = z2.square().square().mul(self);
        let z11 = z9.mul(z2);
        let z2_5_0 = z11.square().mul(z9); // 2^5 - 1
        let mut t = z2_5_0;
        for _ in 0..5 {
            t = t.square();
        }
        let z2_10_0 = t.mul(z2_5_0);
        t = z2_10_0;
        for _ in 0..10 {
            t = t.square();
        }
        let z2_20_0 = t.mul(z2_10_0);
        t = z2_20_0;
        for _ in 0..20 {
            t = t.square();
        }
        let z2_40_0 = t.mul(z2_20_0);
        t = z2_40_0;
        for _ in 0..10 {
            t = t.square();
        }
        let z2_50_0 = t.mul(z2_10_0);
        t = z2_50_0;
        for _ in 0..50 {
            t = t.square();
        }
        let z2_100_0 = t.mul(z2_50_0);
        t = z2_100_0;
        for _ in 0..100 {
            t = t.square();
        }
        let z2_200_0 = t.mul(z2_100_0);
        t = z2_200_0;
        for _ in 0..50 {
            t = t.square();
        }
        let z2_250_0 = t.mul(z2_50_0);
        t = z2_250_0;
        for _ in 0..5 {
            t = t.square();
        }
        t.mul(z11)
    }
}

/// Clamps a 32-byte scalar per RFC 7748 §5.
#[must_use]
pub fn clamp_scalar(mut scalar: [u8; KEY_LEN]) -> [u8; KEY_LEN] {
    scalar[0] &= 248;
    scalar[31] &= 127;
    scalar[31] |= 64;
    scalar
}

/// Scalar multiplication on the Montgomery curve: computes `scalar * point`.
///
/// `scalar` is clamped internally; `point` is a u-coordinate.
#[must_use]
pub fn scalar_mult(scalar: &[u8; KEY_LEN], point: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
    let k = clamp_scalar(*scalar);
    let x1 = Fe::from_bytes(point);

    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u8;

    for t in (0..255).rev() {
        let k_t = (k[t / 8] >> (t % 8)) & 1;
        swap ^= k_t;
        ct_swap_u64(swap, &mut x2.0, &mut x3.0);
        ct_swap_u64(swap, &mut z2.0, &mut z3.0);
        swap = k_t;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        let da_cb = da.add(cb);
        x3 = da_cb.square();
        let da_minus_cb = da.sub(cb);
        z3 = x1.mul(da_minus_cb.square());
        x2 = aa.mul(bb);
        // a24 = (486662 - 2) / 4 = 121665
        z2 = e.mul(aa.add(e.mul_small(121_665)));
    }
    ct_swap_u64(swap, &mut x2.0, &mut x3.0);
    ct_swap_u64(swap, &mut z2.0, &mut z3.0);

    x2.mul(z2.invert()).to_bytes()
}

/// The curve base point u = 9.
pub const BASE_POINT: [u8; KEY_LEN] = {
    let mut b = [0u8; KEY_LEN];
    b[0] = 9;
    b
};

/// Derives the public key for a secret scalar.
#[must_use]
pub fn public_key(secret: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
    scalar_mult(secret, &BASE_POINT)
}

/// Computes the Diffie-Hellman shared secret.
///
/// Returns `None` if the result is the all-zero point (low-order input), which
/// callers must treat as a handshake failure.
#[must_use]
pub fn diffie_hellman(
    secret: &[u8; KEY_LEN],
    peer_public: &[u8; KEY_LEN],
) -> Option<[u8; KEY_LEN]> {
    let shared = scalar_mult(secret, peer_public);
    if shared.iter().all(|&b| b == 0) {
        None
    } else {
        Some(shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex32(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    // RFC 7748 §5.2 test vector 1.
    #[test]
    fn rfc7748_vector_1() {
        let scalar = unhex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let point = unhex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let out = scalar_mult(&scalar, &point);
        assert_eq!(
            hex(&out),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    // RFC 7748 §5.2 test vector 2.
    #[test]
    fn rfc7748_vector_2() {
        let scalar = unhex32("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let point = unhex32("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let out = scalar_mult(&scalar, &point);
        assert_eq!(
            hex(&out),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    // RFC 7748 §5.2 iterated test (1,000 iterations).
    #[test]
    fn rfc7748_iterated_1000() {
        let mut k = BASE_POINT;
        let mut u = BASE_POINT;
        for _ in 0..1 {
            let r = scalar_mult(&k, &u);
            u = k;
            k = r;
        }
        assert_eq!(
            hex(&k),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
        for _ in 1..1000 {
            let r = scalar_mult(&k, &u);
            u = k;
            k = r;
        }
        assert_eq!(
            hex(&k),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51"
        );
    }

    // RFC 7748 §6.1 Diffie-Hellman example.
    #[test]
    fn rfc7748_dh_example() {
        let alice_sk = unhex32("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_sk = unhex32("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice_pk = public_key(&alice_sk);
        let bob_pk = public_key(&bob_sk);
        assert_eq!(
            hex(&alice_pk),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            hex(&bob_pk),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let s1 = diffie_hellman(&alice_sk, &bob_pk).unwrap();
        let s2 = diffie_hellman(&bob_sk, &alice_pk).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(
            hex(&s1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    #[test]
    fn zero_point_rejected() {
        let sk = [1u8; 32];
        let zero = [0u8; 32];
        assert!(diffie_hellman(&sk, &zero).is_none());
    }

    #[test]
    fn non_canonical_u_coordinates_reduce_mod_p() {
        // RFC 7748: implementations must accept non-canonical u and reduce
        // mod p. u = p ≡ 0 and u = p + 1 ≡ 1 are low-order points, so DH
        // must reject them like their canonical forms.
        let sk = [0x42u8; 32];
        // p = 2^255 - 19, little-endian.
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        assert!(diffie_hellman(&sk, &p_bytes).is_none(), "u = p acts as 0");
        let mut p_plus_1 = p_bytes;
        p_plus_1[0] = 0xee;
        assert!(
            diffie_hellman(&sk, &p_plus_1).is_none(),
            "u = p + 1 acts as 1"
        );
        // And the high bit must be masked: u with bit 255 set equals u
        // without it.
        let mut u = [0u8; 32];
        u[0] = 9;
        let mut u_highbit = u;
        u_highbit[31] |= 0x80;
        assert_eq!(scalar_mult(&sk, &u), scalar_mult(&sk, &u_highbit));
    }

    #[test]
    fn low_order_points_rejected() {
        // u = 0 and u = 1 generate subgroups of order 1/2/4/8; clamped
        // scalars are multiples of 8, so the ladder lands on the identity
        // and the all-zero output check must fire.
        let sk = [0x42u8; 32];
        let mut one = [0u8; 32];
        one[0] = 1;
        assert!(diffie_hellman(&sk, &one).is_none());
    }

    #[test]
    fn clamping_is_idempotent() {
        let s = [0xffu8; 32];
        assert_eq!(clamp_scalar(clamp_scalar(s)), clamp_scalar(s));
        let c = clamp_scalar(s);
        assert_eq!(c[0] & 7, 0);
        assert_eq!(c[31] & 0x80, 0);
        assert_eq!(c[31] & 0x40, 0x40);
    }

    #[test]
    fn field_roundtrip() {
        // to_bytes(from_bytes(x)) is canonical for values < p.
        let mut x = [0u8; 32];
        x[0] = 42;
        x[31] = 0x7f; // below 2^255
        let fe = Fe::from_bytes(&x);
        let y = fe.to_bytes();
        // 2^255-ish values reduce mod p; 42 + high bits stays put only if < p.
        // Use a definitely-canonical value instead:
        let mut small = [0u8; 32];
        small[0] = 42;
        assert_eq!(Fe::from_bytes(&small).to_bytes(), small);
        let _ = y;
    }

    #[test]
    fn field_arithmetic_identities() {
        let mut a_bytes = [0u8; 32];
        a_bytes[0] = 123;
        a_bytes[5] = 7;
        let a = Fe::from_bytes(&a_bytes);
        assert_eq!(a.mul(Fe::ONE).to_bytes(), a.to_bytes());
        assert_eq!(a.add(Fe::ZERO).to_bytes(), a.to_bytes());
        assert_eq!(a.sub(a).to_bytes(), [0u8; 32]);
        assert_eq!(a.mul(a.invert()).to_bytes(), Fe::ONE.to_bytes());
        // (a + a) == a * 2
        assert_eq!(a.add(a).to_bytes(), a.mul_small(2).to_bytes());
    }
}
