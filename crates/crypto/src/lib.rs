//! From-scratch cryptographic primitives for the GenDPR reproduction.
//!
//! The GenDPR middleware (Middleware '22) encrypts every piece of
//! intermediate data exchanged between federation members and binds those
//! exchanges to attested enclaves. This crate provides the primitives the
//! rest of the workspace builds on:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4),
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104),
//! * [`hkdf`] — HKDF (RFC 5869),
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439),
//! * [`poly1305`] — the Poly1305 one-time authenticator (RFC 8439),
//! * [`aead`] — ChaCha20-Poly1305 AEAD (RFC 8439),
//! * [`x25519`] — X25519 Diffie-Hellman (RFC 7748),
//! * [`rng`] — a deterministic ChaCha20-based random generator,
//! * [`constant_time`] — timing-safe comparison helpers.
//!
//! Everything is implemented in safe Rust from the specifications and
//! validated against the RFC/NIST test vectors in each module's tests.
//! The paper uses AES-256; this workspace substitutes ChaCha20-Poly1305
//! (see `DESIGN.md` §4 for the justification).
//!
//! # Example
//!
//! ```
//! use gendpr_crypto::aead::ChaCha20Poly1305;
//!
//! let key = [7u8; 32];
//! let cipher = ChaCha20Poly1305::new(&key);
//! let nonce = [0u8; 12];
//! let sealed = cipher.seal(&nonce, b"allele counts", b"phase-1");
//! let opened = cipher.open(&nonce, &sealed, b"phase-1").expect("tag must verify");
//! assert_eq!(opened, b"allele counts");
//! ```

pub mod aead;
pub mod chacha20;
pub mod constant_time;
pub mod hkdf;
pub mod hmac;
pub mod poly1305;
pub mod rng;
pub mod sha256;
pub mod x25519;

pub use aead::ChaCha20Poly1305;
pub use rng::ChaChaRng;
pub use sha256::Sha256;

use std::error::Error;
use std::fmt;

/// Error returned when an authenticated operation fails.
///
/// Deliberately carries no detail: distinguishing "bad tag" from "truncated
/// input" would hand an oracle to an attacker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CryptoError;

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("authentication failure")
    }
}

impl Error for CryptoError {}
