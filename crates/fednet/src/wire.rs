//! Hand-rolled binary wire codec.
//!
//! GenDPR's enclaves exchange typed messages (count vectors, LD moments,
//! LR matrices). No serde *format* crate is in the sanctioned dependency
//! set, so this module defines a small, explicit little-endian codec:
//! fixed-width integers/floats, length-prefixed sequences and strings, and
//! a [`wire_struct!`](crate::wire_struct) helper macro that derives `Encode`/`Decode` for plain
//! structs. Decoding is strict — trailing bytes and truncation are errors,
//! and every length prefix is validated against the remaining input so a
//! malicious peer cannot trigger huge allocations.

use std::error::Error;
use std::fmt;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// A length prefix exceeded the remaining input.
    LengthOverrun {
        /// Claimed number of elements.
        claimed: u64,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// Bytes were left over after a complete decode.
    TrailingBytes(usize),
    /// An enum discriminant or validated value was out of range.
    InvalidValue(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEnd => f.write_str("input ended unexpectedly"),
            Self::LengthOverrun { claimed, remaining } => {
                write!(
                    f,
                    "length prefix {claimed} exceeds remaining {remaining} bytes"
                )
            }
            Self::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            Self::InvalidValue(what) => write!(f, "invalid value for {what}"),
        }
    }
}

impl Error for WireError {}

/// A cursor over the bytes being decoded.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `data` for decoding.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEnd);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
}

/// Value that can be written to the wire.
pub trait Encode {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
}

/// Value that can be read back from the wire.
pub trait Decode: Sized {
    /// Lower bound on the encoded size of any value of this type, in
    /// bytes. Containers multiply this into their length-prefix check so a
    /// hostile prefix claiming millions of multi-byte elements is rejected
    /// *before* `Vec::with_capacity` reserves memory the frame body could
    /// never fill. The default of 1 is always sound; types with a known
    /// fixed or prefixed encoding override it (u32 → 4, u64 → 8, `Vec`
    /// → 8 for its own length prefix, …).
    const MIN_WIRE_SIZE: usize = 1;

    /// Decodes one value from the reader.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] on malformed input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encodes a value into a fresh buffer.
pub fn to_bytes<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    buf
}

/// Decodes a value, requiring the input to be fully consumed.
///
/// # Errors
///
/// Any [`WireError`], including [`WireError::TrailingBytes`].
pub fn from_bytes<T: Decode>(data: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(data);
    let v = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(v)
}

macro_rules! impl_wire_int {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Decode for $t {
            const MIN_WIRE_SIZE: usize = std::mem::size_of::<$t>();

            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("exact size")))
            }
        }
    )*};
}

impl_wire_int!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::InvalidValue("bool")),
        }
    }
}

impl Encode for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }
}

impl Decode for usize {
    /// Encoded as a fixed-width `u64` regardless of platform.
    const MIN_WIRE_SIZE: usize = 8;

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| WireError::InvalidValue("usize"))
    }
}

impl<const N: usize> Encode for [u8; N] {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self);
    }
}

impl<const N: usize> Decode for [u8; N] {
    const MIN_WIRE_SIZE: usize = N;

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes = r.take(N)?;
        Ok(bytes.try_into().expect("exact size"))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    /// A `Vec` encodes as at least its own 8-byte length prefix.
    const MIN_WIRE_SIZE: usize = 8;

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = u64::decode(r)?;
        // Floor the element size at 1 so zero-size elements (e.g. `[u8; 0]`)
        // cannot smuggle an unbounded iteration count past the check.
        let element = T::MIN_WIRE_SIZE.max(1) as u64;
        match len.checked_mul(element) {
            Some(need) if need <= r.remaining() as u64 => {}
            _ => {
                return Err(WireError::LengthOverrun {
                    claimed: len,
                    remaining: r.remaining(),
                })
            }
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
}

impl Decode for String {
    /// A `String` encodes as at least its own 8-byte length prefix.
    const MIN_WIRE_SIZE: usize = 8;

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = u64::decode(r)?;
        if len > r.remaining() as u64 {
            return Err(WireError::LengthOverrun {
                claimed: len,
                remaining: r.remaining(),
            });
        }
        let bytes = r.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidValue("utf-8 string"))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => false.encode(buf),
            Some(v) => {
                true.encode(buf);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        if bool::decode(r)? {
            Ok(Some(T::decode(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    const MIN_WIRE_SIZE: usize = A::MIN_WIRE_SIZE + B::MIN_WIRE_SIZE;

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

/// Implements [`Encode`]/[`Decode`] for a plain struct, field by field in
/// declaration order.
///
/// ```
/// use gendpr_fednet::wire_struct;
/// use gendpr_fednet::wire::{to_bytes, from_bytes};
///
/// #[derive(Debug, PartialEq)]
/// pub struct Counts { pub snps: Vec<u64>, pub total: u64 }
/// wire_struct!(Counts { snps, total });
///
/// let c = Counts { snps: vec![1, 2], total: 3 };
/// let back: Counts = from_bytes(&to_bytes(&c)).unwrap();
/// assert_eq!(back, c);
/// ```
#[macro_export]
macro_rules! wire_struct {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::wire::Encode for $name {
            fn encode(&self, buf: &mut Vec<u8>) {
                $($crate::wire::Encode::encode(&self.$field, buf);)+
            }
        }
        impl $crate::wire::Decode for $name {
            fn decode(
                r: &mut $crate::wire::Reader<'_>,
            ) -> Result<Self, $crate::wire::WireError> {
                Ok(Self {
                    $($field: $crate::wire::Decode::decode(r)?,)+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(123_456u32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(3.25f64);
        roundtrip(f64::MIN_POSITIVE);
        roundtrip(true);
        roundtrip(false);
        roundtrip(42usize);
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip("héllo wörld".to_string());
        roundtrip(String::new());
        roundtrip(Some(7u32));
        roundtrip(Option::<u32>::None);
        roundtrip((1u8, vec![2.5f64, 3.5]));
        roundtrip([7u8; 32]);
        roundtrip(vec![vec![1u32], vec![], vec![2, 3]]);
    }

    #[test]
    fn little_endian_layout() {
        assert_eq!(to_bytes(&0x0102_0304u32), vec![4, 3, 2, 1]);
        assert_eq!(to_bytes(&1u64)[0], 1);
    }

    #[test]
    fn truncated_input_fails() {
        let bytes = to_bytes(&123_456u32);
        assert_eq!(
            from_bytes::<u32>(&bytes[..3]).unwrap_err(),
            WireError::UnexpectedEnd
        );
    }

    #[test]
    fn trailing_bytes_fail() {
        let mut bytes = to_bytes(&1u8);
        bytes.push(0);
        assert_eq!(
            from_bytes::<u8>(&bytes).unwrap_err(),
            WireError::TrailingBytes(1)
        );
    }

    #[test]
    fn hostile_length_prefix_rejected_without_allocation() {
        // Claims 2^60 elements with 0 bytes of payload.
        let mut bytes = Vec::new();
        (1u64 << 60).encode(&mut bytes);
        let err = from_bytes::<Vec<u64>>(&bytes).unwrap_err();
        assert!(matches!(err, WireError::LengthOverrun { .. }), "{err:?}");
        let err2 = from_bytes::<String>(&bytes).unwrap_err();
        assert!(matches!(err2, WireError::LengthOverrun { .. }));
    }

    #[test]
    fn multibyte_length_prefix_cannot_overreserve() {
        // 1000 claimed u64 elements over a 2 KiB body: a flat 1-byte
        // element minimum accepts this and reserves 8 KB for a body that
        // can hold at most 256 elements; scaled to the 64 MiB frame cap
        // that is a ~512 MiB reserve. The per-type minimum rejects it.
        let mut bytes = Vec::new();
        (1000u64).encode(&mut bytes);
        bytes.extend_from_slice(&[0u8; 2048]);
        let err = from_bytes::<Vec<u64>>(&bytes).unwrap_err();
        assert!(matches!(err, WireError::LengthOverrun { .. }), "{err:?}");
        // Same prefix is fine for a type whose elements really are 1 byte.
        let ok = {
            let mut r = Reader::new(&bytes[..]);
            Vec::<u8>::decode(&mut r).unwrap()
        };
        assert_eq!(ok.len(), 1000);
    }

    #[test]
    fn length_prefix_times_element_size_cannot_overflow() {
        // len * 8 would wrap around u64 without checked multiplication.
        let mut bytes = Vec::new();
        (u64::MAX / 2).encode(&mut bytes);
        bytes.extend_from_slice(&[0u8; 64]);
        let err = from_bytes::<Vec<u64>>(&bytes).unwrap_err();
        assert!(matches!(err, WireError::LengthOverrun { .. }), "{err:?}");
    }

    #[test]
    fn min_wire_sizes_reflect_encodings() {
        assert_eq!(<u32 as Decode>::MIN_WIRE_SIZE, 4);
        assert_eq!(<u64 as Decode>::MIN_WIRE_SIZE, 8);
        assert_eq!(<f64 as Decode>::MIN_WIRE_SIZE, 8);
        assert_eq!(<usize as Decode>::MIN_WIRE_SIZE, 8);
        assert_eq!(<Vec<u8> as Decode>::MIN_WIRE_SIZE, 8);
        assert_eq!(<String as Decode>::MIN_WIRE_SIZE, 8);
        assert_eq!(<[u8; 32] as Decode>::MIN_WIRE_SIZE, 32);
        assert_eq!(<(u32, u64) as Decode>::MIN_WIRE_SIZE, 12);
        assert_eq!(<Option<u64> as Decode>::MIN_WIRE_SIZE, 1);
    }

    #[test]
    fn invalid_bool_and_utf8_rejected() {
        assert_eq!(
            from_bytes::<bool>(&[2]).unwrap_err(),
            WireError::InvalidValue("bool")
        );
        let mut bytes = Vec::new();
        (2u64).encode(&mut bytes);
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(
            from_bytes::<String>(&bytes).unwrap_err(),
            WireError::InvalidValue("utf-8 string")
        );
    }

    #[test]
    fn wire_struct_macro_roundtrip() {
        #[derive(Debug, PartialEq)]
        struct Msg {
            id: u32,
            payload: Vec<f64>,
            label: String,
        }
        wire_struct!(Msg { id, payload, label });
        let m = Msg {
            id: 9,
            payload: vec![1.0, -2.0],
            label: "ld-moments".into(),
        };
        let back: Msg = from_bytes(&to_bytes(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn nested_option_vec() {
        roundtrip(vec![Some(1u64), None, Some(3)]);
    }
}
