//! Length-prefixed message I/O for client ↔ daemon streams.
//!
//! The federation's member links frame [`crate::transport::Envelope`]s;
//! the assessment service's *client* protocol (submit / status / results)
//! is simpler: one [`crate::wire`]-encoded message per frame, framed as
//! `[u32 LE length][body]` over a plain [`Read`]/[`Write`] stream. The
//! length prefix is capped at [`crate::tcp::MAX_FRAME_BYTES`] so a
//! hostile peer cannot make either side allocate unboundedly.

use crate::tcp::MAX_FRAME_BYTES;
use crate::wire::{self, Decode, Encode, WireError};
use std::io::{self, Read, Write};

/// Writes one length-prefixed message and flushes the stream.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] when the encoded message exceeds
/// [`MAX_FRAME_BYTES`]; otherwise whatever the underlying stream fails
/// with.
pub fn write_message<T: Encode>(stream: &mut impl Write, message: &T) -> io::Result<()> {
    let body = wire::to_bytes(message);
    if body.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "message exceeds the frame limit",
        ));
    }
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(&body)?;
    stream.flush()
}

/// Reads one length-prefixed message.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] when the claimed length exceeds
/// [`MAX_FRAME_BYTES`] or the body fails to decode;
/// [`io::ErrorKind::UnexpectedEof`] when the peer closed mid-frame.
pub fn read_message<T: Decode>(stream: &mut impl Read) -> io::Result<T> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds the limit",
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    wire::from_bytes(&body).map_err(|e: WireError| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed message: {e}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_message(&mut buf, &vec![1u32, 2, 3]).unwrap();
        write_message(&mut buf, &"hello".to_string()).unwrap();
        let mut cursor = io::Cursor::new(buf);
        let nums: Vec<u32> = read_message(&mut cursor).unwrap();
        assert_eq!(nums, vec![1, 2, 3]);
        let text: String = read_message(&mut cursor).unwrap();
        assert_eq!(text, "hello");
    }

    #[test]
    fn truncated_frame_is_eof() {
        let mut buf = Vec::new();
        write_message(&mut buf, &vec![7u64; 4]).unwrap();
        buf.truncate(buf.len() - 1);
        let mut cursor = io::Cursor::new(buf);
        let err = read_message::<Vec<u64>>(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_claim_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = io::Cursor::new(buf);
        let err = read_message::<Vec<u8>>(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn garbage_body_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.extend_from_slice(&[0xFF; 4]);
        let mut cursor = io::Cursor::new(buf);
        let err = read_message::<String>(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
