//! Synthetic network latency model.
//!
//! The paper reports CPU time and discusses bandwidth analytically; for
//! end-to-end simulations this model attributes a deterministic latency to
//! each message from its size, so experiments can estimate wall-clock
//! behaviour of geo-distributed federations without sleeping.

use std::time::Duration;

/// Affine latency model: `base + bytes/bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// One-way propagation delay.
    pub base: Duration,
    /// Link bandwidth in bytes per second.
    pub bytes_per_second: f64,
}

impl LatencyModel {
    /// A same-datacenter profile (0.2 ms, 10 Gbit/s).
    #[must_use]
    pub fn datacenter() -> Self {
        Self {
            base: Duration::from_micros(200),
            bytes_per_second: 1.25e9,
        }
    }

    /// A cross-continent federation profile (40 ms, 100 Mbit/s) — the
    /// geo-distributed biocenter setting GenDPR targets.
    #[must_use]
    pub fn wide_area() -> Self {
        Self {
            base: Duration::from_millis(40),
            bytes_per_second: 1.25e7,
        }
    }

    /// Latency attributed to one message of `bytes` size.
    #[must_use]
    pub fn latency_for(&self, bytes: usize) -> Duration {
        let transfer = bytes as f64 / self.bytes_per_second;
        self.base + Duration::from_secs_f64(transfer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_monotone_in_size() {
        let m = LatencyModel::wide_area();
        let small = m.latency_for(1_000);
        let big = m.latency_for(10_000_000);
        assert!(big > small);
        assert!(small >= m.base);
    }

    #[test]
    fn datacenter_is_faster_than_wan() {
        let bytes = 4 * 10_000; // a 10k-SNP count vector
        assert!(
            LatencyModel::datacenter().latency_for(bytes)
                < LatencyModel::wide_area().latency_for(bytes)
        );
    }

    #[test]
    fn transfer_time_math() {
        let m = LatencyModel {
            base: Duration::ZERO,
            bytes_per_second: 1000.0,
        };
        assert_eq!(m.latency_for(500), Duration::from_millis(500));
    }
}
