//! Global transport metrics, layered over the per-link [`TrafficMatrix`].
//!
//! The [`crate::metrics::TrafficMatrix`] stays the source of truth for the
//! per-link accounting that `gendpr status` and the bandwidth tables report;
//! this module mirrors the same events into the process-global
//! `gendpr-obs` registry so they show up on `/metrics` with histograms and
//! failure counters the matrix cannot express. Handles are resolved once
//! through `OnceLock` statics, so the per-frame cost is one atomic add.
//!
//! [`TrafficMatrix`]: crate::metrics::TrafficMatrix

use gendpr_obs as obs;
use std::sync::OnceLock;

/// Frames handed to a transport for delivery (any transport).
pub(crate) fn frames_sent() -> &'static obs::Counter {
    static C: OnceLock<obs::Counter> = OnceLock::new();
    C.get_or_init(|| {
        obs::counter(
            "gendpr_net_frames_sent_total",
            "Frames sent over the federation fabric",
            &[],
        )
    })
}

/// Frames received and decoded from the fabric (any transport).
pub(crate) fn frames_received() -> &'static obs::Counter {
    static C: OnceLock<obs::Counter> = OnceLock::new();
    C.get_or_init(|| {
        obs::counter(
            "gendpr_net_frames_received_total",
            "Frames received over the federation fabric",
            &[],
        )
    })
}

/// On-the-wire frame sizes, sent direction.
pub(crate) fn frame_bytes_sent() -> &'static obs::Histogram {
    static H: OnceLock<obs::Histogram> = OnceLock::new();
    H.get_or_init(|| {
        obs::histogram(
            "gendpr_net_frame_bytes",
            "On-the-wire frame sizes by direction",
            &[("dir", "sent")],
            obs::BYTE_BUCKETS,
        )
    })
}

/// On-the-wire frame sizes, received direction.
pub(crate) fn frame_bytes_received() -> &'static obs::Histogram {
    static H: OnceLock<obs::Histogram> = OnceLock::new();
    H.get_or_init(|| {
        obs::histogram(
            "gendpr_net_frame_bytes",
            "On-the-wire frame sizes by direction",
            &[("dir", "received")],
            obs::BYTE_BUCKETS,
        )
    })
}

/// Sends that the transport gave up on (fault drop, dead peer).
pub(crate) fn frames_dropped() -> &'static obs::Counter {
    static C: OnceLock<obs::Counter> = OnceLock::new();
    C.get_or_init(|| {
        obs::counter(
            "gendpr_net_send_failures_total",
            "Sends abandoned by the transport",
            &[("kind", "dropped")],
        )
    })
}

/// Successful re-dials after a write failed on an established connection.
pub(crate) fn reconnects() -> &'static obs::Counter {
    static C: OnceLock<obs::Counter> = OnceLock::new();
    C.get_or_init(|| {
        obs::counter(
            "gendpr_net_reconnects_total",
            "Connections re-established after a peer died or restarted",
            &[],
        )
    })
}

/// Individual failed connect attempts inside the retry-with-backoff loop.
pub(crate) fn connect_retries() -> &'static obs::Counter {
    static C: OnceLock<obs::Counter> = OnceLock::new();
    C.get_or_init(|| {
        obs::counter(
            "gendpr_net_connect_retries_total",
            "Failed dial attempts that were retried with backoff",
            &[],
        )
    })
}

/// Dial budgets exhausted without a connection.
pub(crate) fn connect_timeouts() -> &'static obs::Counter {
    static C: OnceLock<obs::Counter> = OnceLock::new();
    C.get_or_init(|| {
        obs::counter(
            "gendpr_net_connect_timeouts_total",
            "Dials that exhausted their connect budget",
            &[],
        )
    })
}

/// Registers every transport metric eagerly so the exposition endpoint
/// shows them (at zero) before the first frame moves. Daemons call this at
/// startup; lazy call sites stay correct without it.
pub fn register_transport_metrics() {
    frames_sent();
    frames_received();
    frame_bytes_sent();
    frame_bytes_received();
    frames_dropped();
    reconnects();
    connect_retries();
    connect_timeouts();
}
