//! TCP socket transport: the federation over real OS processes.
//!
//! Where [`crate::transport::Network`] wires every member through
//! in-process channels, [`TcpTransport`] puts each member behind a real
//! socket so a G-member federation can run as G processes on separate
//! premises (the paper's Figure 2 deployment). The transport carries
//! opaque, already enclave-encrypted payloads; it adds only framing:
//!
//! ```text
//! ┌────────────┬──────────────────────────────────────────────┐
//! │ u32 LE len │ body: wire-encoded TcpFrame                  │
//! │ (of body)  │   from: u32, plaintext_len: u64, payload     │
//! └────────────┴──────────────────────────────────────────────┘
//! ```
//!
//! The body reuses the strict [`crate::wire`] codec, and
//! [`MAX_FRAME_BYTES`] bounds every length prefix so a hostile peer can
//! neither trigger huge allocations nor wedge a reader.
//!
//! Connection model: each member listens on its roster address and lazily
//! dials a dedicated outbound connection per peer on first send (with
//! retry and exponential backoff up to [`TcpOptions::connect_timeout`],
//! surfacing exhaustion as [`NetError::Timeout`]). Per-pair ordering
//! therefore rides on TCP's own in-order delivery. A connection dying
//! mid-protocol surfaces as [`NetError::Dropped`] on the send side and as
//! silence — i.e. a receive timeout — on the receive side, exactly the
//! semantics the GenDPR runtime expects from the in-memory fabric.
//!
//! The configured [`FaultPlan`] is applied at this framing layer (a
//! dropped message is never written to the socket), so fault-injection
//! tests exercise both transports identically.

use crate::fault::FaultPlan;
use crate::metrics::{TrafficMatrix, TrafficStats};
use crate::telemetry;
use crate::transport::{Envelope, NetError, PeerId, Transport};
use crate::wire::{self, WireError};
use crate::wire_struct;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// Hard ceiling on one frame's body. Large enough for any dense LR matrix
/// the protocol ships, small enough that a hostile length prefix cannot
/// cause a pathological allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Size of the length prefix preceding every frame body.
pub const FRAME_HEADER_BYTES: usize = 4;

/// One framed message as it travels on a TCP link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpFrame {
    /// Sender's peer index (each frame is self-describing; the receiving
    /// end trusts channel cryptography, not this field, for authenticity).
    pub from: u32,
    /// Pre-encryption payload size, carried for bandwidth accounting.
    pub plaintext_len: u64,
    /// Opaque (typically enclave-encrypted) payload.
    pub payload: Vec<u8>,
}

wire_struct!(TcpFrame {
    from,
    plaintext_len,
    payload
});

/// Frame codec failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// More bytes are needed before the frame can be decoded (streaming
    /// truncation — not an attack, just an incomplete read).
    Incomplete {
        /// Bytes available so far.
        have: usize,
        /// Bytes required for the next decode attempt.
        need: usize,
    },
    /// The frame (or its claimed length) exceeds [`MAX_FRAME_BYTES`].
    TooLarge {
        /// Claimed or actual body size.
        claimed: u64,
    },
    /// The body failed strict wire decoding.
    Malformed(WireError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Incomplete { have, need } => {
                write!(f, "incomplete frame: have {have} bytes, need {need}")
            }
            Self::TooLarge { claimed } => {
                write!(
                    f,
                    "frame of {claimed} bytes exceeds limit {MAX_FRAME_BYTES}"
                )
            }
            Self::Malformed(e) => write!(f, "malformed frame body: {e}"),
        }
    }
}

impl Error for FrameError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

/// Encodes one frame: length prefix followed by the wire-encoded body.
///
/// # Errors
///
/// [`FrameError::TooLarge`] when the body would exceed [`MAX_FRAME_BYTES`].
pub fn encode_frame(frame: &TcpFrame) -> Result<Vec<u8>, FrameError> {
    let body = wire::to_bytes(frame);
    if body.len() > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge {
            claimed: body.len() as u64,
        });
    }
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Decodes one frame from the front of `bytes`, returning it and the
/// number of bytes consumed. Suitable for incremental use: on
/// [`FrameError::Incomplete`], read more and retry.
///
/// # Errors
///
/// [`FrameError::Incomplete`] on truncation, [`FrameError::TooLarge`] on a
/// hostile length prefix, [`FrameError::Malformed`] when the body does not
/// decode. Never panics, never allocates based on an unchecked prefix.
pub fn decode_frame(bytes: &[u8]) -> Result<(TcpFrame, usize), FrameError> {
    if bytes.len() < FRAME_HEADER_BYTES {
        return Err(FrameError::Incomplete {
            have: bytes.len(),
            need: FRAME_HEADER_BYTES,
        });
    }
    let len = u32::from_le_bytes(bytes[..FRAME_HEADER_BYTES].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge {
            claimed: len as u64,
        });
    }
    let total = FRAME_HEADER_BYTES + len;
    if bytes.len() < total {
        return Err(FrameError::Incomplete {
            have: bytes.len(),
            need: total,
        });
    }
    let frame = wire::from_bytes::<TcpFrame>(&bytes[FRAME_HEADER_BYTES..total])
        .map_err(FrameError::Malformed)?;
    Ok((frame, total))
}

/// Dial-and-retry policy for outbound connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpOptions {
    /// Total budget for establishing one connection; exhaustion surfaces
    /// as [`NetError::Timeout`] from [`Transport::send`].
    pub connect_timeout: Duration,
    /// First retry backoff after a refused connection.
    pub retry_initial: Duration,
    /// Backoff cap (doubling from `retry_initial`).
    pub retry_max: Duration,
    /// Budget for re-dialing a peer whose established connection died
    /// mid-write (a restarted peer). Kept short so a genuinely dead peer
    /// degrades into [`NetError::Dropped`] quickly rather than stalling
    /// every subsequent send for `connect_timeout`.
    pub reconnect_timeout: Duration,
}

impl Default for TcpOptions {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(10),
            retry_initial: Duration::from_millis(25),
            retry_max: Duration::from_millis(500),
            reconnect_timeout: Duration::from_secs(1),
        }
    }
}

/// An encoded frame held back by a reorder fault, flushed by the chaos
/// flusher thread once due.
struct HeldTcpFrame {
    to: PeerId,
    bytes: Vec<u8>,
    plaintext_len: usize,
    due: Instant,
}

struct TcpShared {
    id: PeerId,
    peers: HashMap<PeerId, SocketAddr>,
    conns: Mutex<HashMap<u32, TcpStream>>,
    metrics: Mutex<TrafficMatrix>,
    faults: Mutex<FaultPlan>,
    held: Mutex<Vec<HeldTcpFrame>>,
    flusher: AtomicBool,
    opts: TcpOptions,
    shutdown: AtomicBool,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One member's socket endpoint: a listener plus lazily dialed outbound
/// connections, implementing [`Transport`].
pub struct TcpTransport {
    shared: Arc<TcpShared>,
    rx: Receiver<Envelope>,
    local: SocketAddr,
}

impl fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpTransport")
            .field("id", &self.shared.id)
            .field("local", &self.local)
            .finish_non_exhaustive()
    }
}

impl TcpTransport {
    /// Binds `listen` and joins the federation described by `roster`
    /// (every member's `(id, address)`, this member included).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(
        id: PeerId,
        listen: SocketAddr,
        roster: &[(PeerId, SocketAddr)],
        opts: TcpOptions,
    ) -> io::Result<Self> {
        Self::from_listener(id, TcpListener::bind(listen)?, roster, opts)
    }

    /// Like [`TcpTransport::bind`], from an already-bound listener. This is
    /// the ephemeral-port pattern: bind every member on port 0 first,
    /// collect the real addresses into the roster, then build transports.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failure.
    pub fn from_listener(
        id: PeerId,
        listener: TcpListener,
        roster: &[(PeerId, SocketAddr)],
        opts: TcpOptions,
    ) -> io::Result<Self> {
        let local = listener.local_addr()?;
        let (tx, rx) = channel();
        let shared = Arc::new(TcpShared {
            id,
            peers: roster.iter().copied().collect(),
            conns: Mutex::new(HashMap::new()),
            metrics: Mutex::new(TrafficMatrix::default()),
            faults: Mutex::new(FaultPlan::none()),
            held: Mutex::new(Vec::new()),
            flusher: AtomicBool::new(false),
            opts,
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        thread::spawn(move || accept_loop(&accept_shared, &listener, &tx));
        Ok(Self { shared, rx, local })
    }

    /// The address this member actually listens on (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    fn send_impl(
        &self,
        to: PeerId,
        payload: Vec<u8>,
        plaintext_len: usize,
    ) -> Result<(), NetError> {
        let shared = &self.shared;
        // Soak-harness kill point: die mid-conversation, with a frame
        // about to go on the wire, so peers see an abrupt member death.
        crate::killpoint::hit("net_send");
        let decision = lock(&shared.faults).decide(shared.id.0, to.0);
        if !decision.deliver {
            telemetry::frames_dropped().inc();
            return Err(NetError::Dropped);
        }
        let addr = *shared.peers.get(&to).ok_or(NetError::UnknownPeer(to))?;
        let frame = encode_frame(&TcpFrame {
            from: shared.id.0,
            plaintext_len: plaintext_len as u64,
            payload,
        })
        .map_err(|e| match e {
            FrameError::TooLarge { claimed } => NetError::FrameTooLarge(claimed as usize),
            FrameError::Incomplete { .. } | FrameError::Malformed(_) => NetError::Dropped,
        })?;
        for _ in 0..decision.duplicates {
            let _ = write_frame(shared, to, addr, &frame, plaintext_len);
        }
        if let Some(delay) = decision.delay {
            lock(&shared.held).push(HeldTcpFrame {
                to,
                bytes: frame,
                plaintext_len,
                due: Instant::now() + delay,
            });
            ensure_flusher(shared);
            return Ok(());
        }
        write_frame(shared, to, addr, &frame, plaintext_len)
    }
}

/// Writes one encoded frame to `to`, dialing lazily. A write failure on an
/// established connection means the peer died or restarted: the stale
/// connection is discarded and one re-dial (bounded by
/// [`TcpOptions::reconnect_timeout`]) is attempted before giving up with
/// [`NetError::Dropped`].
fn write_frame(
    shared: &Arc<TcpShared>,
    to: PeerId,
    addr: SocketAddr,
    frame: &[u8],
    plaintext_len: usize,
) -> Result<(), NetError> {
    let mut conns = lock(&shared.conns);
    let stream = match conns.entry(to.0) {
        Entry::Occupied(e) => e.into_mut(),
        Entry::Vacant(e) => e.insert(dial(addr, shared.opts)?),
    };
    if stream.write_all(frame).is_ok() {
        drop(conns);
        lock(&shared.metrics).record(shared.id.0, to.0, plaintext_len, frame.len());
        telemetry::frames_sent().inc();
        telemetry::frame_bytes_sent().observe(frame.len() as f64);
        return Ok(());
    }
    conns.remove(&to.0);
    let redial = TcpOptions {
        connect_timeout: shared.opts.reconnect_timeout,
        ..shared.opts
    };
    match dial(addr, redial) {
        Ok(mut stream) => {
            if stream.write_all(frame).is_err() {
                telemetry::frames_dropped().inc();
                return Err(NetError::Dropped);
            }
            telemetry::reconnects().inc();
            gendpr_obs::event(
                gendpr_obs::Level::Debug,
                "fednet",
                "reconnected",
                &[("peer", to.0.into())],
            );
            conns.insert(to.0, stream);
            drop(conns);
            lock(&shared.metrics).record(shared.id.0, to.0, plaintext_len, frame.len());
            telemetry::frames_sent().inc();
            telemetry::frame_bytes_sent().observe(frame.len() as f64);
            Ok(())
        }
        Err(_) => {
            telemetry::frames_dropped().inc();
            Err(NetError::Dropped)
        }
    }
}

/// Starts the background thread that flushes reorder-held frames, once per
/// transport; it exits with the transport's shutdown flag.
fn ensure_flusher(shared: &Arc<TcpShared>) {
    if shared.flusher.swap(true, Ordering::SeqCst) {
        return;
    }
    let shared = Arc::clone(shared);
    thread::spawn(move || {
        while !shared.shutdown.load(Ordering::SeqCst) {
            flush_due(&shared);
            thread::sleep(Duration::from_millis(1));
        }
    });
}

fn flush_due(shared: &Arc<TcpShared>) {
    let due: Vec<HeldTcpFrame> = {
        let mut held = lock(&shared.held);
        if held.is_empty() {
            return;
        }
        let now = Instant::now();
        let mut due = Vec::new();
        let mut i = 0;
        while i < held.len() {
            if held[i].due <= now {
                due.push(held.swap_remove(i));
            } else {
                i += 1;
            }
        }
        due
    };
    for f in due {
        if let Some(&addr) = shared.peers.get(&f.to) {
            let _ = write_frame(shared, f.to, addr, &f.bytes, f.plaintext_len);
        }
    }
}

impl Transport for TcpTransport {
    fn id(&self) -> PeerId {
        self.shared.id
    }

    fn send(&self, to: PeerId, payload: Vec<u8>, plaintext_len: usize) -> Result<(), NetError> {
        self.send_impl(to, payload, plaintext_len)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, NetError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            std::sync::mpsc::RecvTimeoutError::Timeout => NetError::Timeout,
            std::sync::mpsc::RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }

    fn set_faults(&self, faults: FaultPlan) {
        *lock(&self.shared.faults) = faults;
    }

    fn link_stats(&self, to: PeerId) -> TrafficStats {
        lock(&self.shared.metrics).link(self.shared.id.0, to.0)
    }

    fn egress_stats(&self) -> TrafficStats {
        lock(&self.shared.metrics).egress(self.shared.id.0)
    }

    fn ingress_stats(&self) -> TrafficStats {
        lock(&self.shared.metrics).ingress(self.shared.id.0)
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Deliver reorder-held frames before tearing down. The chaos plan
        // models *delay*; only `drop_rate` may lose frames. Without this
        // flush a session-closing frame sent moments before the transport
        // drops would silently vanish with the flusher thread, stranding
        // peers that keep waiting for it.
        let held: Vec<HeldTcpFrame> = std::mem::take(&mut lock(&self.shared.held));
        for f in held {
            if let Some(&addr) = self.shared.peers.get(&f.to) {
                let _ = write_frame(&self.shared, f.to, addr, &f.bytes, f.plaintext_len);
            }
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Closing outbound connections EOFs the peers' readers.
        lock(&self.shared.conns).clear();
        // A throwaway connection wakes the blocking accept loop so it can
        // observe the shutdown flag and exit.
        let _ = TcpStream::connect_timeout(&self.local, Duration::from_millis(200));
    }
}

/// Connects to `addr` with the same retry-with-jittered-backoff policy
/// the federation transport uses for member links: re-dial until
/// `opts.connect_timeout` is spent, doubling the backoff from
/// `opts.retry_initial` up to `opts.retry_max`. This is what lets a
/// client race a daemon that is still binding its listener.
///
/// # Errors
///
/// [`NetError::Timeout`] when the budget is exhausted without a
/// connection.
pub fn connect_retry(addr: SocketAddr, opts: TcpOptions) -> Result<TcpStream, NetError> {
    dial(addr, opts)
}

/// Connects to the first reachable endpoint in `addrs`, sharing one
/// `opts.connect_timeout` budget across the whole list. Each round
/// probes every endpoint in order (a probe is capped to an even share
/// of the remaining budget, so one blackholed address cannot starve a
/// live one further down the list), then sleeps the same jittered
/// backoff schedule as [`connect_retry`] before the next round.
///
/// This is the client side of a replica-track fleet: the tracks serve
/// identical state, so a client holding every track's address stays
/// available as long as any one track survives.
///
/// # Errors
///
/// [`NetError::Timeout`] when the budget is exhausted with no endpoint
/// reachable, or when `addrs` is empty.
pub fn connect_any(addrs: &[SocketAddr], opts: TcpOptions) -> Result<TcpStream, NetError> {
    match addrs {
        [] => Err(NetError::Timeout),
        [addr] => dial(*addr, opts),
        addrs => {
            let deadline = Instant::now() + opts.connect_timeout;
            let mut backoff = opts.retry_initial;
            let mut jitter_state = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0x9E37_79B9, |d| u64::from(d.subsec_nanos()))
                ^ (u64::from(addrs[0].port()) << 32);
            loop {
                for addr in addrs {
                    let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                        telemetry::connect_timeouts().inc();
                        return Err(NetError::Timeout);
                    };
                    let probe = (remaining / addrs.len() as u32)
                        .max(opts.retry_initial)
                        .min(remaining);
                    match TcpStream::connect_timeout(addr, probe) {
                        Ok(stream) => {
                            let _ = stream.set_nodelay(true);
                            return Ok(stream);
                        }
                        Err(_) => telemetry::connect_retries().inc(),
                    }
                }
                let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                    telemetry::connect_timeouts().inc();
                    return Err(NetError::Timeout);
                };
                let span = (backoff / 2).as_nanos().max(1) as u64;
                let jitter =
                    Duration::from_nanos(crate::fault::splitmix64(&mut jitter_state) % span);
                let sleep = (backoff / 2 + jitter).min(remaining);
                if sleep >= remaining {
                    telemetry::connect_timeouts().inc();
                    return Err(NetError::Timeout);
                }
                thread::sleep(sleep);
                backoff = (backoff * 2).min(opts.retry_max);
            }
        }
    }
}

fn dial(addr: SocketAddr, opts: TcpOptions) -> Result<TcpStream, NetError> {
    let deadline = Instant::now() + opts.connect_timeout;
    let mut backoff = opts.retry_initial;
    // Jitter seed: wall-clock nanos differ across processes, so members
    // retrying a restarted peer at once don't re-dial in lockstep.
    let mut jitter_state = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0x9E37_79B9, |d| u64::from(d.subsec_nanos()))
        ^ (u64::from(addr.port()) << 32);
    loop {
        let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
            telemetry::connect_timeouts().inc();
            return Err(NetError::Timeout);
        };
        match TcpStream::connect_timeout(&addr, remaining) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                return Ok(stream);
            }
            Err(_) => {
                telemetry::connect_retries().inc();
                let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                    telemetry::connect_timeouts().inc();
                    return Err(NetError::Timeout);
                };
                // Sleep a uniform draw from [backoff/2, backoff] so
                // simultaneous reconnects desynchronize — clamped to the
                // remaining budget so a large `retry_max` can never push
                // the dial past its deadline.
                let span = (backoff / 2).as_nanos().max(1) as u64;
                let jitter =
                    Duration::from_nanos(crate::fault::splitmix64(&mut jitter_state) % span);
                let sleep = (backoff / 2 + jitter).min(remaining);
                if sleep >= remaining {
                    // The clamped sleep would consume the whole budget:
                    // fail now instead of sleeping into the deadline and
                    // burning one more doomed connect attempt.
                    telemetry::connect_timeouts().inc();
                    return Err(NetError::Timeout);
                }
                thread::sleep(sleep);
                backoff = (backoff * 2).min(opts.retry_max);
            }
        }
    }
}

fn accept_loop(shared: &Arc<TcpShared>, listener: &TcpListener, tx: &Sender<Envelope>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream {
            Ok(stream) => {
                let shared = Arc::clone(shared);
                let tx = tx.clone();
                thread::spawn(move || reader_loop(&shared, stream, &tx));
            }
            Err(_) => {
                // Transient accept failure; keep serving unless shut down.
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn reader_loop(shared: &Arc<TcpShared>, mut stream: TcpStream, tx: &Sender<Envelope>) {
    loop {
        let mut header = [0u8; FRAME_HEADER_BYTES];
        if stream.read_exact(&mut header).is_err() {
            return; // peer closed or died
        }
        let len = u32::from_le_bytes(header) as usize;
        if len > MAX_FRAME_BYTES {
            return; // hostile prefix: sever the connection, allocate nothing
        }
        let mut buf = vec![0u8; FRAME_HEADER_BYTES + len];
        buf[..FRAME_HEADER_BYTES].copy_from_slice(&header);
        if stream.read_exact(&mut buf[FRAME_HEADER_BYTES..]).is_err() {
            return;
        }
        let Ok((frame, consumed)) = decode_frame(&buf) else {
            return; // malformed body: sever the connection
        };
        debug_assert_eq!(consumed, buf.len());
        lock(&shared.metrics).record(
            frame.from,
            shared.id.0,
            frame.plaintext_len as usize,
            buf.len(),
        );
        telemetry::frames_received().inc();
        telemetry::frame_bytes_received().observe(buf.len() as f64);
        let env = Envelope {
            from: PeerId(frame.from),
            to: shared.id,
            payload: frame.payload,
            plaintext_len: frame.plaintext_len as usize,
        };
        if tx.send(env).is_err() {
            return; // transport dropped
        }
    }
}

/// A federation address book: every member's `(id, address)`.
pub type Roster = Vec<(PeerId, SocketAddr)>;

/// Binds `n` listeners on `127.0.0.1:0` and pairs them with peer ids —
/// the ephemeral-port half of the [`TcpTransport::from_listener`] pattern.
/// Feed the returned roster to every member.
///
/// # Errors
///
/// Propagates bind failures.
pub fn ephemeral_listeners(n: usize) -> io::Result<(Roster, Vec<TcpListener>)> {
    let mut roster = Vec::with_capacity(n);
    let mut listeners = Vec::with_capacity(n);
    for i in 0..n {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        roster.push((PeerId(i as u32), listener.local_addr()?));
        listeners.push(listener);
    }
    Ok((roster, listeners))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TcpTransport, TcpTransport) {
        let (roster, mut listeners) = ephemeral_listeners(2).unwrap();
        let b = TcpTransport::from_listener(
            PeerId(1),
            listeners.pop().unwrap(),
            &roster,
            TcpOptions::default(),
        )
        .unwrap();
        let a = TcpTransport::from_listener(
            PeerId(0),
            listeners.pop().unwrap(),
            &roster,
            TcpOptions::default(),
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn dial_never_overshoots_a_tight_timeout() {
        // A port with nothing listening: every dial is refused, so the
        // retry loop spins through its backoff schedule. With a backoff
        // cap far above the connect budget, an unclamped jittered sleep
        // could overshoot the deadline by up to retry_max/2.
        let addr = {
            let probe = TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap()
        };
        let opts = TcpOptions {
            connect_timeout: Duration::from_millis(100),
            retry_initial: Duration::from_millis(40),
            retry_max: Duration::from_secs(10),
            reconnect_timeout: Duration::from_millis(100),
        };
        let started = Instant::now();
        let result = connect_retry(addr, opts);
        let elapsed = started.elapsed();
        assert!(matches!(result, Err(NetError::Timeout)), "got {result:?}");
        assert!(
            elapsed < Duration::from_secs(1),
            "dial blew through its 100ms budget: took {elapsed:?} \
             (retry_max/2 overshoot would be ~5s)"
        );
    }

    #[test]
    fn connect_any_fails_over_past_a_dead_endpoint() {
        // First address is dead (bound then dropped), second is live:
        // the multi-endpoint dial must skip the refusal and land on the
        // survivor within the same budget.
        let dead = {
            let probe = TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap()
        };
        let live = TcpListener::bind("127.0.0.1:0").unwrap();
        let live_addr = live.local_addr().unwrap();
        let stream = connect_any(&[dead, live_addr], TcpOptions::default()).unwrap();
        assert_eq!(stream.peer_addr().unwrap(), live_addr);

        // All endpoints dead: typed timeout, within the tight budget.
        let opts = TcpOptions {
            connect_timeout: Duration::from_millis(100),
            retry_initial: Duration::from_millis(20),
            retry_max: Duration::from_secs(10),
            reconnect_timeout: Duration::from_millis(100),
        };
        let started = Instant::now();
        let result = connect_any(&[dead, dead], opts);
        assert!(matches!(result, Err(NetError::Timeout)), "got {result:?}");
        assert!(started.elapsed() < Duration::from_secs(1));
        assert!(matches!(
            connect_any(&[], TcpOptions::default()),
            Err(NetError::Timeout)
        ));
    }

    #[test]
    fn frame_roundtrip() {
        let frame = TcpFrame {
            from: 3,
            plaintext_len: 11,
            payload: b"sealed bytes".to_vec(),
        };
        let bytes = encode_frame(&frame).unwrap();
        let (back, consumed) = decode_frame(&bytes).unwrap();
        assert_eq!(back, frame);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn truncated_frames_are_incomplete() {
        let bytes = encode_frame(&TcpFrame {
            from: 0,
            plaintext_len: 4,
            payload: vec![9; 40],
        })
        .unwrap();
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(FrameError::Incomplete { have, need }) => {
                    assert_eq!(have, cut);
                    assert!(need > cut);
                }
                other => panic!("cut {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let mut bytes = (u32::MAX).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 16]);
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn oversized_payload_rejected_at_encode() {
        let frame = TcpFrame {
            from: 0,
            plaintext_len: 0,
            payload: vec![0; MAX_FRAME_BYTES + 1],
        };
        assert!(matches!(
            encode_frame(&frame),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn point_to_point_over_sockets_in_order() {
        let (a, b) = pair();
        a.send(PeerId(1), vec![1], 1).unwrap();
        a.send(PeerId(1), vec![2], 1).unwrap();
        let one = b.recv_timeout(Duration::from_secs(5)).unwrap();
        let two = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!((one.from, one.payload), (PeerId(0), vec![1]));
        assert_eq!((two.from, two.payload), (PeerId(0), vec![2]));
        // Reply direction uses its own connection.
        b.send(PeerId(0), b"pong".to_vec(), 4).unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_secs(5)).unwrap().payload,
            b"pong"
        );
    }

    #[test]
    fn wire_bytes_metered_on_both_ends() {
        let (a, b) = pair();
        a.send(PeerId(1), vec![0u8; 100], 80).unwrap();
        b.recv_timeout(Duration::from_secs(5)).unwrap();
        let egress = a.link_stats(PeerId(1));
        assert_eq!(egress.messages, 1);
        assert_eq!(egress.plaintext_bytes, 80);
        assert!(egress.wire_bytes > 100, "framing counted: {egress:?}");
        let ingress = b.ingress_stats();
        assert_eq!(ingress.wire_bytes, egress.wire_bytes);
        assert_eq!(a.egress_stats(), egress);
    }

    #[test]
    fn unknown_peer_and_fault_drop() {
        let (a, _b) = pair();
        assert_eq!(
            a.send(PeerId(7), vec![0], 1),
            Err(NetError::UnknownPeer(PeerId(7)))
        );
        let mut faults = FaultPlan::none();
        faults.crash(1);
        a.set_faults(faults);
        assert_eq!(a.send(PeerId(1), vec![0], 1), Err(NetError::Dropped));
        assert_eq!(a.egress_stats().messages, 0, "dropped frames not metered");
    }

    #[test]
    fn reconnect_on_send_reaches_a_restarted_peer() {
        let (roster, mut listeners) = ephemeral_listeners(2).unwrap();
        let opts = TcpOptions {
            connect_timeout: Duration::from_secs(2),
            reconnect_timeout: Duration::from_millis(500),
            ..TcpOptions::default()
        };
        let b_listener = listeners.pop().unwrap();
        let a = TcpTransport::from_listener(PeerId(0), listeners.pop().unwrap(), &roster, opts)
            .unwrap();
        a.send(PeerId(1), vec![1], 1).unwrap();
        // The peer dies mid-session: its first incarnation accepts the
        // connection and is gone before reading anything, leaving `a`
        // with a stale connection. The listener itself stays bound (a
        // same-port rebind here would race the kernel's FIN_WAIT/
        // TIME_WAIT teardown of the dropped connection, which std's
        // TcpListener cannot override without SO_REUSEADDR).
        let (doomed, _) = b_listener.accept().expect("first incarnation accepts");
        drop(doomed);
        let b2 = TcpTransport::from_listener(PeerId(1), b_listener, &roster, opts).unwrap();
        // The restarted incarnation serves the same roster address. `a`
        // still holds the stale connection; writes into it may succeed
        // until the kernel surfaces the reset, after which write_frame
        // re-dials. Keep sending until a frame lands.
        let mut delivered = None;
        for attempt in 0u8..50 {
            let _ = a.send(PeerId(1), vec![attempt], 1);
            if let Ok(env) = b2.recv_timeout(Duration::from_millis(100)) {
                delivered = Some(env.payload[0]);
                break;
            }
        }
        assert!(
            delivered.is_some(),
            "sender must reconnect to the restarted peer"
        );
    }

    #[test]
    fn chaos_over_tcp_delivers_every_frame() {
        let (a, b) = pair();
        let mut faults = FaultPlan::none();
        faults.chaos(crate::fault::ChaosFaults {
            seed: 5,
            drop_rate: 0.0,
            duplicate_rate: 0.5,
            reorder_window_ms: 3,
        });
        a.set_faults(faults);
        let sent = 20u8;
        for i in 0..sent {
            a.send(PeerId(1), vec![i], 1).unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        while let Ok(env) = b.recv_timeout(Duration::from_millis(300)) {
            seen.insert(env.payload[0]);
            if seen.len() == usize::from(sent) {
                break;
            }
        }
        assert_eq!(seen.len(), usize::from(sent), "no frame may be lost");
    }

    #[test]
    fn never_connecting_peer_times_out_cleanly() {
        // Reserve a port nobody listens on.
        let dead = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let roster = vec![
            (PeerId(0), listener.local_addr().unwrap()),
            (PeerId(1), dead_addr),
        ];
        let a = TcpTransport::from_listener(
            PeerId(0),
            listener,
            &roster,
            TcpOptions {
                connect_timeout: Duration::from_millis(200),
                ..TcpOptions::default()
            },
        )
        .unwrap();
        let start = Instant::now();
        assert_eq!(a.send(PeerId(1), vec![1], 1), Err(NetError::Timeout));
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
