//! Federation transports.
//!
//! The [`Transport`] trait is the runtime's only view of the network: a
//! peer identity, blocking point-to-point send/receive with deadlines, and
//! per-link traffic accounting. Two implementations exist:
//!
//! * [`Network`]/[`Endpoint`] (this module) — reliable, in-order,
//!   in-memory delivery over channels, for single-process deployments and
//!   benchmarks;
//! * [`crate::tcp::TcpTransport`] — length-prefixed frames over real TCP
//!   sockets, for multi-process deployments (`gendpr node`).
//!
//! Everything a transport carries is already enclave-encrypted by the TEE
//! layer; the transport stays oblivious to plaintext.

use crate::fault::FaultPlan;
use crate::metrics::{TrafficMatrix, TrafficStats};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Identifies a federation endpoint (GDO index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(pub u32);

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer-{}", self.0)
    }
}

/// A delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sender.
    pub from: PeerId,
    /// Receiver.
    pub to: PeerId,
    /// Opaque (typically enclave-encrypted) payload.
    pub payload: Vec<u8>,
    /// Plaintext size declared by the sender, for metrics only.
    pub plaintext_len: usize,
}

/// Transport errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// Destination was never registered.
    UnknownPeer(PeerId),
    /// The message was dropped by the fault plan (crash/partition), or the
    /// connection carrying it died mid-transfer.
    Dropped,
    /// A deadline elapsed — either a receive wait or a connection attempt.
    /// In GenDPR this is how a member's non-responsiveness surfaces (the
    /// paper makes no liveness guarantee).
    Timeout,
    /// The endpoint's queue was disconnected.
    Disconnected,
    /// The message exceeds the transport's maximum frame size.
    FrameTooLarge(usize),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownPeer(p) => write!(f, "unknown peer {p}"),
            Self::Dropped => f.write_str("message dropped by fault plan or dead connection"),
            Self::Timeout => f.write_str("deadline elapsed"),
            Self::Disconnected => f.write_str("endpoint disconnected"),
            Self::FrameTooLarge(n) => write!(f, "{n}-byte message exceeds the frame size limit"),
        }
    }
}

impl Error for NetError {}

/// What the GenDPR runtime requires of a federation network: a fixed peer
/// identity, blocking deadline-bounded point-to-point messaging, fault
/// injection, and per-link traffic accounting.
///
/// Semantics every implementation must honour:
///
/// * messages between a fixed `(sender, receiver)` pair are delivered in
///   send order (cross-pair ordering is unspecified);
/// * [`Transport::send`] returns [`NetError::Dropped`] when the fault plan
///   swallows the message or the link died — the sender treats that as
///   best-effort delivery and lets the silence surface at the receiver;
/// * [`Transport::recv_timeout`] returns [`NetError::Timeout`] once the
///   deadline elapses with nothing delivered;
/// * traffic counters report bytes as they appear on this transport's
///   medium (for TCP, framing included).
pub trait Transport: Send {
    /// This endpoint's peer id.
    fn id(&self) -> PeerId;

    /// Sends `payload` to `to`; `plaintext_len` is the pre-encryption size,
    /// recorded for bandwidth accounting.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownPeer`], [`NetError::Dropped`],
    /// [`NetError::Timeout`] (connection deadline) or
    /// [`NetError::FrameTooLarge`].
    fn send(&self, to: PeerId, payload: Vec<u8>, plaintext_len: usize) -> Result<(), NetError>;

    /// Blocks for the next message up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] or [`NetError::Disconnected`].
    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, NetError>;

    /// Installs a fault plan evaluated on every send (replacing any
    /// previous one).
    fn set_faults(&self, faults: FaultPlan);

    /// Traffic sent by this endpoint to `to`.
    fn link_stats(&self, to: PeerId) -> TrafficStats;

    /// Everything sent by this endpoint.
    fn egress_stats(&self) -> TrafficStats;

    /// Everything received by this endpoint.
    fn ingress_stats(&self) -> TrafficStats;
}

/// A frame held back by a reorder fault, due for delivery later.
#[derive(Debug)]
struct HeldFrame {
    env: Envelope,
    due: Instant,
}

#[derive(Debug, Default)]
struct NetworkState {
    inboxes: HashMap<PeerId, Sender<Envelope>>,
    metrics: TrafficMatrix,
    faults: FaultPlan,
    held: Vec<HeldFrame>,
}

/// The federation's message fabric. Cheap to clone; all clones share state.
#[derive(Debug, Clone, Default)]
pub struct Network {
    state: Arc<Mutex<NetworkState>>,
}

impl Network {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a peer and returns its endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered (a wiring bug).
    #[must_use]
    pub fn register(&self, id: PeerId) -> Endpoint {
        let (tx, rx) = channel();
        let mut state = self.lock();
        let prev = state.inboxes.insert(id, tx);
        assert!(prev.is_none(), "peer {id} registered twice");
        Endpoint {
            id,
            rx,
            network: self.clone(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, NetworkState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Installs a fault plan (replacing any previous one).
    pub fn set_faults(&self, faults: FaultPlan) {
        self.lock().faults = faults;
    }

    /// Snapshot of one directed link's traffic.
    #[must_use]
    pub fn link_stats(&self, from: PeerId, to: PeerId) -> TrafficStats {
        self.lock().metrics.link(from.0, to.0)
    }

    /// Snapshot of network-wide traffic.
    #[must_use]
    pub fn total_stats(&self) -> TrafficStats {
        self.lock().metrics.total()
    }

    /// Snapshot of everything received by `peer`.
    #[must_use]
    pub fn ingress_stats(&self, peer: PeerId) -> TrafficStats {
        self.lock().metrics.ingress(peer.0)
    }

    /// Snapshot of everything sent by `peer`.
    #[must_use]
    pub fn egress_stats(&self, peer: PeerId) -> TrafficStats {
        self.lock().metrics.egress(peer.0)
    }

    fn send(&self, env: Envelope) -> Result<(), NetError> {
        let mut state = self.lock();
        Self::flush_due_locked(&mut state);
        let decision = state.faults.decide(env.from.0, env.to.0);
        if !decision.deliver {
            return Err(NetError::Dropped);
        }
        if !state.inboxes.contains_key(&env.to) {
            return Err(NetError::UnknownPeer(env.to));
        }
        for _ in 0..decision.duplicates {
            let _ = Self::deliver_locked(&mut state, env.clone());
        }
        match decision.delay {
            Some(delay) => {
                state.held.push(HeldFrame {
                    env,
                    due: Instant::now() + delay,
                });
                Ok(())
            }
            None => Self::deliver_locked(&mut state, env),
        }
    }

    fn deliver_locked(state: &mut NetworkState, env: Envelope) -> Result<(), NetError> {
        let tx = state
            .inboxes
            .get(&env.to)
            .ok_or(NetError::UnknownPeer(env.to))?
            .clone();
        state
            .metrics
            .record(env.from.0, env.to.0, env.plaintext_len, env.payload.len());
        // The in-memory fabric delivers synchronously, so one record is both
        // the send and the receive for the global transport metrics.
        crate::telemetry::frames_sent().inc();
        crate::telemetry::frames_received().inc();
        crate::telemetry::frame_bytes_sent().observe(env.payload.len() as f64);
        crate::telemetry::frame_bytes_received().observe(env.payload.len() as f64);
        tx.send(env).map_err(|_| NetError::Disconnected)
    }

    fn flush_due_locked(state: &mut NetworkState) {
        if state.held.is_empty() {
            return;
        }
        let now = Instant::now();
        let mut i = 0;
        while i < state.held.len() {
            if state.held[i].due <= now {
                let frame = state.held.swap_remove(i);
                let _ = Self::deliver_locked(state, frame.env);
            } else {
                i += 1;
            }
        }
    }

    /// Delivers every held frame that is due and reports whether delayed
    /// deliveries are possible at all (chaos active or frames still held),
    /// so receivers know to poll instead of blocking for the full deadline.
    fn poll_pending(&self) -> bool {
        let mut state = self.lock();
        Self::flush_due_locked(&mut state);
        state.faults.has_chaos() || !state.held.is_empty()
    }
}

/// One peer's handle on the network.
#[derive(Debug)]
pub struct Endpoint {
    id: PeerId,
    rx: Receiver<Envelope>,
    network: Network,
}

impl Endpoint {
    /// This endpoint's id.
    #[must_use]
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// Sends `payload` to `to`. `plaintext_len` is the pre-encryption size,
    /// recorded for bandwidth accounting.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownPeer`] or [`NetError::Dropped`].
    pub fn send(&self, to: PeerId, payload: Vec<u8>, plaintext_len: usize) -> Result<(), NetError> {
        self.network.send(Envelope {
            from: self.id,
            to,
            plaintext_len,
            payload,
        })
    }

    /// Blocks for the next message.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if the network was torn down.
    pub fn recv(&self) -> Result<Envelope, NetError> {
        self.rx.recv().map_err(|_| NetError::Disconnected)
    }

    /// Blocks for the next message up to `timeout`. While reorder chaos is
    /// active the wait is sliced so frames held by the fault plan are
    /// flushed to their inboxes as they come due.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] or [`NetError::Disconnected`].
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            let delayed_possible = self.network.poll_pending();
            let remaining = deadline.saturating_duration_since(Instant::now());
            if !delayed_possible {
                return self.rx.recv_timeout(remaining).map_err(|e| match e {
                    std::sync::mpsc::RecvTimeoutError::Timeout => NetError::Timeout,
                    std::sync::mpsc::RecvTimeoutError::Disconnected => NetError::Disconnected,
                });
            }
            let slice = remaining.min(Duration::from_millis(1));
            match self.rx.recv_timeout(slice) {
                Ok(env) => return Ok(env),
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    if Instant::now() >= deadline {
                        return Err(NetError::Timeout);
                    }
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(NetError::Disconnected)
                }
            }
        }
    }

    /// Non-blocking receive; `None` when the inbox is empty.
    #[must_use]
    pub fn try_recv(&self) -> Option<Envelope> {
        self.rx.try_recv().ok()
    }

    /// The network this endpoint belongs to.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.network
    }
}

impl Transport for Endpoint {
    fn id(&self) -> PeerId {
        Endpoint::id(self)
    }

    fn send(&self, to: PeerId, payload: Vec<u8>, plaintext_len: usize) -> Result<(), NetError> {
        Endpoint::send(self, to, payload, plaintext_len)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, NetError> {
        Endpoint::recv_timeout(self, timeout)
    }

    fn set_faults(&self, faults: FaultPlan) {
        self.network.set_faults(faults);
    }

    fn link_stats(&self, to: PeerId) -> TrafficStats {
        self.network.link_stats(self.id, to)
    }

    fn egress_stats(&self) -> TrafficStats {
        self.network.egress_stats(self.id)
    }

    fn ingress_stats(&self) -> TrafficStats {
        self.network.ingress_stats(self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_delivery_in_order() {
        let net = Network::new();
        let a = net.register(PeerId(0));
        let b = net.register(PeerId(1));
        a.send(PeerId(1), vec![1], 1).unwrap();
        a.send(PeerId(1), vec![2], 1).unwrap();
        assert_eq!(b.recv().unwrap().payload, vec![1]);
        assert_eq!(b.recv().unwrap().payload, vec![2]);
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn unknown_peer_errors() {
        let net = Network::new();
        let a = net.register(PeerId(0));
        assert_eq!(
            a.send(PeerId(9), vec![0], 1),
            Err(NetError::UnknownPeer(PeerId(9)))
        );
    }

    #[test]
    fn metrics_capture_sizes() {
        let net = Network::new();
        let a = net.register(PeerId(0));
        let _b = net.register(PeerId(1));
        a.send(PeerId(1), vec![0u8; 130], 100).unwrap();
        let link = net.link_stats(PeerId(0), PeerId(1));
        assert_eq!(link.messages, 1);
        assert_eq!(link.plaintext_bytes, 100);
        assert_eq!(link.wire_bytes, 130);
        assert_eq!(net.ingress_stats(PeerId(1)).wire_bytes, 130);
        assert_eq!(net.egress_stats(PeerId(0)).wire_bytes, 130);
        assert_eq!(net.total_stats().messages, 1);
    }

    #[test]
    fn fault_plan_drops() {
        let net = Network::new();
        let a = net.register(PeerId(0));
        let b = net.register(PeerId(1));
        let mut faults = FaultPlan::none();
        faults.crash(1);
        net.set_faults(faults);
        assert_eq!(a.send(PeerId(1), vec![1], 1), Err(NetError::Dropped));
        assert_eq!(
            b.recv_timeout(Duration::from_millis(10)),
            Err(NetError::Timeout)
        );
        // Dropped messages are not counted as delivered.
        assert_eq!(net.total_stats().messages, 0);
    }

    #[test]
    fn cross_thread_delivery() {
        let net = Network::new();
        let a = net.register(PeerId(0));
        let b = net.register(PeerId(1));
        let handle = std::thread::spawn(move || {
            let env = b.recv().unwrap();
            assert_eq!(env.from, PeerId(0));
            env.payload
        });
        a.send(PeerId(1), b"hello enclave".to_vec(), 13).unwrap();
        assert_eq!(handle.join().unwrap(), b"hello enclave");
    }

    #[test]
    fn chaos_duplicates_and_delays_still_deliver_every_frame() {
        let net = Network::new();
        let a = net.register(PeerId(0));
        let b = net.register(PeerId(1));
        let mut faults = FaultPlan::none();
        faults.chaos(crate::fault::ChaosFaults {
            seed: 11,
            drop_rate: 0.0,
            duplicate_rate: 0.5,
            reorder_window_ms: 3,
        });
        net.set_faults(faults);
        let sent = 20u8;
        for i in 0..sent {
            a.send(PeerId(1), vec![i], 1).unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        let mut copies = 0u32;
        while let Ok(env) = b.recv_timeout(Duration::from_millis(100)) {
            seen.insert(env.payload[0]);
            copies += 1;
            if seen.len() == usize::from(sent) && copies > u32::from(sent) {
                break;
            }
        }
        assert_eq!(seen.len(), usize::from(sent), "no frame may be lost");
        assert!(copies > u32::from(sent), "duplicates at 0.5 rate expected");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let net = Network::new();
        let _a = net.register(PeerId(0));
        let _dup = net.register(PeerId(0));
    }
}
