//! Deterministic crash injection for the soak harness.
//!
//! A *kill point* is a named site in a hot path (a ledger append between
//! write and fsync, a transport frame send) where the process can be
//! made to die as abruptly as a SIGKILL — no unwinding, no `Drop` glue,
//! no buffered flushes. The soak driver arms exactly one site per
//! daemon run via the environment:
//!
//! ```text
//! GENDPR_KILLPOINT=<site>:<n>
//! ```
//!
//! means "abort on the `n`-th hit of `<site>`". The spec is read once
//! (first hit) and the counter is process-global, so a seeded driver
//! choosing `n` gets a reproducible crash offset. Unset, every [`hit`]
//! is a single relaxed-ordering branch on a cold `OnceLock` — nothing a
//! production deployment can trip over.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::OnceLock;

struct KillPoint {
    site: String,
    remaining: AtomicI64,
}

static ARMED: OnceLock<Option<KillPoint>> = OnceLock::new();

fn parse() -> Option<KillPoint> {
    let spec = std::env::var("GENDPR_KILLPOINT").ok()?;
    let (site, count) = spec.rsplit_once(':')?;
    let count: i64 = count.parse().ok()?;
    (count > 0 && !site.is_empty()).then(|| KillPoint {
        site: site.to_string(),
        remaining: AtomicI64::new(count),
    })
}

/// Registers a pass through the kill point named `site`; aborts the
/// process (exit as-if-SIGKILLed: no unwinding, no flushes) when the
/// armed countdown for that site reaches zero.
pub fn hit(site: &str) {
    if let Some(armed) = ARMED.get_or_init(parse) {
        if armed.site == site && armed.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            // eprintln is deliberate: the soak driver greps the daemon's
            // stderr to tell an armed abort from an unexpected death.
            eprintln!("killpoint: aborting at {site}");
            std::process::abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_hits_are_noops() {
        // The suite runs without GENDPR_KILLPOINT; hammering a site must
        // neither abort nor panic.
        for _ in 0..100 {
            hit("net_send");
            hit("ledger_append");
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        // parse() reads the real environment, which is unset here.
        assert!(parse().is_none());
    }
}
