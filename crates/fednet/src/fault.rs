//! Fault injection.
//!
//! The paper "make\[s\] no further liveness guarantees once federation
//! members become non-responsive" (§4). This module lets tests and
//! examples create exactly those conditions: crashed peers, dropped
//! messages and partitions, so the protocol's abort behaviour can be
//! exercised deterministically.

use std::collections::HashSet;

/// A deterministic fault plan evaluated on every send.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    crashed: HashSet<u32>,
    drop_links: HashSet<(u32, u32)>,
    drop_after: Vec<(u32, u64)>, // peer, sends allowed before it goes dark
    sends_seen: Vec<(u32, u64)>,
}

impl FaultPlan {
    /// No faults.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Marks `peer` as crashed: it neither sends nor receives.
    pub fn crash(&mut self, peer: u32) {
        self.crashed.insert(peer);
    }

    /// Silently drops every message on the directed link `from → to`.
    pub fn partition_link(&mut self, from: u32, to: u32) {
        self.drop_links.insert((from, to));
    }

    /// Lets `peer` send `sends` messages, then crashes it (models a member
    /// dying mid-protocol).
    pub fn crash_after_sends(&mut self, peer: u32, sends: u64) {
        self.drop_after.push((peer, sends));
        self.sends_seen.push((peer, 0));
    }

    /// Whether `peer` is (currently) crashed.
    #[must_use]
    pub fn is_crashed(&self, peer: u32) -> bool {
        self.crashed.contains(&peer)
    }

    /// Evaluates a send attempt; returns `true` if the message must be
    /// dropped. Mutates internal counters for `crash_after_sends`.
    pub fn on_send(&mut self, from: u32, to: u32) -> bool {
        if self.crashed.contains(&from) || self.crashed.contains(&to) {
            return true;
        }
        if self.drop_links.contains(&(from, to)) {
            return true;
        }
        for (i, &(peer, limit)) in self.drop_after.iter().enumerate() {
            if peer == from {
                let seen = &mut self.sends_seen[i].1;
                *seen += 1;
                if *seen > limit {
                    self.crashed.insert(peer);
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_by_default() {
        let mut plan = FaultPlan::none();
        assert!(!plan.on_send(0, 1));
        assert!(!plan.is_crashed(0));
    }

    #[test]
    fn crashed_peer_drops_both_directions() {
        let mut plan = FaultPlan::none();
        plan.crash(1);
        assert!(plan.on_send(1, 0), "crashed sender");
        assert!(plan.on_send(0, 1), "crashed receiver");
        assert!(!plan.on_send(0, 2));
    }

    #[test]
    fn partition_is_directional() {
        let mut plan = FaultPlan::none();
        plan.partition_link(0, 1);
        assert!(plan.on_send(0, 1));
        assert!(!plan.on_send(1, 0));
    }

    #[test]
    fn crash_after_sends_counts() {
        let mut plan = FaultPlan::none();
        plan.crash_after_sends(3, 2);
        assert!(!plan.on_send(3, 0));
        assert!(!plan.on_send(3, 1));
        assert!(plan.on_send(3, 2), "third send crashes the peer");
        assert!(plan.is_crashed(3));
        assert!(plan.on_send(0, 3), "now unreachable too");
    }
}
