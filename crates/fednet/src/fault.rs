//! Fault injection.
//!
//! The paper "make\[s\] no further liveness guarantees once federation
//! members become non-responsive" (§4). This module lets tests and
//! examples create exactly those conditions: crashed peers, dropped
//! messages, partitions, crash-restart windows and seeded probabilistic
//! link chaos (drop / duplicate / reorder), so both the protocol's abort
//! behaviour and the epoch-based recovery layer can be exercised
//! deterministically.

use std::collections::HashSet;
use std::time::Duration;

/// Seeded probabilistic link faults, evaluated per send with a
/// deterministic splitmix64 stream so a given seed always produces the
/// same fault schedule for the same send sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosFaults {
    /// PRNG seed; the whole fault schedule is a pure function of it.
    pub seed: u64,
    /// Probability in `[0, 1]` that a frame is silently dropped.
    pub drop_rate: f64,
    /// Probability in `[0, 1]` that a delivered frame is sent twice.
    pub duplicate_rate: f64,
    /// Maximum reorder hold in milliseconds; each delivered frame is
    /// delayed by a uniform `0..=reorder_window_ms` so later frames can
    /// overtake it. `0` disables reordering.
    pub reorder_window_ms: u32,
}

impl ChaosFaults {
    /// The default chaos profile used by `gendpr node --chaos <seed>`:
    /// no loss, some duplication, small reorder window — faults the
    /// recovery layer must absorb without changing the release.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            drop_rate: 0.0,
            duplicate_rate: 0.1,
            reorder_window_ms: 3,
        }
    }
}

/// The outcome of evaluating one send attempt against a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendDecision {
    /// Whether the frame is delivered at all.
    pub deliver: bool,
    /// Extra copies to deliver immediately (duplicate fault).
    pub duplicates: u32,
    /// Hold the frame for this long before delivery (reorder fault);
    /// frames sent during the hold may overtake it.
    pub delay: Option<Duration>,
}

impl SendDecision {
    const DELIVER: Self = Self {
        deliver: true,
        duplicates: 0,
        delay: None,
    };
    const DROP: Self = Self {
        deliver: false,
        duplicates: 0,
        delay: None,
    };
}

/// A crash-restart window expressed in send attempts involving the peer,
/// so the schedule is deterministic and clock-free.
#[derive(Debug, Clone)]
struct RestartWindow {
    peer: u32,
    after: u64,    // attempts involving the peer before it goes dark
    down_for: u64, // attempts involving the peer that fall into the outage
    seen: u64,
}

impl RestartWindow {
    fn dark(&self) -> bool {
        self.seen > self.after && self.seen <= self.after + self.down_for
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_f64(x: u64) -> f64 {
    // 53 uniform mantissa bits → [0, 1).
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic fault plan evaluated on every send.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    crashed: HashSet<u32>,
    drop_links: HashSet<(u32, u32)>,
    drop_after: Vec<(u32, u64)>, // peer, sends allowed before it goes dark
    sends_seen: Vec<(u32, u64)>,
    restarts: Vec<RestartWindow>,
    chaos: Option<ChaosFaults>,
    chaos_state: u64,
}

impl FaultPlan {
    /// No faults.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Marks `peer` as crashed: it neither sends nor receives.
    pub fn crash(&mut self, peer: u32) {
        self.crashed.insert(peer);
    }

    /// Silently drops every message on the directed link `from → to`.
    pub fn partition_link(&mut self, from: u32, to: u32) {
        self.drop_links.insert((from, to));
    }

    /// Lets `peer` send `sends` messages, then crashes it (models a member
    /// dying mid-protocol). The final allowed send still departs, but the
    /// peer is reported crashed from that exact boundary on.
    pub fn crash_after_sends(&mut self, peer: u32, sends: u64) {
        self.drop_after.push((peer, sends));
        self.sends_seen.push((peer, 0));
    }

    /// Crash-restart: after `after` send attempts involving `peer` (in
    /// either direction), the next `down_for` attempts involving it are
    /// dropped, then the peer is reachable again. Clock-free, so tests
    /// stay deterministic.
    pub fn crash_restart(&mut self, peer: u32, after: u64, down_for: u64) {
        self.restarts.push(RestartWindow {
            peer,
            after,
            down_for,
            seen: 0,
        });
    }

    /// Enables seeded probabilistic link faults on every non-crashed link.
    pub fn chaos(&mut self, chaos: ChaosFaults) {
        self.chaos_state = chaos.seed;
        self.chaos = Some(chaos);
    }

    /// Whether probabilistic faults (and thus delayed deliveries) are
    /// possible under this plan.
    #[must_use]
    pub fn has_chaos(&self) -> bool {
        self.chaos.is_some()
    }

    /// Whether `peer` is (currently) crashed.
    #[must_use]
    pub fn is_crashed(&self, peer: u32) -> bool {
        if self.crashed.contains(&peer) {
            return true;
        }
        self.restarts.iter().any(|w| w.peer == peer && w.dark())
    }

    /// Evaluates a send attempt; returns `true` if the message must be
    /// dropped. Mutates internal counters for `crash_after_sends`.
    pub fn on_send(&mut self, from: u32, to: u32) -> bool {
        !self.decide(from, to).deliver
    }

    /// Evaluates a send attempt, returning the full fault decision
    /// (drop / duplicate / delayed delivery). Mutates internal counters
    /// and the chaos PRNG stream.
    pub fn decide(&mut self, from: u32, to: u32) -> SendDecision {
        if self.crashed.contains(&from) || self.crashed.contains(&to) {
            return SendDecision::DROP;
        }
        if self.drop_links.contains(&(from, to)) {
            return SendDecision::DROP;
        }
        for (i, &(peer, limit)) in self.drop_after.iter().enumerate() {
            if peer == from {
                let seen = &mut self.sends_seen[i].1;
                *seen += 1;
                if *seen >= limit {
                    // The peer dies at this exact boundary: the final
                    // allowed send still departs, but `is_crashed` must
                    // already report it.
                    self.crashed.insert(peer);
                }
                if *seen > limit {
                    return SendDecision::DROP;
                }
            }
        }
        let mut dark = false;
        for w in &mut self.restarts {
            if w.peer == from || w.peer == to {
                w.seen += 1;
                dark |= w.dark();
            }
        }
        if dark {
            return SendDecision::DROP;
        }
        let Some(chaos) = self.chaos else {
            return SendDecision::DELIVER;
        };
        // Always draw the same number of values per send so the fault
        // schedule depends only on the send sequence, not on outcomes.
        let drop_draw = unit_f64(splitmix64(&mut self.chaos_state));
        let dup_draw = unit_f64(splitmix64(&mut self.chaos_state));
        let delay_draw = splitmix64(&mut self.chaos_state);
        if drop_draw < chaos.drop_rate {
            return SendDecision::DROP;
        }
        let duplicates = u32::from(dup_draw < chaos.duplicate_rate);
        let delay = if chaos.reorder_window_ms > 0 {
            let ms = delay_draw % (u64::from(chaos.reorder_window_ms) + 1);
            (ms > 0).then(|| Duration::from_millis(ms))
        } else {
            None
        };
        SendDecision {
            deliver: true,
            duplicates,
            delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_by_default() {
        let mut plan = FaultPlan::none();
        assert!(!plan.on_send(0, 1));
        assert!(!plan.is_crashed(0));
    }

    #[test]
    fn crashed_peer_drops_both_directions() {
        let mut plan = FaultPlan::none();
        plan.crash(1);
        assert!(plan.on_send(1, 0), "crashed sender");
        assert!(plan.on_send(0, 1), "crashed receiver");
        assert!(!plan.on_send(0, 2));
    }

    #[test]
    fn partition_is_directional() {
        let mut plan = FaultPlan::none();
        plan.partition_link(0, 1);
        assert!(plan.on_send(0, 1));
        assert!(!plan.on_send(1, 0));
    }

    #[test]
    fn crash_after_sends_counts() {
        let mut plan = FaultPlan::none();
        plan.crash_after_sends(3, 2);
        assert!(!plan.on_send(3, 0));
        assert!(!plan.on_send(3, 1));
        assert!(plan.on_send(3, 2), "third send crashes the peer");
        assert!(plan.is_crashed(3));
        assert!(plan.on_send(0, 3), "now unreachable too");
    }

    #[test]
    fn crash_at_send_boundary_is_reported() {
        let mut plan = FaultPlan::none();
        plan.crash_after_sends(3, 2);
        assert!(!plan.on_send(3, 0));
        assert!(!plan.is_crashed(3), "one send left");
        assert!(!plan.on_send(3, 1), "final allowed send still departs");
        assert!(
            plan.is_crashed(3),
            "peer must be reported crashed at the exact boundary"
        );
    }

    #[test]
    fn crash_restart_window_is_deterministic() {
        let mut plan = FaultPlan::none();
        plan.crash_restart(1, 2, 3);
        assert!(!plan.on_send(1, 0)); // 1
        assert!(!plan.on_send(0, 1)); // 2: last attempt before outage
        assert!(!plan.is_crashed(1));
        assert!(plan.on_send(1, 2)); // 3: dark
        assert!(plan.is_crashed(1));
        assert!(plan.on_send(2, 1)); // 4: dark
        assert!(plan.on_send(1, 0)); // 5: dark
        assert!(!plan.on_send(0, 1), "peer restarted"); // 6
        assert!(!plan.is_crashed(1));
    }

    #[test]
    fn chaos_schedule_is_a_function_of_the_seed() {
        let schedule = |seed: u64| -> Vec<SendDecision> {
            let mut plan = FaultPlan::none();
            plan.chaos(ChaosFaults {
                seed,
                drop_rate: 0.2,
                duplicate_rate: 0.2,
                reorder_window_ms: 5,
            });
            (0..64).map(|i| plan.decide(i % 3, (i + 1) % 3)).collect()
        };
        assert_eq!(schedule(9), schedule(9), "same seed, same schedule");
        assert_ne!(schedule(9), schedule(10), "different seed differs");
        let touched = schedule(9)
            .iter()
            .any(|d| !d.deliver || d.duplicates > 0 || d.delay.is_some());
        assert!(touched, "chaos at these rates must inject something");
    }

    #[test]
    fn chaos_rates_zero_is_clean() {
        let mut plan = FaultPlan::none();
        plan.chaos(ChaosFaults {
            seed: 4,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            reorder_window_ms: 0,
        });
        for i in 0..32 {
            assert_eq!(plan.decide(i % 2, 1 - i % 2), SendDecision::DELIVER);
        }
    }
}
