//! Traffic metrics.
//!
//! The paper's Table 3 discussion quantifies GenDPR's bandwidth: count
//! vectors cost `4·L_des` bytes plus ~30% encryption overhead, while *not*
//! shipping genomes saves `2·L_des·N_T` bits. These counters let the bench
//! harness reproduce that accounting: every envelope records its plaintext
//! and on-wire (ciphertext) sizes per directed link.

use std::collections::HashMap;

/// Counters for one directed link or the whole network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficStats {
    /// Messages delivered.
    pub messages: u64,
    /// Application payload bytes before encryption/framing.
    pub plaintext_bytes: u64,
    /// Bytes actually put on the wire.
    pub wire_bytes: u64,
}

impl TrafficStats {
    /// Adds one message's sizes.
    pub fn record(&mut self, plaintext: usize, wire: usize) {
        self.messages += 1;
        self.plaintext_bytes += plaintext as u64;
        self.wire_bytes += wire as u64;
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.messages += other.messages;
        self.plaintext_bytes += other.plaintext_bytes;
        self.wire_bytes += other.wire_bytes;
    }

    /// Ciphertext expansion factor (wire / plaintext); 1.0 when nothing was
    /// sent.
    #[must_use]
    pub fn expansion(&self) -> f64 {
        if self.plaintext_bytes == 0 {
            1.0
        } else {
            self.wire_bytes as f64 / self.plaintext_bytes as f64
        }
    }
}

/// Per-link traffic accounting, keyed by `(from, to)` peer indices.
#[derive(Debug, Clone, Default)]
pub struct TrafficMatrix {
    links: HashMap<(u32, u32), TrafficStats>,
}

impl TrafficMatrix {
    /// Records one message on the `(from, to)` link.
    pub fn record(&mut self, from: u32, to: u32, plaintext: usize, wire: usize) {
        self.links
            .entry((from, to))
            .or_default()
            .record(plaintext, wire);
    }

    /// Stats for one directed link.
    #[must_use]
    pub fn link(&self, from: u32, to: u32) -> TrafficStats {
        self.links.get(&(from, to)).copied().unwrap_or_default()
    }

    /// Network-wide totals.
    #[must_use]
    pub fn total(&self) -> TrafficStats {
        let mut t = TrafficStats::default();
        for s in self.links.values() {
            t.merge(s);
        }
        t
    }

    /// Total bytes received by `peer` from anyone.
    #[must_use]
    pub fn ingress(&self, peer: u32) -> TrafficStats {
        let mut t = TrafficStats::default();
        for ((_, to), s) in &self.links {
            if *to == peer {
                t.merge(s);
            }
        }
        t
    }

    /// Total bytes sent by `peer` to anyone.
    #[must_use]
    pub fn egress(&self, peer: u32) -> TrafficStats {
        let mut t = TrafficStats::default();
        for ((from, _), s) in &self.links {
            if *from == peer {
                t.merge(s);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut m = TrafficMatrix::default();
        m.record(0, 1, 100, 130);
        m.record(0, 1, 50, 66);
        m.record(2, 1, 10, 26);
        assert_eq!(m.link(0, 1).messages, 2);
        assert_eq!(m.link(0, 1).plaintext_bytes, 150);
        assert_eq!(m.link(1, 0), TrafficStats::default());
        let total = m.total();
        assert_eq!(total.messages, 3);
        assert_eq!(total.wire_bytes, 222);
    }

    #[test]
    fn ingress_egress() {
        let mut m = TrafficMatrix::default();
        m.record(0, 1, 10, 20);
        m.record(2, 1, 30, 40);
        m.record(1, 0, 5, 15);
        assert_eq!(m.ingress(1).plaintext_bytes, 40);
        assert_eq!(m.egress(1).plaintext_bytes, 5);
        assert_eq!(m.ingress(0).wire_bytes, 15);
    }

    #[test]
    fn expansion_factor() {
        let mut s = TrafficStats::default();
        assert_eq!(s.expansion(), 1.0);
        s.record(100, 130);
        assert!((s.expansion() - 1.3).abs() < 1e-12);
    }
}
