//! Simulated federation network for the GenDPR reproduction.
//!
//! GDO enclaves exchange encrypted intermediate results; this crate gives
//! them something to exchange it over:
//!
//! * [`wire`] — a strict little-endian binary codec with a
//!   [`wire_struct!`] derive macro (no serde format crate is available
//!   offline, see `DESIGN.md` §4),
//! * [`transport`] — the [`Transport`] trait plus an in-memory reliable
//!   in-order message fabric with per-link traffic metering,
//! * [`tcp`] — the same contract over real sockets: length-prefixed
//!   framing, dial retry with backoff, deadline-bounded connects — the
//!   substrate of the `gendpr node` daemon,
//! * [`client`] — length-prefixed message I/O for client ↔ daemon
//!   streams (the assessment service's submit/status/results protocol),
//! * [`metrics`] — the bandwidth accounting behind the paper's Table 3
//!   discussion,
//! * [`fault`] — deterministic crash/partition injection (the paper's
//!   no-liveness-under-faults caveat),
//! * [`killpoint`] — env-armed process-abort sites for the soak
//!   harness's seeded SIGKILL-equivalent crashes,
//! * [`latency`] — an affine latency model for geo-distributed estimates.
//!
//! # Example
//!
//! ```
//! use gendpr_fednet::transport::{Network, PeerId};
//!
//! let net = Network::new();
//! let alice = net.register(PeerId(0));
//! let bob = net.register(PeerId(1));
//! alice.send(PeerId(1), b"encrypted counts".to_vec(), 16)?;
//! assert_eq!(bob.recv()?.payload, b"encrypted counts");
//! # Ok::<(), gendpr_fednet::transport::NetError>(())
//! ```

pub mod client;
pub mod fault;
pub mod killpoint;
pub mod latency;
pub mod metrics;
pub mod tcp;
pub mod telemetry;
pub mod transport;
pub mod wire;

pub use fault::FaultPlan;
pub use latency::LatencyModel;
pub use metrics::{TrafficMatrix, TrafficStats};
pub use tcp::{TcpOptions, TcpTransport};
pub use transport::{Endpoint, Envelope, NetError, Network, PeerId, Transport};
