//! Prometheus text exposition over a minimal blocking HTTP responder.
//!
//! The server answers `GET /metrics` (and `GET /`) with the global
//! registry rendered in text format 0.0.4, one short-lived connection per
//! scrape, on a dedicated thread. It understands just enough HTTP/1.x for
//! Prometheus, curl, and a shell `/dev/tcp` scrape; anything else gets a
//! 404 or 400. The listener is non-blocking and poll-driven: the thread
//! alternates accepting ready connections with a short sleep, so dropping
//! the server stops it within one poll interval — no self-connect poke,
//! and no dependence on the listener ever seeing another connection.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest request head we bother reading before answering.
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Socket deadline for reading the request and writing the response.
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// How long the accept loop sleeps when no connection is pending; bounds
/// shutdown latency and adds at most this much to a scrape's wait.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// A running exposition endpoint. Dropping it stops the listener thread.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9095`; port 0 picks a free port) and
    /// serves the global registry until the returned server is dropped.
    pub fn start<A: ToSocketAddrs>(addr: A) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("gendpr-metrics".into())
            .spawn(move || serve_loop(listener, flag))?;
        Ok(MetricsServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (useful when started on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn serve_loop(listener: TcpListener, shutdown: Arc<AtomicBool>) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Scrapes are rare and the render is cheap; serving inline
                // keeps the thread count flat.
                let _ = answer(stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            // Transient accept errors (per-connection resets); don't spin.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Reads one request head and writes one response.
fn answer(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut head = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < MAX_REQUEST_BYTES {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let request_line = String::from_utf8_lossy(request_line);
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, body) = if method != "GET" {
        ("400 Bad Request", String::from("only GET is supported\n"))
    } else if path == "/metrics" || path == "/" {
        // crate::render (not the registry directly) so the process
        // resource gauges are refreshed on every scrape.
        ("200 OK", crate::render())
    } else {
        ("404 Not Found", String::from("try /metrics\n"))
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect metrics endpoint");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_global_registry_and_404s_elsewhere() {
        crate::metrics::global()
            .counter("obs_http_test_total", "exposition test counter", &[])
            .add(5);
        let server = MetricsServer::start("127.0.0.1:0").expect("bind metrics endpoint");
        let reply = get(server.local_addr(), "/metrics");
        assert!(reply.starts_with("HTTP/1.1 200 OK"));
        assert!(reply.contains("text/plain; version=0.0.4"));
        assert!(reply.contains("obs_http_test_total 5"));
        let missing = get(server.local_addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));
        drop(server);
    }

    #[test]
    fn drop_stops_the_listener_without_a_wakeup_connection() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind metrics endpoint");
        let addr = server.local_addr();
        let started = std::time::Instant::now();
        drop(server);
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "poll-driven accept should notice shutdown within one interval"
        );
        assert!(TcpStream::connect(addr).is_err(), "listener must be closed");
    }
}
