//! Process-global metrics: counters, gauges, and histograms.
//!
//! The registry is a flat map from metric family (name + HELP + TYPE) to
//! label series, in the spirit of the Prometheus client libraries but with
//! nothing beyond `std`. Handles are cheap `Arc`-backed clones over atomics,
//! so instrumented hot paths pay one relaxed atomic RMW per update and never
//! take the registry lock after the handle is created. Registration is
//! get-or-create: asking for the same `(name, labels)` twice returns a handle
//! to the same underlying series, which lets call sites own `OnceLock`
//! statics without coordinating.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Locks a mutex, recovering the guard from a poisoned lock. Metrics are
/// monotone aggregates, so state observed mid-panic is still meaningful.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Gauge: a value that can go up and down.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Histogram over fixed upper bounds (cumulative buckets are materialised
/// only at render time; observation touches exactly one bucket).
struct HistogramInner {
    /// Ascending bucket upper bounds, exclusive of the implicit `+Inf`.
    bounds: Vec<f64>,
    /// Non-cumulative per-bucket counts; one extra slot for `+Inf`.
    buckets: Vec<AtomicU64>,
    /// Sum of all observed values, stored as `f64` bits and updated by CAS.
    sum_bits: AtomicU64,
    /// Total number of observations.
    count: AtomicU64,
}

/// Histogram handle.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let bounds: Vec<f64> = bounds.to_vec();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds,
            buckets,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        // First bucket whose upper bound is >= value; NaN lands in +Inf.
        let idx = self.0.bounds.partition_point(|&b| b < value);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.0.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.0.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records a duration in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Ascending bucket upper bounds, exclusive of the implicit `+Inf`.
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }

    /// A snapshot of the non-cumulative per-bucket counts; one extra
    /// trailing slot for `+Inf`. Subtracting two snapshots isolates a
    /// measurement window, which is how the load harness derives
    /// per-phase percentiles from the cumulative process registry.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimated `q`-quantile (`0 < q <= 1`) of everything observed so
    /// far; see [`quantile_from_counts`].
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_counts(self.bounds(), &self.bucket_counts(), q)
    }
}

/// Estimated `q`-quantile of a histogram given its bucket `bounds` and
/// non-cumulative `counts` (one extra trailing `+Inf` slot), using linear
/// interpolation within the covering bucket — the same estimator as
/// Prometheus's `histogram_quantile`. Returns `0.0` for an empty
/// histogram; observations above the last finite bound clamp to it.
pub fn quantile_from_counts(bounds: &[f64], counts: &[u64], q: f64) -> f64 {
    assert!(
        counts.len() == bounds.len() + 1,
        "counts must cover every bound plus +Inf"
    );
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut cumulative = 0u64;
    for (i, &count) in counts.iter().enumerate() {
        let below = cumulative;
        cumulative += count;
        if cumulative >= rank {
            if i == bounds.len() {
                // Inside +Inf: the best finite statement is the last bound.
                return bounds.last().copied().unwrap_or(f64::INFINITY);
            }
            let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
            let fraction = if count == 0 {
                1.0
            } else {
                (rank - below) as f64 / count as f64
            };
            return lower + (bounds[i] - lower) * fraction;
        }
    }
    bounds.last().copied().unwrap_or(f64::INFINITY)
}

/// Upper bounds for wall-clock spans: 500µs to 60s, roughly ×2.5 apart.
pub const DURATION_BUCKETS: &[f64] = &[
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    60.0,
];

/// Upper bounds for payload sizes: 64 B to 64 MiB, ×4 apart.
pub const BYTE_BUCKETS: &[f64] = &[
    64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0, 16777216.0,
    67108864.0,
];

/// One label series within a family.
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// All series sharing a metric name, HELP string, and TYPE.
struct Family {
    help: &'static str,
    kind: &'static str,
    /// Keyed by the rendered label pairs (`name="value",...`), empty for an
    /// unlabelled series. BTreeMap keeps exposition order deterministic.
    series: BTreeMap<String, Series>,
}

/// A metrics registry. Most callers want [`global`]; independent registries
/// exist only so tests can render in isolation.
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Registry {
            families: Mutex::new(BTreeMap::new()),
        }
    }

    /// Gets or creates a counter.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Counter {
        let series = self.series(name, help, "counter", labels, || {
            Series::Counter(Counter(Arc::new(AtomicU64::new(0))))
        });
        match series {
            Series::Counter(c) => c,
            _ => panic!("metric {name} registered with a different type"),
        }
    }

    /// Gets or creates a gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str, labels: &[(&str, &str)]) -> Gauge {
        let series = self.series(name, help, "gauge", labels, || {
            Series::Gauge(Gauge(Arc::new(AtomicI64::new(0))))
        });
        match series {
            Series::Gauge(g) => g,
            _ => panic!("metric {name} registered with a different type"),
        }
    }

    /// Gets or creates a histogram. `bounds` only matter on first creation;
    /// later calls for the same series return the existing buckets.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        let series = self.series(name, help, "histogram", labels, || {
            Series::Histogram(Histogram::new(bounds))
        });
        match series {
            Series::Histogram(h) => h,
            _ => panic!("metric {name} registered with a different type"),
        }
    }

    /// Shared get-or-create walking family then label series. Returns a
    /// cheap clone of the series handle.
    fn series(
        &self,
        name: &'static str,
        help: &'static str,
        kind: &'static str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
    ) -> Series {
        let key = label_key(labels);
        let mut families = lock(&self.families);
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric {name} registered as both {} and {kind}",
            family.kind
        );
        let series = family.series.entry(key).or_insert_with(make);
        match series {
            Series::Counter(c) => Series::Counter(c.clone()),
            Series::Gauge(g) => Series::Gauge(g.clone()),
            Series::Histogram(h) => Series::Histogram(h.clone()),
        }
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers, then one line per
    /// sample, with histogram buckets cumulated and closed by `+Inf`.
    pub fn render(&self) -> String {
        let families = lock(&self.families);
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind));
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&sample(name, "", labels, "", &c.get().to_string()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&sample(name, "", labels, "", &g.get().to_string()));
                    }
                    Series::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (i, bound) in h.0.bounds.iter().enumerate() {
                            cumulative += h.0.buckets[i].load(Ordering::Relaxed);
                            let le = format!("le=\"{bound}\"");
                            out.push_str(&sample(
                                name,
                                "_bucket",
                                labels,
                                &le,
                                &cumulative.to_string(),
                            ));
                        }
                        let total = h.count();
                        out.push_str(&sample(
                            name,
                            "_bucket",
                            labels,
                            "le=\"+Inf\"",
                            &total.to_string(),
                        ));
                        out.push_str(&sample(name, "_sum", labels, "", &format!("{}", h.sum())));
                        out.push_str(&sample(name, "_count", labels, "", &total.to_string()));
                    }
                }
            }
        }
        out
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// One exposition line: `name[suffix][{labels[,extra]}] value`.
fn sample(name: &str, suffix: &str, labels: &str, extra: &str, value: &str) -> String {
    let block = match (labels.is_empty(), extra.is_empty()) {
        (true, true) => String::new(),
        (true, false) => format!("{{{extra}}}"),
        (false, true) => format!("{{{labels}}}"),
        (false, false) => format!("{{{labels},{extra}}}"),
    };
    format!("{name}{suffix}{block} {value}\n")
}

/// Canonical series key: labels sorted by name, values escaped per the
/// exposition format (backslash, double quote, newline).
fn label_key(labels: &[(&str, &str)]) -> String {
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect::<Vec<_>>()
        .join(",")
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// The process-global registry that [`crate::counter`]-style helpers and the
/// exposition endpoint read.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_series() {
        let reg = Registry::new();
        let a = reg.counter("t_total", "help", &[("k", "v")]);
        let b = reg.counter("t_total", "help", &[("k", "v")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let text = reg.render();
        assert!(text.contains("# TYPE t_total counter"));
        assert!(text.contains("t_total{k=\"v\"} 3"));
    }

    #[test]
    fn histogram_buckets_cumulate_in_render() {
        let reg = Registry::new();
        let h = reg.histogram("t_seconds", "help", &[], &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 5.55).abs() < 1e-12);
        let text = reg.render();
        assert!(text.contains("t_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("t_seconds_bucket{le=\"1\"} 2"));
        assert!(text.contains("t_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("t_seconds_count 3"));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("t_q_seconds", "help", &[], &[0.1, 1.0, 10.0]);
        for _ in 0..90 {
            h.observe(0.05);
        }
        for _ in 0..10 {
            h.observe(0.5);
        }
        assert_eq!(h.bounds(), &[0.1, 1.0, 10.0]);
        assert_eq!(h.bucket_counts(), vec![90, 10, 0, 0]);
        // p50 lands mid-way through the first bucket, p95 inside the second.
        assert!((h.quantile(0.5) - 0.1 * (50.0 / 90.0)).abs() < 1e-12);
        let p95 = h.quantile(0.95);
        assert!(p95 > 0.1 && p95 <= 1.0, "p95 = {p95}");
        // Empty histogram and +Inf overflow behave predictably.
        assert_eq!(quantile_from_counts(&[1.0], &[0, 0], 0.5), 0.0);
        assert_eq!(quantile_from_counts(&[1.0], &[0, 3], 0.99), 1.0);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = Registry::new();
        let a = reg.gauge("t_depth", "help", &[("a", "1"), ("b", "2")]);
        let b = reg.gauge("t_depth", "help", &[("b", "2"), ("a", "1")]);
        a.set(7);
        assert_eq!(b.get(), 7);
    }
}
