//! RAII span timers.
//!
//! A [`SpanTimer`] measures the wall-clock time between its creation and its
//! drop, feeds the elapsed seconds into a [`Histogram`], and (at `debug`
//! level) emits a completion event. Phases instrument themselves with one
//! line and cannot forget to stop the clock on early returns.

use crate::log::{self, Level};
use crate::metrics::Histogram;
use std::time::{Duration, Instant};

/// Times a region of code into a histogram; observes on drop.
pub struct SpanTimer {
    target: &'static str,
    name: &'static str,
    histogram: Histogram,
    start: Instant,
    stopped: bool,
}

impl SpanTimer {
    /// Starts the clock. `target` is the subsystem, `name` the span.
    pub fn start(target: &'static str, name: &'static str, histogram: Histogram) -> Self {
        SpanTimer {
            target,
            name,
            histogram,
            start: Instant::now(),
            stopped: false,
        }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Stops the span early and returns its duration.
    pub fn stop(mut self) -> Duration {
        self.record();
        self.start.elapsed()
    }

    fn record(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        let seconds = self.start.elapsed().as_secs_f64();
        self.histogram.observe(seconds);
        log::event(
            Level::Debug,
            self.target,
            "span",
            &[("span", self.name.into()), ("seconds", seconds.into())],
        );
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn drop_observes_exactly_once() {
        let reg = Registry::new();
        let h = reg.histogram("t_span_seconds", "help", &[], &[1.0]);
        {
            let _span = SpanTimer::start("test", "region", h.clone());
        }
        assert_eq!(h.count(), 1);
        let span = SpanTimer::start("test", "region", h.clone());
        let d = span.stop();
        assert_eq!(h.count(), 2);
        assert!(d >= Duration::ZERO);
    }
}
