//! Process-level resource gauges, sampled from `/proc` on Linux.
//!
//! The soak harness's leak audits need the daemon's own resource
//! footprint in the same exposition it already scrapes: thread count,
//! open file descriptors and resident set size, as
//! `gendpr_process_threads`, `gendpr_process_open_fds` and
//! `gendpr_process_rss_bytes`. [`sample`] refreshes all three; it is
//! called on every render (both the HTTP endpoint and
//! `status --metrics`), so each scrape sees current values. Off Linux —
//! or when `/proc` is unreadable — the gauges simply stay at zero;
//! nothing here can fail a scrape.

use crate::metrics;

/// Refreshes the process gauges from `/proc/self`. Cheap (two small
/// pseudo-file reads and one directory scan) and infallible: on any
/// read error the affected gauge keeps its last value.
pub fn sample() {
    // Touch the gauges unconditionally so the series exist (at zero)
    // even where /proc does not.
    let threads = crate::gauge(
        "gendpr_process_threads",
        "OS threads in the daemon process",
        &[],
    );
    let fds = crate::gauge(
        "gendpr_process_open_fds",
        "Open file descriptors in the daemon process",
        &[],
    );
    let rss = crate::gauge(
        "gendpr_process_rss_bytes",
        "Resident set size of the daemon process in bytes",
        &[],
    );
    sample_into(&threads, &fds, &rss);
}

#[cfg(target_os = "linux")]
fn sample_into(threads: &metrics::Gauge, fds: &metrics::Gauge, rss: &metrics::Gauge) {
    if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("Threads:") {
                if let Ok(n) = rest.trim().parse::<i64>() {
                    threads.set(n);
                }
            } else if let Some(rest) = line.strip_prefix("VmRSS:") {
                // "VmRSS:      1234 kB"
                if let Some(kb) = rest.split_whitespace().next() {
                    if let Ok(n) = kb.parse::<i64>() {
                        rss.set(n * 1024);
                    }
                }
            }
        }
    }
    if let Ok(entries) = std::fs::read_dir("/proc/self/fd") {
        // The iterator itself holds one fd; don't count it.
        let count = entries.count() as i64;
        fds.set((count - 1).max(0));
    }
}

#[cfg(not(target_os = "linux"))]
fn sample_into(_threads: &metrics::Gauge, _fds: &metrics::Gauge, _rss: &metrics::Gauge) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_populates_the_gauges() {
        sample();
        let rendered = crate::render();
        assert!(rendered.contains("# TYPE gendpr_process_threads gauge"));
        assert!(rendered.contains("# TYPE gendpr_process_open_fds gauge"));
        assert!(rendered.contains("# TYPE gendpr_process_rss_bytes gauge"));
        #[cfg(target_os = "linux")]
        {
            let threads = crate::gauge(
                "gendpr_process_threads",
                "OS threads in the daemon process",
                &[],
            );
            assert!(threads.get() >= 1, "a live process has at least one thread");
            let rss = crate::gauge(
                "gendpr_process_rss_bytes",
                "Resident set size of the daemon process in bytes",
                &[],
            );
            assert!(rss.get() > 0, "a live process has resident memory");
        }
    }
}
