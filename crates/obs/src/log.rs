//! Leveled JSON-lines event logging.
//!
//! Events are single JSON objects written atomically to stderr, one per
//! line, so they interleave cleanly across threads and pipe straight into
//! `jq`. Logging is off unless enabled: the first event consults the
//! `GENDPR_LOG` environment variable (`off`, `error`, `warn`, `info`,
//! `debug`, `trace`), and a CLI flag can override it via [`set_level`].
//! Disabled levels cost one relaxed atomic load — call sites may build
//! field slices unconditionally as long as the values are cheap.

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The component cannot continue (lost quorum, dead ledger).
    Error = 1,
    /// Something degraded but survivable (suspicion, retry, rejected job).
    Warn = 2,
    /// Lifecycle milestones (job queued/certified, view change, listen).
    Info = 3,
    /// Per-phase detail (span completions, reconnects).
    Debug = 4,
    /// Per-message detail.
    Trace = 5,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// Logging disabled entirely.
const OFF: u8 = 0;
/// Sentinel: threshold not yet derived from the environment.
const UNSET: u8 = u8::MAX;

static THRESHOLD: AtomicU8 = AtomicU8::new(UNSET);

/// Parses a level spec. Accepts the five level names plus `off`/`none`.
pub fn parse_level(spec: &str) -> Option<u8> {
    match spec.trim().to_ascii_lowercase().as_str() {
        "off" | "none" | "" => Some(OFF),
        "error" => Some(Level::Error as u8),
        "warn" | "warning" => Some(Level::Warn as u8),
        "info" => Some(Level::Info as u8),
        "debug" => Some(Level::Debug as u8),
        "trace" => Some(Level::Trace as u8),
        _ => None,
    }
}

/// Overrides the log threshold (e.g. from `--log-level`). Returns an error
/// message naming the valid specs when `spec` is not one of them.
pub fn set_level(spec: &str) -> Result<(), String> {
    match parse_level(spec) {
        Some(v) => {
            THRESHOLD.store(v, Ordering::Relaxed);
            Ok(())
        }
        None => Err(format!(
            "invalid log level '{spec}' (expected off, error, warn, info, debug or trace)"
        )),
    }
}

/// Current threshold, deriving it from `GENDPR_LOG` on first use. The
/// derivation races benignly: every thread computes the same value.
fn threshold() -> u8 {
    let cur = THRESHOLD.load(Ordering::Relaxed);
    if cur != UNSET {
        return cur;
    }
    let env = std::env::var("GENDPR_LOG")
        .ok()
        .and_then(|s| parse_level(&s))
        .unwrap_or(OFF);
    let _ = THRESHOLD.compare_exchange(UNSET, env, Ordering::Relaxed, Ordering::Relaxed);
    THRESHOLD.load(Ordering::Relaxed)
}

/// Whether events at `level` are currently emitted.
pub fn enabled(level: Level) -> bool {
    level as u8 <= threshold()
}

/// A structured field value. `From` impls cover the common cases so call
/// sites read `("job_id", id.into())`.
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(&'a str),
    Bool(bool),
}

impl From<u64> for Value<'_> {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value<'_> {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<usize> for Value<'_> {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value<'_> {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value<'_> {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Emits one event if `level` is enabled: a JSON object with `ts_ms`,
/// `level`, `target` (subsystem), `msg`, and the given fields.
pub fn event(level: Level, target: &str, msg: &str, fields: &[(&str, Value<'_>)]) {
    if !enabled(level) {
        return;
    }
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let mut line = String::with_capacity(96);
    line.push_str(&format!(
        "{{\"ts_ms\":{ts_ms},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
        level.as_str(),
        escape_json(target),
        escape_json(msg),
    ));
    for (key, value) in fields {
        line.push_str(&format!(",\"{}\":", escape_json(key)));
        match value {
            Value::U64(v) => line.push_str(&v.to_string()),
            Value::I64(v) => line.push_str(&v.to_string()),
            Value::F64(v) if v.is_finite() => line.push_str(&v.to_string()),
            Value::F64(v) => line.push_str(&format!("\"{v}\"")),
            Value::Str(v) => line.push_str(&format!("\"{}\"", escape_json(v))),
            Value::Bool(v) => line.push_str(&v.to_string()),
        }
    }
    line.push_str("}\n");
    // One write_all per event keeps lines whole under concurrency.
    let _ = std::io::stderr().lock().write_all(line.as_bytes());
}

/// Escapes a string for inclusion inside JSON double quotes.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_specs_parse() {
        assert_eq!(parse_level("off"), Some(OFF));
        assert_eq!(parse_level("WARN"), Some(Level::Warn as u8));
        assert_eq!(parse_level(" trace "), Some(Level::Trace as u8));
        assert_eq!(parse_level("verbose"), None);
    }

    #[test]
    fn set_level_rejects_garbage_and_orders_levels() {
        assert!(set_level("nonsense").is_err());
        set_level("warn").unwrap();
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level("off").unwrap();
        assert!(!enabled(Level::Error));
    }

    #[test]
    fn json_escaping_covers_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
