//! Zero-dependency observability for the GenDPR stack.
//!
//! The paper's evaluation (§6) attributes wall-clock and bandwidth to the
//! MAF/LD/LR phases; this crate is the runtime counterpart: a process-global
//! metrics [`Registry`] (counters, gauges, histograms), RAII [`SpanTimer`]s,
//! leveled JSON-lines event logging gated by `GENDPR_LOG` / `--log-level`,
//! and Prometheus text-format exposition behind [`MetricsServer`].
//!
//! Everything here is a *pure observer*: instrumented code paths produce
//! byte-identical protocol output whether observability is on or off, which
//! the workspace's observability-equivalence tests assert end to end.
//!
//! Naming scheme (see DESIGN.md §Observability): every metric is prefixed
//! `gendpr_`, counters end in `_total`, histograms in their unit
//! (`_seconds`, `_bytes`), and label keys are lowercase identifiers.

pub mod http;
pub mod log;
pub mod metrics;
pub mod process;
pub mod span;

pub use http::MetricsServer;
pub use log::{enabled, event, set_level, Level, Value};
pub use metrics::{
    global, quantile_from_counts, Counter, Gauge, Histogram, Registry, BYTE_BUCKETS,
    DURATION_BUCKETS,
};
pub use span::SpanTimer;

/// Gets or creates a counter in the global registry.
pub fn counter(name: &'static str, help: &'static str, labels: &[(&str, &str)]) -> Counter {
    global().counter(name, help, labels)
}

/// Gets or creates a gauge in the global registry.
pub fn gauge(name: &'static str, help: &'static str, labels: &[(&str, &str)]) -> Gauge {
    global().gauge(name, help, labels)
}

/// Gets or creates a histogram in the global registry.
pub fn histogram(
    name: &'static str,
    help: &'static str,
    labels: &[(&str, &str)],
    bounds: &[f64],
) -> Histogram {
    global().histogram(name, help, labels, bounds)
}

/// Renders the global registry in the Prometheus text format, refreshing
/// the process resource gauges first so every scrape sees current
/// thread/fd/RSS readings.
pub fn render() -> String {
    process::sample();
    global().render()
}
