//! Minimal signed VCF-like variant files.
//!
//! GenDPR's threat model assumes the trusted code can "detect whether a
//! federation member has tampered with the genome data … by checking the
//! authenticity of signed VCF files" (paper §4). This module provides a
//! compact text format carrying a SNP panel plus a genotype matrix, with an
//! HMAC-SHA-256 signature line the enclave verifies before using the data.
//!
//! Format (line-oriented):
//!
//! ```text
//! ##gendpr-vcf v1
//! ##snps=<L> individuals=<N>
//! #ID CHROM POS MAJOR MINOR
//! rs1000000 1 10000 A C
//! ...
//! #GENOTYPES
//! 0101...  (one row per individual, one char per SNP)
//! ...
//! ##signature=<hex hmac over everything above>
//! ```

use crate::error::GenomicsError;
use crate::genotype::GenotypeMatrix;
use crate::snp::{SnpInfo, SnpPanel};
use gendpr_crypto::hmac::HmacSha256;

/// A parsed (and, if requested, authenticated) variant file.
#[derive(Debug, Clone)]
pub struct VariantFile {
    /// SNP metadata in panel order.
    pub panel: SnpPanel,
    /// Genotypes, one row per individual.
    pub genotypes: GenotypeMatrix,
}

/// Serializes `panel` + `genotypes` and appends an HMAC signature under
/// `key`.
///
/// # Panics
///
/// Panics if the matrix column count differs from the panel length.
#[must_use]
pub fn write_signed(panel: &SnpPanel, genotypes: &GenotypeMatrix, key: &[u8]) -> String {
    assert_eq!(
        genotypes.snps(),
        panel.len(),
        "matrix must have one column per panel SNP"
    );
    let mut out = String::new();
    out.push_str("##gendpr-vcf v1\n");
    out.push_str(&format!(
        "##snps={} individuals={}\n",
        panel.len(),
        genotypes.individuals()
    ));
    out.push_str("#ID CHROM POS MAJOR MINOR\n");
    for (_, info) in panel.iter() {
        out.push_str(&format!(
            "{} {} {} {} {}\n",
            info.name, info.chromosome, info.position, info.major_allele, info.minor_allele
        ));
    }
    out.push_str("#GENOTYPES\n");
    for i in 0..genotypes.individuals() {
        let row: String = (0..genotypes.snps())
            .map(|l| if genotypes.get(i, l) == 1 { '1' } else { '0' })
            .collect();
        out.push_str(&row);
        out.push('\n');
    }
    let tag = HmacSha256::mac(key, out.as_bytes());
    let hex: String = tag.iter().map(|b| format!("{b:02x}")).collect();
    out.push_str(&format!("##signature={hex}\n"));
    out
}

/// Parses a signed variant file, verifying its HMAC under `key`.
///
/// # Errors
///
/// Returns [`GenomicsError::SignatureInvalid`] if the signature is missing
/// or does not verify, and [`GenomicsError::ParseVcf`] on malformed content.
pub fn read_signed(text: &str, key: &[u8]) -> Result<VariantFile, GenomicsError> {
    let signature_prefix = "##signature=";
    let sig_start = text
        .rfind(signature_prefix)
        .ok_or(GenomicsError::SignatureInvalid)?;
    let body = &text[..sig_start];
    let sig_line = text[sig_start..].trim_end();
    let hex = &sig_line[signature_prefix.len()..];
    let tag = parse_hex(hex).ok_or(GenomicsError::SignatureInvalid)?;
    if !HmacSha256::verify(key, body.as_bytes(), &tag) {
        return Err(GenomicsError::SignatureInvalid);
    }
    parse_body(body)
}

/// Parses an *unsigned* variant file body (no authenticity check). Only for
/// data the caller already trusts.
///
/// # Errors
///
/// Returns [`GenomicsError::ParseVcf`] on malformed content.
pub fn read_unverified(text: &str) -> Result<VariantFile, GenomicsError> {
    let body = match text.rfind("##signature=") {
        Some(idx) => &text[..idx],
        None => text,
    };
    parse_body(body)
}

fn parse_hex(hex: &str) -> Option<Vec<u8>> {
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).ok())
        .collect()
}

fn parse_body(body: &str) -> Result<VariantFile, GenomicsError> {
    let err = |line: usize, reason: &str| GenomicsError::ParseVcf {
        line,
        reason: reason.to_string(),
    };
    let mut lines = body.lines().enumerate();

    let (_, magic) = lines.next().ok_or_else(|| err(1, "empty file"))?;
    if magic != "##gendpr-vcf v1" {
        return Err(err(1, "bad magic line"));
    }
    let (_, dims) = lines.next().ok_or_else(|| err(2, "missing dimensions"))?;
    let dims = dims
        .strip_prefix("##snps=")
        .ok_or_else(|| err(2, "missing ##snps"))?;
    let mut parts = dims.split(" individuals=");
    let snps: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(2, "bad snp count"))?;
    let individuals: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(2, "bad individual count"))?;

    let (_, header) = lines.next().ok_or_else(|| err(3, "missing SNP header"))?;
    if header != "#ID CHROM POS MAJOR MINOR" {
        return Err(err(3, "bad SNP header"));
    }

    let mut infos = Vec::with_capacity(snps);
    for _ in 0..snps {
        let (ln, line) = lines
            .next()
            .ok_or_else(|| err(4 + infos.len(), "missing SNP record"))?;
        let mut f = line.split_whitespace();
        let parse_fail = || err(ln + 1, "malformed SNP record");
        let name = f.next().ok_or_else(parse_fail)?.to_string();
        let chromosome: u8 = f
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(parse_fail)?;
        let position: u64 = f
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(parse_fail)?;
        let major_allele = f
            .next()
            .and_then(|s| s.chars().next())
            .ok_or_else(parse_fail)?;
        let minor_allele = f
            .next()
            .and_then(|s| s.chars().next())
            .ok_or_else(parse_fail)?;
        infos.push(SnpInfo {
            name,
            chromosome,
            position,
            major_allele,
            minor_allele,
        });
    }

    let (gline, marker) = lines.next().ok_or_else(|| err(0, "missing #GENOTYPES"))?;
    if marker != "#GENOTYPES" {
        return Err(err(gline + 1, "expected #GENOTYPES"));
    }

    let mut matrix = GenotypeMatrix::zeroed(individuals, snps);
    for i in 0..individuals {
        let (ln, line) = lines
            .next()
            .ok_or_else(|| err(gline + 2 + i, "missing genotype row"))?;
        if line.len() != snps {
            return Err(err(ln + 1, "genotype row has wrong length"));
        }
        for (l, c) in line.chars().enumerate() {
            match c {
                '0' => {}
                '1' => matrix.set(i, l, true),
                _ => return Err(err(ln + 1, "genotype must be 0 or 1")),
            }
        }
    }

    Ok(VariantFile {
        panel: SnpPanel::new(infos),
        genotypes: matrix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticCohort;

    fn sample() -> (SnpPanel, GenotypeMatrix) {
        let sc = SyntheticCohort::builder()
            .snps(20)
            .case_individuals(7)
            .reference_individuals(1)
            .seed(2)
            .build();
        (sc.panel().clone(), sc.case().clone())
    }

    #[test]
    fn roundtrip_signed() {
        let (panel, m) = sample();
        let text = write_signed(&panel, &m, b"gdo-key");
        let parsed = read_signed(&text, b"gdo-key").unwrap();
        assert_eq!(parsed.genotypes, m);
        assert_eq!(parsed.panel, panel);
    }

    #[test]
    fn wrong_key_rejected() {
        let (panel, m) = sample();
        let text = write_signed(&panel, &m, b"gdo-key");
        assert_eq!(
            read_signed(&text, b"other-key").unwrap_err(),
            GenomicsError::SignatureInvalid
        );
    }

    #[test]
    fn tampering_with_any_genotype_detected() {
        let (panel, m) = sample();
        let text = write_signed(&panel, &m, b"k");
        // Flip a genotype character in the body.
        let idx = text.find("#GENOTYPES").unwrap() + "#GENOTYPES\n".len();
        let mut tampered: Vec<u8> = text.into_bytes();
        tampered[idx] = if tampered[idx] == b'0' { b'1' } else { b'0' };
        let tampered = String::from_utf8(tampered).unwrap();
        assert_eq!(
            read_signed(&tampered, b"k").unwrap_err(),
            GenomicsError::SignatureInvalid
        );
    }

    #[test]
    fn missing_signature_rejected() {
        let (panel, m) = sample();
        let text = write_signed(&panel, &m, b"k");
        let body = &text[..text.rfind("##signature=").unwrap()];
        assert_eq!(
            read_signed(body, b"k").unwrap_err(),
            GenomicsError::SignatureInvalid
        );
        // But the unverified reader accepts it.
        assert!(read_unverified(body).is_ok());
    }

    #[test]
    fn malformed_bodies_report_lines() {
        let cases = [
            ("", "empty file"),
            ("##wrong\n", "bad magic"),
            ("##gendpr-vcf v1\n##snps=x individuals=2\n", "bad snp count"),
            (
                "##gendpr-vcf v1\n##snps=1 individuals=1\n#BAD HEADER\n",
                "bad SNP header",
            ),
            (
                "##gendpr-vcf v1\n##snps=1 individuals=1\n#ID CHROM POS MAJOR MINOR\nrs1 zz 5 A C\n",
                "malformed SNP record",
            ),
            (
                "##gendpr-vcf v1\n##snps=1 individuals=1\n#ID CHROM POS MAJOR MINOR\nrs1 1 5 A C\n#GENOTYPES\n2\n",
                "genotype must be 0 or 1",
            ),
            (
                "##gendpr-vcf v1\n##snps=1 individuals=1\n#ID CHROM POS MAJOR MINOR\nrs1 1 5 A C\n#GENOTYPES\n01\n",
                "wrong length",
            ),
        ];
        for (text, needle) in cases {
            let e = read_unverified(text).unwrap_err();
            assert!(e.to_string().contains(needle), "expected {needle:?} in {e}");
        }
    }

    #[test]
    fn empty_matrix_roundtrips() {
        let panel = SnpPanel::synthetic(3);
        let m = GenotypeMatrix::zeroed(0, 3);
        let text = write_signed(&panel, &m, b"k");
        let parsed = read_signed(&text, b"k").unwrap();
        assert_eq!(parsed.genotypes.individuals(), 0);
    }
}
