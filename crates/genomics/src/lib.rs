//! Genome data model for the GenDPR reproduction.
//!
//! GWAS encode each individual's genotype at `L` SNP positions as one bit
//! per SNP (0 = major allele only, 1 = minor allele present) — Table 1 of
//! the paper. This crate provides:
//!
//! * [`snp`] — SNP identifiers and panel metadata,
//! * [`genotype`] — bit-packed genotype matrices with fast column counts,
//! * [`columnar`] — SNP-major transposed views for popcount-speed column
//!   and pair kernels,
//! * [`cohort`] — case/reference cohorts and federation partitioning,
//! * [`synth`] — a seeded synthetic cohort generator substituting for the
//!   paper's access-controlled dbGaP dataset (see `DESIGN.md` §4),
//! * [`vcf`] — a minimal signed VCF-like text format (the paper assumes the
//!   trusted code verifies the authenticity of signed variant files).
//!
//! # Example
//!
//! ```
//! use gendpr_genomics::synth::SyntheticCohort;
//!
//! let cohort = SyntheticCohort::builder()
//!     .snps(100)
//!     .case_individuals(50)
//!     .reference_individuals(60)
//!     .seed(1)
//!     .build();
//! assert_eq!(cohort.panel().len(), 100);
//! assert_eq!(cohort.case().individuals(), 50);
//! let shards = cohort.split_case_among(3);
//! assert_eq!(shards.iter().map(|m| m.individuals()).sum::<usize>(), 50);
//! ```

pub mod cohort;
pub mod columnar;
pub mod error;
pub mod genotype;
pub mod snp;
pub mod synth;
pub mod vcf;

pub use cohort::{Cohort, Population};
pub use columnar::ColumnarGenotypes;
pub use error::GenomicsError;
pub use genotype::GenotypeMatrix;
pub use snp::{SnpId, SnpInfo, SnpPanel};
pub use synth::SyntheticCohort;
