//! SNP-major (columnar) genotype storage.
//!
//! [`GenotypeMatrix`] packs genotypes row-major: one individual per row,
//! 64 SNPs per word. That layout is ideal for shipping shards around, but
//! the kernels the GenDPR phases hammer — per-SNP allele counts and
//! pairwise `Σ x_a·x_b` products — walk a *column*, touching one bit per
//! 8-byte stride. [`ColumnarGenotypes`] stores the transpose: each SNP is
//! a contiguous `N`-bit vector, so a column count is a straight popcount
//! sweep and a pair count is `popcount(AND)` over `N/64` words.
//!
//! The transpose itself is done 64×64 bits at a time with the classic
//! recursive block-swap (Hacker's Delight §7-3, adapted to LSB-first bit
//! order), so building the columnar view costs O(N·L/64) word operations
//! — amortized once per shard, then every kernel runs at memory speed.

use crate::genotype::GenotypeMatrix;
use crate::snp::SnpId;

/// Transposes a 64×64 bit matrix in place.
///
/// `a[r]` is row `r` with LSB-first columns: bit `c` of `a[r]` is element
/// `(r, c)`. After the call, bit `c` of `a[r]` is the original `(c, r)`.
///
/// Exported so downstream word kernels (the columnar LR search in
/// `gendpr-stats`) can re-pack between row- and SNP-major layouts without
/// reimplementing the block swap.
pub fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            // Swap the top-right block of each 2j×2j tile with its
            // bottom-left block.
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// A SNP-major copy of a [`GenotypeMatrix`]: one contiguous bit-vector of
/// `individuals` bits per SNP.
///
/// # Example
///
/// ```
/// use gendpr_genomics::columnar::ColumnarGenotypes;
/// use gendpr_genomics::genotype::GenotypeMatrix;
/// use gendpr_genomics::snp::SnpId;
///
/// let mut m = GenotypeMatrix::zeroed(3, 2);
/// m.set(0, 1, true);
/// m.set(2, 1, true);
/// let c = ColumnarGenotypes::from_matrix(&m);
/// assert_eq!(c.column_count(SnpId(1)), 2);
/// assert_eq!(c.pair_count(SnpId(0), SnpId(1)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnarGenotypes {
    individuals: usize,
    snps: usize,
    words_per_snp: usize,
    words: Vec<u64>,
}

impl ColumnarGenotypes {
    /// Builds the SNP-major view by block-transposing `m`.
    #[must_use]
    pub fn from_matrix(m: &GenotypeMatrix) -> Self {
        let individuals = m.individuals();
        let snps = m.snps();
        let words_per_row = m.words_per_row();
        let words_per_snp = individuals.div_ceil(64);
        let src = m.words();
        let mut words = vec![0u64; snps * words_per_snp];
        let mut block = [0u64; 64];
        // One 64×64 tile per (individual-block q, snp-word w).
        for q in 0..words_per_snp {
            let rows = (individuals - q * 64).min(64);
            for w in 0..words_per_row {
                for r in 0..rows {
                    block[r] = src[(q * 64 + r) * words_per_row + w];
                }
                for slot in block.iter_mut().skip(rows) {
                    *slot = 0;
                }
                transpose64(&mut block);
                let cols = (snps - w * 64).min(64);
                for (i, &col) in block.iter().enumerate().take(cols) {
                    words[(w * 64 + i) * words_per_snp + q] = col;
                }
            }
        }
        Self {
            individuals,
            snps,
            words_per_snp,
            words,
        }
    }

    /// Number of individuals (bits per SNP vector).
    #[must_use]
    pub fn individuals(&self) -> usize {
        self.individuals
    }

    /// Number of SNPs (columns of the source matrix).
    #[must_use]
    pub fn snps(&self) -> usize {
        self.snps
    }

    /// Approximate heap size in bytes (enclave memory accounting).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// The contiguous bit-vector of one SNP.
    ///
    /// # Panics
    ///
    /// Panics if `snp` is out of bounds.
    #[must_use]
    #[inline]
    pub fn snp_words(&self, snp: SnpId) -> &[u64] {
        let l = snp.index();
        assert!(l < self.snps, "snp out of bounds");
        &self.words[l * self.words_per_snp..(l + 1) * self.words_per_snp]
    }

    /// Minor-allele count of one SNP: a contiguous popcount sweep.
    #[must_use]
    pub fn column_count(&self, snp: SnpId) -> u64 {
        self.snp_words(snp)
            .iter()
            .map(|w| u64::from(w.count_ones()))
            .sum()
    }

    /// Minor-allele counts for every SNP.
    #[must_use]
    pub fn column_counts(&self) -> Vec<u64> {
        (0..self.snps)
            .map(|l| {
                self.words[l * self.words_per_snp..(l + 1) * self.words_per_snp]
                    .iter()
                    .map(|w| u64::from(w.count_ones()))
                    .sum()
            })
            .collect()
    }

    /// Pairwise product count `Σ_n x_{n,a} · x_{n,b}`: `popcount(AND)`
    /// over the two contiguous columns, four words per step.
    #[must_use]
    pub fn pair_count(&self, a: SnpId, b: SnpId) -> u64 {
        and_popcount(self.snp_words(a), self.snp_words(b))
    }

    /// Batched [`Self::pair_count`] against a fixed anchor `a`,
    /// amortizing the anchor column load across all partners.
    #[must_use]
    pub fn pair_counts(&self, a: SnpId, bs: &[SnpId]) -> Vec<u64> {
        let col_a = self.snp_words(a);
        bs.iter()
            .map(|&b| and_popcount(col_a, self.snp_words(b)))
            .collect()
    }

    /// Gathers the selected columns back into a row-major bit buffer
    /// (row stride `⌈snps.len()/64⌉` words, 64 SNPs per word, LSB-first)
    /// — the word-at-a-time kernel behind LR matrix construction, which
    /// replaces per-cell `get` loops with one 64×64 block transpose per
    /// tile.
    ///
    /// # Panics
    ///
    /// Panics if any id in `snps` is out of bounds.
    #[must_use]
    pub fn select_row_major(&self, snps: &[SnpId]) -> Vec<u64> {
        let words_per_row = snps.len().div_ceil(64);
        let mut out = vec![0u64; self.individuals * words_per_row];
        let mut block = [0u64; 64];
        for q in 0..self.words_per_snp {
            let rows = (self.individuals - q * 64).min(64);
            for w in 0..words_per_row {
                let cols = (snps.len() - w * 64).min(64);
                for (k, slot) in block.iter_mut().enumerate().take(cols) {
                    *slot = self.snp_words(snps[w * 64 + k])[q];
                }
                for slot in block.iter_mut().skip(cols) {
                    *slot = 0;
                }
                transpose64(&mut block);
                for (r, &row) in block.iter().enumerate().take(rows) {
                    out[(q * 64 + r) * words_per_row + w] = row;
                }
            }
        }
        out
    }
}

impl From<&GenotypeMatrix> for ColumnarGenotypes {
    fn from(m: &GenotypeMatrix) -> Self {
        Self::from_matrix(m)
    }
}

/// `Σ popcount(x & y)` with a four-way unrolled main loop.
#[inline]
fn and_popcount(xs: &[u64], ys: &[u64]) -> u64 {
    debug_assert_eq!(xs.len(), ys.len());
    let mut chunks_x = xs.chunks_exact(4);
    let mut chunks_y = ys.chunks_exact(4);
    let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
    for (cx, cy) in chunks_x.by_ref().zip(chunks_y.by_ref()) {
        c0 += u64::from((cx[0] & cy[0]).count_ones());
        c1 += u64::from((cx[1] & cy[1]).count_ones());
        c2 += u64::from((cx[2] & cy[2]).count_ones());
        c3 += u64::from((cx[3] & cy[3]).count_ones());
    }
    let tail: u64 = chunks_x
        .remainder()
        .iter()
        .zip(chunks_y.remainder())
        .map(|(x, y)| u64::from((x & y).count_ones()))
        .sum();
    c0 + c1 + c2 + c3 + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic splitmix64 fill, ~`density` fraction of minor alleles.
    fn random_matrix(n: usize, l: usize, seed: u64, density: f64) -> GenotypeMatrix {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut m = GenotypeMatrix::zeroed(n, l);
        for i in 0..n {
            for j in 0..l {
                if (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < density {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    #[test]
    fn transpose64_matches_naive() {
        let mut state = 7u64;
        let mut a = [0u64; 64];
        for slot in &mut a {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            *slot = state;
        }
        let original = a;
        transpose64(&mut a);
        for (r, &row) in a.iter().enumerate() {
            for (c, &col) in original.iter().enumerate() {
                assert_eq!((row >> c) & 1, (col >> r) & 1, "element ({r},{c})");
            }
        }
        // An involution: transposing twice restores the input.
        transpose64(&mut a);
        assert_eq!(a, original);
    }

    #[test]
    fn columnar_matches_row_major_on_odd_shapes() {
        // Shapes straddling word boundaries in both dimensions,
        // including snps % 64 != 0 and individuals % 64 != 0.
        for &(n, l) in &[(1, 1), (3, 70), (64, 64), (65, 63), (130, 129), (67, 200)] {
            for &density in &[0.05, 0.5, 0.95] {
                let m = random_matrix(n, l, (n * 1000 + l) as u64, density);
                let c = ColumnarGenotypes::from_matrix(&m);
                assert_eq!(c.individuals(), n);
                assert_eq!(c.snps(), l);
                assert_eq!(c.column_counts(), m.column_counts(), "{n}x{l}@{density}");
                for snp in 0..l as u32 {
                    assert_eq!(
                        c.column_count(SnpId(snp)),
                        m.column_count(SnpId(snp)),
                        "{n}x{l}@{density} col {snp}"
                    );
                }
                for a in (0..l as u32).step_by(7) {
                    for b in (0..l as u32).step_by(11) {
                        assert_eq!(
                            c.pair_count(SnpId(a), SnpId(b)),
                            m.pair_count(SnpId(a), SnpId(b)),
                            "{n}x{l}@{density} pair ({a},{b})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batched_pair_counts_match_singles() {
        let m = random_matrix(150, 90, 42, 0.3);
        let c = ColumnarGenotypes::from_matrix(&m);
        let partners: Vec<SnpId> = (0..90).step_by(3).map(SnpId).collect();
        let batched = c.pair_counts(SnpId(17), &partners);
        for (i, &b) in partners.iter().enumerate() {
            assert_eq!(batched[i], c.pair_count(SnpId(17), b));
        }
    }

    #[test]
    fn select_row_major_matches_per_cell_gets() {
        for &(n, l) in &[(1, 1), (3, 70), (65, 63), (130, 129), (67, 200)] {
            let m = random_matrix(n, l, (n * 31 + l) as u64, 0.4);
            let c = ColumnarGenotypes::from_matrix(&m);
            // A strided, boundary-straddling selection.
            let snps: Vec<SnpId> = (0..l as u32).rev().step_by(3).map(SnpId).collect();
            let words_per_row = snps.len().div_ceil(64);
            let packed = c.select_row_major(&snps);
            assert_eq!(packed.len(), n * words_per_row);
            for i in 0..n {
                for (j, id) in snps.iter().enumerate() {
                    let bit = packed[i * words_per_row + j / 64] >> (j % 64) & 1;
                    assert_eq!(bit == 1, m.get(i, id.index()) == 1, "{n}x{l} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn unused_tail_bits_do_not_leak() {
        // All-ones matrix: the last word of each column has unused high
        // bits that must stay zero or counts would overshoot.
        let mut m = GenotypeMatrix::zeroed(70, 5);
        for i in 0..70 {
            for j in 0..5 {
                m.set(i, j, true);
            }
        }
        let c = ColumnarGenotypes::from_matrix(&m);
        assert_eq!(c.column_counts(), vec![70; 5]);
        assert_eq!(c.pair_count(SnpId(0), SnpId(4)), 70);
    }

    #[test]
    fn empty_matrix_edge_cases() {
        let c = ColumnarGenotypes::from_matrix(&GenotypeMatrix::zeroed(0, 0));
        assert_eq!(c.column_counts(), Vec::<u64>::new());
        let c2 = ColumnarGenotypes::from_matrix(&GenotypeMatrix::zeroed(5, 0));
        assert_eq!(c2.column_counts(), Vec::<u64>::new());
        let c3 = ColumnarGenotypes::from_matrix(&GenotypeMatrix::zeroed(0, 3));
        assert_eq!(c3.column_counts(), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "snp out of bounds")]
    fn out_of_bounds_snp_panics() {
        let c = ColumnarGenotypes::from_matrix(&GenotypeMatrix::zeroed(2, 2));
        let _ = c.column_count(SnpId(2));
    }

    #[test]
    fn heap_bytes_reflects_packing() {
        let c = ColumnarGenotypes::from_matrix(&GenotypeMatrix::zeroed(100, 1000));
        // 100 individuals -> 2 words per SNP -> 16 kB.
        assert_eq!(c.heap_bytes(), 1000 * 2 * 8);
    }
}
