//! Bit-packed genotype matrices.
//!
//! Each individual's genotype is one bit per SNP (the paper's Table 1
//! encoding: 0 = major allele, 1 = minor allele present). A matrix of
//! `N` individuals × `L` SNPs is stored row-major with 64 SNPs per word,
//! so 14,860 genomes × 10,000 SNPs — the paper's largest setting — fits in
//! ≈ 18 MB instead of 148 MB, and per-SNP allele counts reduce to popcounts.

use crate::error::GenomicsError;
use crate::snp::SnpId;

/// A dense `individuals × snps` matrix of biallelic genotypes.
///
/// # Example
///
/// ```
/// use gendpr_genomics::genotype::GenotypeMatrix;
///
/// let mut m = GenotypeMatrix::zeroed(2, 3);
/// m.set(0, 1, true);
/// m.set(1, 1, true);
/// assert_eq!(m.get(0, 1), 1);
/// assert_eq!(m.column_counts(), vec![0, 2, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenotypeMatrix {
    individuals: usize,
    snps: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl GenotypeMatrix {
    /// Creates an all-major-allele (all-zero) matrix.
    #[must_use]
    pub fn zeroed(individuals: usize, snps: usize) -> Self {
        let words_per_row = snps.div_ceil(64);
        Self {
            individuals,
            snps,
            words_per_row,
            words: vec![0u64; individuals * words_per_row],
        }
    }

    /// Builds a matrix from row-major byte data (any nonzero = minor allele).
    ///
    /// # Errors
    ///
    /// Returns [`GenomicsError::DimensionMismatch`] if `rows` are not all of
    /// length `snps`.
    pub fn from_rows(rows: &[Vec<u8>], snps: usize) -> Result<Self, GenomicsError> {
        let mut m = Self::zeroed(rows.len(), snps);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != snps {
                return Err(GenomicsError::DimensionMismatch {
                    got: row.len(),
                    expected: snps,
                    what: "snps",
                });
            }
            for (l, &allele) in row.iter().enumerate() {
                if allele != 0 {
                    m.set(i, l, true);
                }
            }
        }
        Ok(m)
    }

    /// Number of individuals (rows).
    #[must_use]
    pub fn individuals(&self) -> usize {
        self.individuals
    }

    /// Number of SNPs (columns).
    #[must_use]
    pub fn snps(&self) -> usize {
        self.snps
    }

    /// Approximate heap size in bytes (used for enclave memory accounting).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Packed words, row-major (64 SNPs per word).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Words per packed row.
    pub(crate) fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Returns the allele of `individual` at SNP `snp` as 0 or 1.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[must_use]
    #[inline]
    pub fn get(&self, individual: usize, snp: usize) -> u8 {
        assert!(individual < self.individuals, "individual out of bounds");
        assert!(snp < self.snps, "snp out of bounds");
        let word = self.words[individual * self.words_per_row + snp / 64];
        ((word >> (snp % 64)) & 1) as u8
    }

    /// Sets the allele of `individual` at SNP `snp`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn set(&mut self, individual: usize, snp: usize, minor: bool) {
        assert!(individual < self.individuals, "individual out of bounds");
        assert!(snp < self.snps, "snp out of bounds");
        let idx = individual * self.words_per_row + snp / 64;
        let bit = 1u64 << (snp % 64);
        if minor {
            self.words[idx] |= bit;
        } else {
            self.words[idx] &= !bit;
        }
    }

    /// Minor-allele count of one column (`N₁` for that SNP).
    #[must_use]
    pub fn column_count(&self, snp: SnpId) -> u64 {
        let l = snp.index();
        assert!(l < self.snps, "snp out of bounds");
        let word_idx = l / 64;
        let bit = 1u64 << (l % 64);
        let mut count = 0u64;
        for row in 0..self.individuals {
            if self.words[row * self.words_per_row + word_idx] & bit != 0 {
                count += 1;
            }
        }
        count
    }

    /// Minor-allele counts for every column — the `caseLocalCounts[L_des]`
    /// vector each GDO outsources in the paper's pre-processing step.
    ///
    /// Works 64 rows at a time: each 64×64 bit tile is transposed in
    /// registers and its columns popcounted, instead of walking every set
    /// bit with `trailing_zeros`. Density-independent and ~word-speed.
    #[must_use]
    pub fn column_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.snps];
        let mut block = [0u64; 64];
        for q in 0..self.individuals.div_ceil(64) {
            let rows = (self.individuals - q * 64).min(64);
            for w in 0..self.words_per_row {
                for (r, slot) in block.iter_mut().enumerate().take(rows) {
                    *slot = self.words[(q * 64 + r) * self.words_per_row + w];
                }
                for slot in block.iter_mut().skip(rows) {
                    *slot = 0;
                }
                crate::columnar::transpose64(&mut block);
                let cols = (self.snps - w * 64).min(64);
                for (i, &col) in block.iter().enumerate().take(cols) {
                    counts[w * 64 + i] += u64::from(col.count_ones());
                }
            }
        }
        counts
    }

    /// Row `individual` unpacked to one byte per SNP.
    ///
    /// # Panics
    ///
    /// Panics if `individual` is out of bounds.
    #[must_use]
    pub fn row(&self, individual: usize) -> Vec<u8> {
        assert!(individual < self.individuals, "individual out of bounds");
        (0..self.snps).map(|l| self.get(individual, l)).collect()
    }

    /// Pairwise product count `Σ_n x_{n,a} · x_{n,b}` — both minor.
    ///
    /// This and [`Self::column_count`] are exactly the second-order moments
    /// GDO enclaves outsource during the LD phase.
    #[must_use]
    pub fn pair_count(&self, a: SnpId, b: SnpId) -> u64 {
        let (la, lb) = (a.index(), b.index());
        assert!(la < self.snps && lb < self.snps, "snp out of bounds");
        let (wa, ba) = (la / 64, 1u64 << (la % 64));
        let (wb, bb) = (lb / 64, 1u64 << (lb % 64));
        let mut count = 0u64;
        for row in 0..self.individuals {
            let base = row * self.words_per_row;
            let has_a = self.words[base + wa] & ba != 0;
            let has_b = self.words[base + wb] & bb != 0;
            if has_a && has_b {
                count += 1;
            }
        }
        count
    }

    /// Creates a sub-matrix containing rows `[start, start + len)`.
    ///
    /// Used to shard a cohort across federation members.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the matrix.
    #[must_use]
    pub fn row_range(&self, start: usize, len: usize) -> GenotypeMatrix {
        assert!(start + len <= self.individuals, "row range out of bounds");
        let mut out = Self::zeroed(len, self.snps);
        let src = start * self.words_per_row;
        out.words
            .copy_from_slice(&self.words[src..src + len * self.words_per_row]);
        out
    }

    /// Creates a sub-matrix containing columns `[start, start + len)`.
    ///
    /// `start` must sit on a 64-SNP word boundary so the packed words can
    /// be copied verbatim — every surviving bit keeps its in-word
    /// position, which is what lets sharded columnar kernels reproduce
    /// the whole-panel arithmetic exactly.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not word-aligned or the range exceeds the
    /// matrix.
    #[must_use]
    pub fn column_range(&self, start: usize, len: usize) -> GenotypeMatrix {
        assert!(
            start.is_multiple_of(64),
            "column range must start on a word boundary"
        );
        assert!(start + len <= self.snps, "column range out of bounds");
        let mut out = Self::zeroed(self.individuals, len);
        let word_start = start / 64;
        let words = len.div_ceil(64);
        let tail_bits = len % 64;
        let tail_mask = if tail_bits == 0 {
            u64::MAX
        } else {
            (1u64 << tail_bits) - 1
        };
        for row in 0..self.individuals {
            let src = row * self.words_per_row + word_start;
            let dst = row * out.words_per_row;
            out.words[dst..dst + words].copy_from_slice(&self.words[src..src + words]);
            if words > 0 {
                out.words[dst + words - 1] &= tail_mask;
            }
        }
        out
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`GenomicsError::DimensionMismatch`] if SNP counts differ.
    pub fn stack(&self, other: &GenotypeMatrix) -> Result<GenotypeMatrix, GenomicsError> {
        if self.snps != other.snps {
            return Err(GenomicsError::DimensionMismatch {
                got: other.snps,
                expected: self.snps,
                what: "snps",
            });
        }
        let mut out = Self::zeroed(self.individuals + other.individuals, self.snps);
        out.words[..self.words.len()].copy_from_slice(&self.words);
        out.words[self.words.len()..].copy_from_slice(&other.words);
        Ok(out)
    }

    /// Restricts the matrix to the given columns, in the given order.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of bounds.
    #[must_use]
    pub fn select_columns(&self, snps: &[SnpId]) -> GenotypeMatrix {
        let mut out = Self::zeroed(self.individuals, snps.len());
        for (new_l, id) in snps.iter().enumerate() {
            let old_l = id.index();
            assert!(old_l < self.snps, "snp out of bounds");
            for row in 0..self.individuals {
                if self.get(row, old_l) == 1 {
                    out.set(row, new_l, true);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkerboard(n: usize, l: usize) -> GenotypeMatrix {
        let mut m = GenotypeMatrix::zeroed(n, l);
        for i in 0..n {
            for j in 0..l {
                if (i + j) % 2 == 0 {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = GenotypeMatrix::zeroed(3, 130); // crosses word boundaries
        m.set(1, 0, true);
        m.set(1, 63, true);
        m.set(1, 64, true);
        m.set(2, 129, true);
        assert_eq!(m.get(1, 0), 1);
        assert_eq!(m.get(1, 63), 1);
        assert_eq!(m.get(1, 64), 1);
        assert_eq!(m.get(2, 129), 1);
        assert_eq!(m.get(0, 0), 0);
        m.set(1, 63, false);
        assert_eq!(m.get(1, 63), 0);
    }

    #[test]
    fn column_counts_match_scalar_path() {
        let m = checkerboard(13, 70);
        let fast = m.column_counts();
        #[allow(clippy::needless_range_loop)]
        for l in 0..70 {
            assert_eq!(fast[l], m.column_count(SnpId(l as u32)), "col {l}");
            let manual: u64 = (0..13).map(|i| u64::from(m.get(i, l))).sum();
            assert_eq!(fast[l], manual);
        }
    }

    #[test]
    fn pair_count_matches_manual() {
        let m = checkerboard(10, 8);
        for a in 0..8u32 {
            for b in 0..8u32 {
                let manual: u64 = (0..10)
                    .map(|i| u64::from(m.get(i, a as usize) & m.get(i, b as usize)))
                    .sum();
                assert_eq!(m.pair_count(SnpId(a), SnpId(b)), manual);
            }
        }
    }

    #[test]
    fn from_rows_validates_dimensions() {
        let rows = vec![vec![0u8, 1, 0], vec![1, 1]];
        let err = GenotypeMatrix::from_rows(&rows, 3).unwrap_err();
        assert!(matches!(
            err,
            GenomicsError::DimensionMismatch { got: 2, .. }
        ));
        let ok = GenotypeMatrix::from_rows(&[vec![0, 1, 1]], 3).unwrap();
        assert_eq!(ok.row(0), vec![0, 1, 1]);
    }

    #[test]
    fn row_range_and_stack_are_inverses() {
        let m = checkerboard(9, 33);
        let top = m.row_range(0, 4);
        let bottom = m.row_range(4, 5);
        assert_eq!(top.individuals(), 4);
        assert_eq!(bottom.individuals(), 5);
        assert_eq!(top.stack(&bottom).unwrap(), m);
    }

    #[test]
    fn column_range_preserves_bits_and_masks_the_tail() {
        let m = checkerboard(9, 150); // 3 words per row, ragged tail
        for (start, len) in [(0usize, 64usize), (64, 64), (64, 86), (128, 22), (0, 150)] {
            let sub = m.column_range(start, len);
            assert_eq!(sub.snps(), len);
            assert_eq!(sub.individuals(), 9);
            for i in 0..9 {
                for j in 0..len {
                    assert_eq!(
                        sub.get(i, j),
                        m.get(i, start + j),
                        "({start},{len}) @ {i},{j}"
                    );
                }
            }
            // The tail word must be clean so popcount kernels see only
            // in-range bits.
            let counts = sub.column_counts();
            let total: u64 = counts.iter().sum();
            let manual: u64 = (0..9)
                .map(|i| {
                    (0..len)
                        .map(|j| u64::from(m.get(i, start + j)))
                        .sum::<u64>()
                })
                .sum();
            assert_eq!(total, manual);
        }
        let empty = m.column_range(64, 0);
        assert_eq!(empty.snps(), 0);
    }

    #[test]
    #[should_panic(expected = "word boundary")]
    fn column_range_rejects_unaligned_start() {
        let m = checkerboard(2, 100);
        let _ = m.column_range(32, 10);
    }

    #[test]
    fn stack_rejects_mismatched_snps() {
        let a = GenotypeMatrix::zeroed(2, 5);
        let b = GenotypeMatrix::zeroed(2, 6);
        assert!(a.stack(&b).is_err());
    }

    #[test]
    fn select_columns_projects() {
        let m = checkerboard(4, 10);
        let sel = m.select_columns(&[SnpId(9), SnpId(0), SnpId(4)]);
        assert_eq!(sel.snps(), 3);
        for i in 0..4 {
            assert_eq!(sel.get(i, 0), m.get(i, 9));
            assert_eq!(sel.get(i, 1), m.get(i, 0));
            assert_eq!(sel.get(i, 2), m.get(i, 4));
        }
    }

    #[test]
    fn heap_bytes_reflects_packing() {
        let m = GenotypeMatrix::zeroed(100, 1000);
        // 1000 SNPs -> 16 words/row -> 12.8 kB, far below the byte encoding.
        assert_eq!(m.heap_bytes(), 100 * 16 * 8);
    }

    #[test]
    #[should_panic(expected = "snp out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = GenotypeMatrix::zeroed(1, 1);
        let _ = m.get(0, 1);
    }

    #[test]
    fn empty_matrix_edge_cases() {
        let m = GenotypeMatrix::zeroed(0, 0);
        assert_eq!(m.column_counts(), Vec::<u64>::new());
        assert_eq!(m.individuals(), 0);
        let m2 = GenotypeMatrix::zeroed(5, 0);
        assert_eq!(m2.column_counts(), Vec::<u64>::new());
    }
}
