//! Case/reference cohorts and federation partitioning.
//!
//! A GenDPR study involves a *case* population (individuals with the
//! phenotype of interest), distributed across the federation's GDOs, and a
//! *reference* population (e.g. 1000 Genomes) that every member can access
//! and that the leader uses for the MAF/LD/LR computations. Like the
//! paper's evaluation, we use the study's control population as reference.

use crate::error::GenomicsError;
use crate::genotype::GenotypeMatrix;
use crate::snp::SnpPanel;

/// Which population an individual belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Population {
    /// Has the phenotype of interest; membership in this group is what an
    /// adversary tries to infer.
    Case,
    /// Does not have the phenotype.
    Control,
    /// Public panel used as the LR-test's null model.
    Reference,
}

impl std::fmt::Display for Population {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Case => "case",
            Self::Control => "control",
            Self::Reference => "reference",
        })
    }
}

/// A complete study dataset: panel metadata, pooled case genotypes and the
/// shared reference population.
#[derive(Debug, Clone)]
pub struct Cohort {
    panel: SnpPanel,
    case: GenotypeMatrix,
    reference: GenotypeMatrix,
}

impl Cohort {
    /// Assembles a cohort.
    ///
    /// # Errors
    ///
    /// Returns [`GenomicsError::DimensionMismatch`] if the matrices do not
    /// have exactly one column per panel SNP.
    pub fn new(
        panel: SnpPanel,
        case: GenotypeMatrix,
        reference: GenotypeMatrix,
    ) -> Result<Self, GenomicsError> {
        for (m, _name) in [(&case, "case"), (&reference, "reference")] {
            if m.snps() != panel.len() {
                return Err(GenomicsError::DimensionMismatch {
                    got: m.snps(),
                    expected: panel.len(),
                    what: "snps",
                });
            }
        }
        Ok(Self {
            panel,
            case,
            reference,
        })
    }

    /// The SNP panel (`L_des`).
    #[must_use]
    pub fn panel(&self) -> &SnpPanel {
        &self.panel
    }

    /// Pooled case genotypes.
    #[must_use]
    pub fn case(&self) -> &GenotypeMatrix {
        &self.case
    }

    /// Shared reference genotypes.
    #[must_use]
    pub fn reference(&self) -> &GenotypeMatrix {
        &self.reference
    }

    /// Splits the case population into `gdos` near-equal shards (the paper
    /// divides genomes equally among federation members).
    ///
    /// The first `case % gdos` shards receive one extra individual so every
    /// genome is assigned exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `gdos == 0`.
    #[must_use]
    pub fn split_case_among(&self, gdos: usize) -> Vec<GenotypeMatrix> {
        assert!(gdos > 0, "federation must have at least one member");
        let n = self.case.individuals();
        let base = n / gdos;
        let extra = n % gdos;
        let mut shards = Vec::with_capacity(gdos);
        let mut start = 0;
        for g in 0..gdos {
            let len = base + usize::from(g < extra);
            shards.push(self.case.row_range(start, len));
            start += len;
        }
        debug_assert_eq!(start, n);
        shards
    }

    /// Restricts the study to the SNP columns `[start, start + len)`.
    ///
    /// `start` must sit on a 64-SNP word boundary (see
    /// [`GenotypeMatrix::column_range`]); the sliced cohort is a complete
    /// study over the narrower panel, so a federation built on it runs
    /// every phase with local 0-based SNP ids.
    ///
    /// # Panics
    ///
    /// Panics if `start` is unaligned or the range exceeds the panel.
    #[must_use]
    pub fn column_range(&self, start: usize, len: usize) -> Cohort {
        Self {
            panel: self.panel.range(start, len),
            case: self.case.column_range(start, len),
            reference: self.reference.column_range(start, len),
        }
    }

    /// Total number of case individuals.
    #[must_use]
    pub fn case_individuals(&self) -> usize {
        self.case.individuals()
    }

    /// Total number of reference individuals.
    #[must_use]
    pub fn reference_individuals(&self) -> usize {
        self.reference.individuals()
    }
}

impl AsRef<Cohort> for Cohort {
    fn as_ref(&self) -> &Cohort {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cohort(case_n: usize, ref_n: usize, l: usize) -> Cohort {
        Cohort::new(
            SnpPanel::synthetic(l),
            GenotypeMatrix::zeroed(case_n, l),
            GenotypeMatrix::zeroed(ref_n, l),
        )
        .unwrap()
    }

    #[test]
    fn new_validates_dimensions() {
        let panel = SnpPanel::synthetic(5);
        let bad = GenotypeMatrix::zeroed(3, 4);
        let good = GenotypeMatrix::zeroed(3, 5);
        assert!(Cohort::new(panel.clone(), bad.clone(), good.clone()).is_err());
        assert!(Cohort::new(panel.clone(), good.clone(), bad).is_err());
        assert!(Cohort::new(panel, good.clone(), good).is_ok());
    }

    #[test]
    fn split_covers_everyone_exactly_once() {
        let cohort = tiny_cohort(10, 4, 3);
        for gdos in 1..=7 {
            let shards = cohort.split_case_among(gdos);
            assert_eq!(shards.len(), gdos);
            let total: usize = shards.iter().map(GenotypeMatrix::individuals).sum();
            assert_eq!(total, 10, "gdos = {gdos}");
            // Near-equal: max-min <= 1.
            let sizes: Vec<usize> = shards.iter().map(GenotypeMatrix::individuals).collect();
            let max = sizes.iter().max().unwrap();
            let min = sizes.iter().min().unwrap();
            assert!(max - min <= 1, "gdos = {gdos}, sizes {sizes:?}");
        }
    }

    #[test]
    fn split_preserves_data() {
        let panel = SnpPanel::synthetic(4);
        let mut case = GenotypeMatrix::zeroed(5, 4);
        for i in 0..5 {
            case.set(i, i % 4, true);
        }
        let cohort = Cohort::new(panel, case.clone(), GenotypeMatrix::zeroed(2, 4)).unwrap();
        let shards = cohort.split_case_among(2);
        let rebuilt = shards[0].stack(&shards[1]).unwrap();
        assert_eq!(rebuilt, case);
    }

    #[test]
    fn column_range_scopes_panel_and_matrices() {
        let panel = SnpPanel::synthetic(130);
        let mut case = GenotypeMatrix::zeroed(3, 130);
        case.set(1, 64, true);
        case.set(2, 129, true);
        let cohort = Cohort::new(panel.clone(), case, GenotypeMatrix::zeroed(2, 130)).unwrap();
        let shard = cohort.column_range(64, 66);
        assert_eq!(shard.panel().len(), 66);
        assert_eq!(
            shard.panel().get(crate::snp::SnpId(0)),
            panel.get(crate::snp::SnpId(64))
        );
        assert_eq!(shard.case().get(1, 0), 1);
        assert_eq!(shard.case().get(2, 65), 1);
        assert_eq!(shard.reference().snps(), 66);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn split_zero_members_panics() {
        let _ = tiny_cohort(4, 2, 2).split_case_among(0);
    }

    #[test]
    fn population_display() {
        assert_eq!(Population::Case.to_string(), "case");
        assert_eq!(Population::Reference.to_string(), "reference");
    }
}
