//! Seeded synthetic cohort generation.
//!
//! The paper evaluates on 27,895 real genomes from the access-controlled
//! dbGaP dataset phs001039.v1.p1. This module is the substitution
//! documented in `DESIGN.md` §4: a deterministic generator that controls
//! exactly the properties GenDPR's three phases consume —
//!
//! * the **minor-allele-frequency spectrum** (Beta-distributed, with real
//!   mass below the 0.05 cutoff, driving Phase 1 attrition),
//! * **linkage-disequilibrium structure** (haplotype blocks with geometric
//!   lengths and within-block allele copying, driving Phase 2 attrition),
//! * **case/reference frequency divergence** (per-SNP drift plus planted
//!   effect SNPs, driving Phase 3's LR-test power).
//!
//! Everything is reproducible from a single `u64` seed.

use crate::cohort::Cohort;
use crate::genotype::GenotypeMatrix;
use crate::snp::SnpPanel;
use gendpr_crypto::rng::ChaChaRng;

/// A generated study dataset plus the ground-truth parameters it was drawn
/// from (useful for assertions in tests and benches).
#[derive(Debug, Clone)]
pub struct SyntheticCohort {
    cohort: Cohort,
    reference_freqs: Vec<f64>,
    case_freqs: Vec<f64>,
    effect_snps: Vec<usize>,
    block_starts: Vec<usize>,
}

impl SyntheticCohort {
    /// Starts configuring a generator.
    #[must_use]
    pub fn builder() -> SyntheticCohortBuilder {
        SyntheticCohortBuilder::default()
    }

    /// The generated cohort.
    #[must_use]
    pub fn cohort(&self) -> &Cohort {
        &self.cohort
    }

    /// Ground-truth reference minor-allele frequencies.
    #[must_use]
    pub fn reference_freqs(&self) -> &[f64] {
        &self.reference_freqs
    }

    /// Ground-truth case minor-allele frequencies.
    #[must_use]
    pub fn case_freqs(&self) -> &[f64] {
        &self.case_freqs
    }

    /// Indices of planted effect SNPs (strong case/control association).
    #[must_use]
    pub fn effect_snps(&self) -> &[usize] {
        &self.effect_snps
    }

    /// Indices where a new LD block starts.
    #[must_use]
    pub fn block_starts(&self) -> &[usize] {
        &self.block_starts
    }
}

impl SyntheticCohort {
    /// The SNP panel — delegates to [`Cohort::panel`].
    #[must_use]
    pub fn panel(&self) -> &SnpPanel {
        self.cohort.panel()
    }

    /// Pooled case genotypes — delegates to [`Cohort::case`].
    #[must_use]
    pub fn case(&self) -> &GenotypeMatrix {
        self.cohort.case()
    }

    /// Shared reference genotypes — delegates to [`Cohort::reference`].
    #[must_use]
    pub fn reference(&self) -> &GenotypeMatrix {
        self.cohort.reference()
    }

    /// Shards the case population — delegates to [`Cohort::split_case_among`].
    #[must_use]
    pub fn split_case_among(&self, gdos: usize) -> Vec<GenotypeMatrix> {
        self.cohort.split_case_among(gdos)
    }
}

impl AsRef<Cohort> for SyntheticCohort {
    fn as_ref(&self) -> &Cohort {
        &self.cohort
    }
}

impl From<SyntheticCohort> for Cohort {
    fn from(sc: SyntheticCohort) -> Cohort {
        sc.cohort
    }
}

/// Builder for [`SyntheticCohort`].
///
/// # Example
///
/// ```
/// use gendpr_genomics::synth::SyntheticCohort;
///
/// let a = SyntheticCohort::builder().snps(50).seed(3).build();
/// let b = SyntheticCohort::builder().snps(50).seed(3).build();
/// assert_eq!(a.case(), b.case()); // fully deterministic
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticCohortBuilder {
    snps: usize,
    case_individuals: usize,
    reference_individuals: usize,
    seed: u64,
    maf_alpha: f64,
    maf_beta: f64,
    ld_mean_block_len: f64,
    ld_rho: f64,
    effect_fraction: f64,
    effect_shift: f64,
    drift: f64,
    subpopulations: usize,
    fst: f64,
}

impl Default for SyntheticCohortBuilder {
    fn default() -> Self {
        Self {
            snps: 1_000,
            case_individuals: 1_000,
            reference_individuals: 1_000,
            seed: 0,
            maf_alpha: 0.55,
            maf_beta: 1.1,
            ld_mean_block_len: 6.0,
            ld_rho: 0.55,
            effect_fraction: 0.03,
            effect_shift: 0.10,
            drift: 0.012,
            subpopulations: 1,
            fst: 0.0,
        }
    }
}

impl SyntheticCohortBuilder {
    /// Number of SNP positions (`L_des`).
    #[must_use]
    pub fn snps(mut self, snps: usize) -> Self {
        self.snps = snps;
        self
    }

    /// Number of case individuals across the whole federation.
    #[must_use]
    pub fn case_individuals(mut self, n: usize) -> Self {
        self.case_individuals = n;
        self
    }

    /// Number of reference (≈ control) individuals.
    #[must_use]
    pub fn reference_individuals(mut self, n: usize) -> Self {
        self.reference_individuals = n;
        self
    }

    /// Master seed; every derived stream forks from it.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Beta(α, β) shape of the reference MAF spectrum (scaled to
    /// `[0.005, 0.5]`). The default puts roughly a third of SNPs below the
    /// 0.05 MAF cutoff, mirroring the attrition in the paper's Table 4.
    #[must_use]
    pub fn maf_shape(mut self, alpha: f64, beta: f64) -> Self {
        assert!(
            alpha > 0.0 && beta > 0.0,
            "Beta parameters must be positive"
        );
        self.maf_alpha = alpha;
        self.maf_beta = beta;
        self
    }

    /// Mean LD-block length in SNPs (geometric distribution) and the
    /// within-block allele-copy probability `ρ ∈ [0, 1)`.
    #[must_use]
    pub fn ld_structure(mut self, mean_block_len: f64, rho: f64) -> Self {
        assert!(mean_block_len >= 1.0, "blocks contain at least one SNP");
        assert!((0.0..1.0).contains(&rho), "rho must be in [0, 1)");
        self.ld_mean_block_len = mean_block_len;
        self.ld_rho = rho;
        self
    }

    /// Fraction of SNPs with a planted case-frequency shift and the size of
    /// that shift.
    #[must_use]
    pub fn effects(mut self, fraction: f64, shift: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        self.effect_fraction = fraction;
        self.effect_shift = shift;
        self
    }

    /// Standard deviation of the per-SNP case/reference frequency drift
    /// affecting *all* SNPs (this is what gives the LR-test its power).
    #[must_use]
    pub fn drift(mut self, sd: f64) -> Self {
        assert!(sd >= 0.0, "drift must be non-negative");
        self.drift = sd;
        self
    }

    /// Adds population stratification: individuals are assigned round-robin
    /// to `k` subpopulations whose per-SNP frequencies deviate from the
    /// ancestral frequency following the Balding–Nichols model with
    /// fixation index `fst` — the standard way GWAS methods papers model
    /// the under-represented-populations problem the paper's §3.1 raises.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `fst` is outside `[0, 1)`.
    #[must_use]
    pub fn subpopulations(mut self, k: usize, fst: f64) -> Self {
        assert!(k >= 1, "need at least one subpopulation");
        assert!((0.0..1.0).contains(&fst), "Fst must be in [0, 1)");
        self.subpopulations = k;
        self.fst = fst;
        self
    }

    /// Generates the cohort.
    ///
    /// # Panics
    ///
    /// Panics if `snps == 0`.
    #[must_use]
    pub fn build(self) -> SyntheticCohort {
        assert!(self.snps > 0, "a study needs at least one SNP");
        let mut master = ChaChaRng::from_seed_u64(self.seed);
        let mut freq_rng = master.fork("frequencies");
        let mut block_rng = master.fork("blocks");
        let mut case_rng = master.fork("case-genotypes");
        let mut ref_rng = master.fork("reference-genotypes");

        // 1. Reference MAF spectrum.
        let reference_freqs: Vec<f64> = (0..self.snps)
            .map(|_| 0.005 + 0.495 * sample_beta(&mut freq_rng, self.maf_alpha, self.maf_beta))
            .collect();

        // 2. Case frequencies: drift on every SNP, plus planted effects.
        let effect_count = (self.snps as f64 * self.effect_fraction).round() as usize;
        let mut indices: Vec<usize> = (0..self.snps).collect();
        freq_rng.shuffle(&mut indices);
        let mut effect_snps: Vec<usize> = indices.into_iter().take(effect_count).collect();
        effect_snps.sort_unstable();
        let mut case_freqs = Vec::with_capacity(self.snps);
        for (l, &p) in reference_freqs.iter().enumerate() {
            let mut q = p + self.drift * freq_rng.next_gaussian();
            if effect_snps.binary_search(&l).is_ok() {
                q += self.effect_shift;
            }
            case_freqs.push(q.clamp(0.002, 0.95));
        }

        // 2b. Population stratification: Balding–Nichols per-subpopulation
        //     frequencies around each ancestral frequency.
        let subpop_case_freqs = stratify(&mut freq_rng, &case_freqs, self.subpopulations, self.fst);
        let subpop_ref_freqs = stratify(
            &mut freq_rng,
            &reference_freqs,
            self.subpopulations,
            self.fst,
        );

        // 3. LD block boundaries (shared between populations, as real
        //    haplotype structure would be).
        let new_block_p = 1.0 / self.ld_mean_block_len;
        let mut block_starts = vec![0usize];
        for l in 1..self.snps {
            if block_rng.next_bool(new_block_p) {
                block_starts.push(l);
            }
        }

        let is_block_start = {
            let mut v = vec![false; self.snps];
            for &s in &block_starts {
                v[s] = true;
            }
            v
        };

        // 4. Genotypes: within a block, copy the previous SNP's allele with
        //    probability rho, otherwise draw from the population frequency.
        let case = generate_matrix(
            &mut case_rng,
            self.case_individuals,
            &subpop_case_freqs,
            &is_block_start,
            self.ld_rho,
        );
        let reference = generate_matrix(
            &mut ref_rng,
            self.reference_individuals,
            &subpop_ref_freqs,
            &is_block_start,
            self.ld_rho,
        );

        let cohort = Cohort::new(SnpPanel::synthetic(self.snps), case, reference)
            .expect("generator produces consistent dimensions");

        SyntheticCohort {
            cohort,
            reference_freqs,
            case_freqs,
            effect_snps,
            block_starts,
        }
    }
}

/// Per-subpopulation frequency vectors: row `s` holds subpopulation `s`'s
/// frequency for every SNP. With `k == 1` or `fst == 0` every row equals
/// the ancestral vector.
fn stratify(
    rng: &mut ChaChaRng,
    ancestral: &[f64],
    subpopulations: usize,
    fst: f64,
) -> Vec<Vec<f64>> {
    if subpopulations == 1 || fst == 0.0 {
        return vec![ancestral.to_vec()];
    }
    // Balding–Nichols: p_s ~ Beta(p(1−F)/F, (1−p)(1−F)/F).
    let scale = (1.0 - fst) / fst;
    (0..subpopulations)
        .map(|_| {
            ancestral
                .iter()
                .map(|&p| {
                    let p = p.clamp(0.01, 0.99);
                    sample_beta(rng, p * scale, (1.0 - p) * scale).clamp(0.002, 0.98)
                })
                .collect()
        })
        .collect()
}

fn generate_matrix(
    rng: &mut ChaChaRng,
    individuals: usize,
    subpop_freqs: &[Vec<f64>],
    is_block_start: &[bool],
    rho: f64,
) -> GenotypeMatrix {
    let snps = subpop_freqs[0].len();
    let k = subpop_freqs.len();
    let mut m = GenotypeMatrix::zeroed(individuals, snps);
    for n in 0..individuals {
        // Contiguous assignment: consecutive individuals share a
        // subpopulation, so federation shards are genuinely heterogeneous
        // — the geographically-distant-biocenters setting of §3.1.
        let freqs = &subpop_freqs[(n * k) / individuals.max(1)];
        let mut prev = false;
        for l in 0..snps {
            let allele = if l > 0 && !is_block_start[l] && rng.next_bool(rho) {
                prev
            } else {
                rng.next_bool(freqs[l])
            };
            if allele {
                m.set(n, l, true);
            }
            prev = allele;
        }
    }
    m
}

/// Samples Beta(α, β) via two Gamma draws (Marsaglia–Tsang).
fn sample_beta(rng: &mut ChaChaRng, alpha: f64, beta: f64) -> f64 {
    let x = sample_gamma(rng, alpha);
    let y = sample_gamma(rng, beta);
    if x + y == 0.0 {
        0.5
    } else {
        x / (x + y)
    }
}

/// Samples Gamma(shape, 1) with the Marsaglia–Tsang squeeze method.
fn sample_gamma(rng: &mut ChaChaRng, shape: f64) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
        let u: f64 = rng.next_f64().max(f64::MIN_POSITIVE);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = rng.next_gaussian();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.next_f64().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snp::SnpId;

    fn small() -> SyntheticCohort {
        SyntheticCohort::builder()
            .snps(300)
            .case_individuals(400)
            .reference_individuals(400)
            .seed(42)
            .build()
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.case(), b.case());
        assert_eq!(a.reference(), b.reference());
        assert_eq!(a.effect_snps(), b.effect_snps());
    }

    #[test]
    fn different_seed_different_data() {
        let a = small();
        let b = SyntheticCohort::builder()
            .snps(300)
            .case_individuals(400)
            .reference_individuals(400)
            .seed(43)
            .build();
        assert_ne!(a.case(), b.case());
    }

    #[test]
    fn empirical_frequencies_track_ground_truth() {
        let sc = SyntheticCohort::builder()
            .snps(100)
            .case_individuals(3_000)
            .reference_individuals(3_000)
            .ld_structure(1.0, 0.0) // independent SNPs for a clean check
            .seed(7)
            .build();
        let counts = sc.reference().column_counts();
        let n = sc.reference().individuals() as f64;
        for (l, &c) in counts.iter().enumerate() {
            let emp = c as f64 / n;
            let truth = sc.reference_freqs()[l];
            // Binomial sd ~ sqrt(p(1-p)/n) <= 0.009; allow 5 sigma.
            assert!(
                (emp - truth).abs() < 0.05,
                "snp {l}: empirical {emp:.3} vs truth {truth:.3}"
            );
        }
    }

    #[test]
    fn maf_spectrum_has_mass_below_cutoff() {
        let sc = SyntheticCohort::builder()
            .snps(2_000)
            .case_individuals(10)
            .reference_individuals(10)
            .seed(1)
            .build();
        let below = sc.reference_freqs().iter().filter(|&&p| p < 0.05).count() as f64 / 2_000.0;
        assert!(
            (0.10..0.60).contains(&below),
            "fraction below MAF cutoff = {below}"
        );
    }

    #[test]
    fn ld_blocks_induce_adjacent_correlation() {
        let sc = SyntheticCohort::builder()
            .snps(200)
            .case_individuals(2_000)
            .reference_individuals(10)
            .ld_structure(8.0, 0.8)
            .seed(5)
            .build();
        let m = sc.case();
        let n = m.individuals() as f64;
        // Average |r| over within-block adjacent pairs should clearly exceed
        // the cross-block baseline.
        let block_start: std::collections::HashSet<usize> =
            sc.block_starts().iter().copied().collect();
        let mut within = Vec::new();
        let mut across = Vec::new();
        for l in 1..200usize {
            let a = m.column_count(SnpId((l - 1) as u32)) as f64;
            let b = m.column_count(SnpId(l as u32)) as f64;
            let ab = m.pair_count(SnpId((l - 1) as u32), SnpId(l as u32)) as f64;
            let cov = ab / n - (a / n) * (b / n);
            let var_a = a / n * (1.0 - a / n);
            let var_b = b / n * (1.0 - b / n);
            if var_a <= 0.0 || var_b <= 0.0 {
                continue;
            }
            let r = cov / (var_a * var_b).sqrt();
            if block_start.contains(&l) {
                across.push(r.abs());
            } else {
                within.push(r.abs());
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&within) > mean(&across) + 0.2,
            "within {} vs across {}",
            mean(&within),
            mean(&across)
        );
    }

    #[test]
    fn effect_snps_shift_case_frequency() {
        let sc = SyntheticCohort::builder()
            .snps(500)
            .case_individuals(4_000)
            .reference_individuals(4_000)
            .effects(0.05, 0.2)
            .drift(0.0)
            .ld_structure(1.0, 0.0)
            .seed(3)
            .build();
        let case_counts = sc.case().column_counts();
        let n = sc.case().individuals() as f64;
        for &l in sc.effect_snps() {
            let emp_case = case_counts[l] as f64 / n;
            let p_ref = sc.reference_freqs()[l];
            assert!(
                emp_case > p_ref + 0.1,
                "effect snp {l}: case {emp_case:.3} vs ref {p_ref:.3}"
            );
        }
    }

    #[test]
    fn stratification_spreads_subpopulation_frequencies() {
        let fst = 0.15;
        let sc = SyntheticCohort::builder()
            .snps(60)
            .case_individuals(4_000)
            .reference_individuals(10)
            .subpopulations(2, fst)
            .ld_structure(1.0, 0.0)
            .drift(0.0)
            .effects(0.0, 0.0)
            .seed(41)
            .build();
        // Individuals are contiguously assigned, so the first and second
        // halves belong to different subpopulations; their empirical
        // frequencies must diverge far more than binomial noise allows.
        let m = sc.case();
        let half = m.individuals() / 2;
        let mut divergence = 0.0;
        for l in 0..60 {
            let (mut first, mut second) = (0u32, 0u32);
            for i in 0..m.individuals() {
                if m.get(i, l) == 1 {
                    if i < half {
                        first += 1;
                    } else {
                        second += 1;
                    }
                }
            }
            let n_half = half as f64;
            divergence += (f64::from(first) / n_half - f64::from(second) / n_half).abs();
        }
        divergence /= 60.0;
        // Balding–Nichols with Fst 0.15 around p≈0.2 gives sd ≈ 0.15 per
        // subpopulation; the mean absolute difference should be well above
        // the ~0.012 binomial noise floor.
        assert!(divergence > 0.05, "mean |p_even - p_odd| = {divergence}");

        // Without stratification the same measurement sits at noise level.
        let flat = SyntheticCohort::builder()
            .snps(60)
            .case_individuals(4_000)
            .reference_individuals(10)
            .ld_structure(1.0, 0.0)
            .drift(0.0)
            .effects(0.0, 0.0)
            .seed(41)
            .build();
        let m = flat.case();
        let half = m.individuals() / 2;
        let mut flat_div = 0.0;
        for l in 0..60 {
            let (mut first, mut second) = (0u32, 0u32);
            for i in 0..m.individuals() {
                if m.get(i, l) == 1 {
                    if i < half {
                        first += 1;
                    } else {
                        second += 1;
                    }
                }
            }
            let n_half = half as f64;
            flat_div += (f64::from(first) / n_half - f64::from(second) / n_half).abs();
        }
        flat_div /= 60.0;
        assert!(
            divergence > 3.0 * flat_div,
            "stratified {divergence} vs flat {flat_div}"
        );
    }

    #[test]
    fn balding_nichols_preserves_the_ancestral_mean() {
        let mut rng = ChaChaRng::from_seed_u64(7);
        let ancestral = vec![0.3; 500];
        let sub = stratify(&mut rng, &ancestral, 40, 0.1);
        let mean: f64 = sub.iter().flat_map(|v| v.iter()).sum::<f64>() / (40.0 * 500.0);
        assert!((mean - 0.3).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "Fst must be in [0, 1)")]
    fn stratification_validates_fst() {
        let _ = SyntheticCohort::builder().subpopulations(2, 1.0);
    }

    #[test]
    fn gamma_sampler_mean_and_variance() {
        let mut rng = ChaChaRng::from_seed_u64(9);
        for shape in [0.5f64, 1.0, 2.5, 8.0] {
            let n = 20_000;
            let draws: Vec<f64> = (0..n).map(|_| sample_gamma(&mut rng, shape)).collect();
            let mean = draws.iter().sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(0.5),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    fn beta_sampler_stays_in_unit_interval() {
        let mut rng = ChaChaRng::from_seed_u64(10);
        for _ in 0..5_000 {
            let b = sample_beta(&mut rng, 0.55, 1.1);
            assert!((0.0..=1.0).contains(&b));
        }
    }

    #[test]
    #[should_panic(expected = "at least one SNP")]
    fn zero_snps_rejected() {
        let _ = SyntheticCohort::builder().snps(0).build();
    }
}
