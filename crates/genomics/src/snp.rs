//! SNP identifiers and panel metadata.
//!
//! A GWAS is conducted over an ordered panel of `L` SNP positions
//! (`L_des` in the paper). Protocol phases communicate *indices into the
//! panel*; [`SnpId`] is a newtype for those indices so they cannot be
//! confused with individual indices or counts.

use std::fmt;

/// Index of a SNP within a [`SnpPanel`] (position `l ∈ {0, …, L−1}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SnpId(pub u32);

impl SnpId {
    /// Returns the panel index as a `usize`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SnpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SNP{}", self.0)
    }
}

impl From<u32> for SnpId {
    fn from(v: u32) -> Self {
        SnpId(v)
    }
}

/// Metadata describing one SNP position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnpInfo {
    /// Human-readable identifier, e.g. `rs4988235`.
    pub name: String,
    /// Chromosome number (1–22, 23 = X, 24 = Y).
    pub chromosome: u8,
    /// Base-pair position on the chromosome.
    pub position: u64,
    /// The major (most common) allele.
    pub major_allele: char,
    /// The minor (least common) allele.
    pub minor_allele: char,
}

impl SnpInfo {
    /// Creates a synthetic SNP record for panel slot `index`.
    ///
    /// Used by the generator: SNPs are laid out contiguously so that
    /// adjacent panel indices are adjacent on the chromosome, matching the
    /// paper's adjacent-pair LD scan.
    #[must_use]
    pub fn synthetic(index: u32) -> Self {
        const BASES: [char; 4] = ['A', 'C', 'G', 'T'];
        let major = BASES[(index % 4) as usize];
        let minor = BASES[((index / 4 + 1 + index) % 4) as usize];
        let minor = if minor == major {
            BASES[(index as usize + 2) % 4]
        } else {
            minor
        };
        Self {
            name: format!("rs{:07}", 1_000_000 + index),
            chromosome: ((index / 12_000) % 22 + 1) as u8,
            position: 10_000 + u64::from(index % 12_000) * 2_500,
            major_allele: major,
            minor_allele: minor,
        }
    }
}

/// An ordered panel of SNP positions — the study's `L_des`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnpPanel {
    snps: Vec<SnpInfo>,
}

impl SnpPanel {
    /// Creates a panel from SNP records.
    #[must_use]
    pub fn new(snps: Vec<SnpInfo>) -> Self {
        Self { snps }
    }

    /// Creates a synthetic panel of `len` SNPs.
    #[must_use]
    pub fn synthetic(len: usize) -> Self {
        Self {
            snps: (0..len as u32).map(SnpInfo::synthetic).collect(),
        }
    }

    /// Number of SNPs in the panel.
    #[must_use]
    pub fn len(&self) -> usize {
        self.snps.len()
    }

    /// Whether the panel is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.snps.is_empty()
    }

    /// Returns the record for `id`, if in range.
    #[must_use]
    pub fn get(&self, id: SnpId) -> Option<&SnpInfo> {
        self.snps.get(id.index())
    }

    /// Iterates over `(SnpId, &SnpInfo)` pairs in panel order.
    pub fn iter(&self) -> impl Iterator<Item = (SnpId, &SnpInfo)> {
        self.snps
            .iter()
            .enumerate()
            .map(|(i, s)| (SnpId(i as u32), s))
    }

    /// All SNP ids in panel order — the initial `L_des` candidate set.
    #[must_use]
    pub fn all_ids(&self) -> Vec<SnpId> {
        (0..self.snps.len() as u32).map(SnpId).collect()
    }

    /// The sub-panel covering positions `[start, start + len)`, used to
    /// scope a cohort to one SNP shard.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the panel.
    #[must_use]
    pub fn range(&self, start: usize, len: usize) -> SnpPanel {
        assert!(start + len <= self.snps.len(), "panel range out of bounds");
        Self {
            snps: self.snps[start..start + len].to_vec(),
        }
    }
}

impl FromIterator<SnpInfo> for SnpPanel {
    fn from_iter<T: IntoIterator<Item = SnpInfo>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snp_id_roundtrip_and_display() {
        let id = SnpId::from(42u32);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "SNP42");
    }

    #[test]
    fn synthetic_panel_has_distinct_alleles() {
        let panel = SnpPanel::synthetic(100);
        assert_eq!(panel.len(), 100);
        for (_, info) in panel.iter() {
            assert_ne!(info.major_allele, info.minor_allele);
        }
    }

    #[test]
    fn synthetic_positions_increase_within_chromosome() {
        let panel = SnpPanel::synthetic(1000);
        for i in 1..1000 {
            let a = panel.get(SnpId(i - 1)).unwrap();
            let b = panel.get(SnpId(i)).unwrap();
            if a.chromosome == b.chromosome {
                assert!(b.position > a.position, "at snp {i}");
            }
        }
    }

    #[test]
    fn all_ids_matches_len() {
        let panel = SnpPanel::synthetic(17);
        let ids = panel.all_ids();
        assert_eq!(ids.len(), 17);
        assert_eq!(ids[0], SnpId(0));
        assert_eq!(ids[16], SnpId(16));
        assert!(panel.get(SnpId(17)).is_none());
    }

    #[test]
    fn from_iterator_collects() {
        let panel: SnpPanel = (0..5).map(SnpInfo::synthetic).collect();
        assert_eq!(panel.len(), 5);
        assert!(!panel.is_empty());
        assert!(SnpPanel::default().is_empty());
    }
}
