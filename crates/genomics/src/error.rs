//! Error types for genome data handling.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing, parsing or verifying genome data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GenomicsError {
    /// A matrix/panel dimension did not line up.
    DimensionMismatch {
        /// What the caller supplied.
        got: usize,
        /// What the container required.
        expected: usize,
        /// Which dimension was wrong ("snps", "individuals", ...).
        what: &'static str,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The container length.
        len: usize,
        /// Which axis ("snp", "individual").
        what: &'static str,
    },
    /// A VCF-like file failed to parse.
    ParseVcf {
        /// 1-based line number.
        line: usize,
        /// Human-readable cause.
        reason: String,
    },
    /// A signed file's HMAC did not verify.
    SignatureInvalid,
    /// A federation split was requested with zero members.
    EmptyFederation,
}

impl fmt::Display for GenomicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch {
                got,
                expected,
                what,
            } => {
                write!(
                    f,
                    "dimension mismatch: got {got} {what}, expected {expected}"
                )
            }
            Self::IndexOutOfBounds { index, len, what } => {
                write!(f, "{what} index {index} out of bounds for length {len}")
            }
            Self::ParseVcf { line, reason } => {
                write!(f, "invalid variant file at line {line}: {reason}")
            }
            Self::SignatureInvalid => f.write_str("variant file signature did not verify"),
            Self::EmptyFederation => f.write_str("cannot split a cohort among zero members"),
        }
    }
}

impl Error for GenomicsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GenomicsError::DimensionMismatch {
            got: 3,
            expected: 5,
            what: "snps",
        };
        assert!(e.to_string().contains("got 3 snps"));
        assert!(GenomicsError::SignatureInvalid
            .to_string()
            .contains("signature"));
        let p = GenomicsError::ParseVcf {
            line: 12,
            reason: "bad allele".into(),
        };
        assert!(p.to_string().contains("line 12"));
    }
}
