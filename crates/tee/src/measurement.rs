//! Enclave measurements (the MRENCLAVE analogue).

use gendpr_crypto::sha256::Sha256;
use std::fmt;

/// A 256-bit enclave identity: the hash of the enclave's code identity and
/// launch configuration.
///
/// Two enclaves running the same GenDPR build with the same configuration
/// have equal measurements, which is exactly what mutual attestation
/// checks before any intermediate data flows.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Measurement([u8; 32]);

impl Measurement {
    /// Measures an enclave from its code identity string and configuration
    /// bytes.
    #[must_use]
    pub fn compute(code_identity: &str, config: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(b"gendpr/measurement/v1\0");
        h.update(&(code_identity.len() as u64).to_le_bytes());
        h.update(code_identity.as_bytes());
        h.update(&(config.len() as u64).to_le_bytes());
        h.update(config);
        Self(h.finalize())
    }

    /// The raw digest.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Reconstructs a measurement from raw bytes (e.g. off the wire).
    #[must_use]
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Self(bytes)
    }
}

impl fmt::Debug for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Measurement({self})")
    }
}

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // First 8 bytes are plenty for log output.
        for b in &self.0[..8] {
            write!(f, "{b:02x}")?;
        }
        f.write_str("…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_measurement() {
        let a = Measurement::compute("gendpr/leader", b"cfg");
        let b = Measurement::compute("gendpr/leader", b"cfg");
        assert_eq!(a, b);
    }

    #[test]
    fn any_input_change_changes_measurement() {
        let base = Measurement::compute("gendpr/leader", b"cfg");
        assert_ne!(base, Measurement::compute("gendpr/leader", b"cfg2"));
        assert_ne!(base, Measurement::compute("gendpr/member", b"cfg"));
    }

    #[test]
    fn length_prefixing_prevents_ambiguity() {
        // ("ab", "c") must differ from ("a", "bc").
        let a = Measurement::compute("ab", b"c");
        let b = Measurement::compute("a", b"bc");
        assert_ne!(a, b);
    }

    #[test]
    fn roundtrip_bytes() {
        let m = Measurement::compute("x", b"y");
        assert_eq!(Measurement::from_bytes(*m.as_bytes()), m);
    }

    #[test]
    fn display_is_short_hex() {
        let m = Measurement::compute("x", b"y");
        let s = m.to_string();
        assert_eq!(s.chars().count(), 17); // 16 hex chars + ellipsis
        assert!(format!("{m:?}").starts_with("Measurement("));
    }
}
