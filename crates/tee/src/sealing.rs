//! Sealed storage.
//!
//! GenDPR uses "a TEE data-sealing mechanism … to store data persistently
//! outside the TEE. Sealed data can only be encrypted/decrypted by the
//! enclave using its private key" (paper §4). The sealing key here is
//! derived from the platform's unique root and the enclave measurement
//! (SGX's `MRENCLAVE` policy): the same enclave build on the same machine
//! can unseal, anything else cannot.

use crate::error::TeeError;
use crate::measurement::Measurement;
use gendpr_crypto::aead::ChaCha20Poly1305;
use gendpr_crypto::hkdf;

/// A sealed blob: nonce plus AEAD ciphertext, safe to store anywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedData {
    nonce: [u8; 12],
    ciphertext: Vec<u8>,
}

impl SealedData {
    /// Total size on disk/wire.
    #[must_use]
    pub fn len(&self) -> usize {
        12 + self.ciphertext.len()
    }

    /// Whether the blob carries no ciphertext (never true for valid seals,
    /// which carry at least the tag).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ciphertext.is_empty()
    }

    /// Serializes to bytes.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.ciphertext);
        out
    }

    /// Parses from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::UnsealFailed`] if too short to carry a nonce.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TeeError> {
        if bytes.len() < 12 {
            return Err(TeeError::UnsealFailed);
        }
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&bytes[..12]);
        Ok(Self {
            nonce,
            ciphertext: bytes[12..].to_vec(),
        })
    }
}

pub(crate) fn sealing_cipher(
    sealing_root: &[u8; 32],
    measurement: &Measurement,
) -> ChaCha20Poly1305 {
    let mut key = [0u8; 32];
    hkdf::derive(
        measurement.as_bytes(),
        sealing_root,
        b"gendpr/sealing/v1",
        &mut key,
    );
    ChaCha20Poly1305::new(&key)
}

pub(crate) fn seal(
    sealing_root: &[u8; 32],
    measurement: &Measurement,
    seal_counter: u64,
    plaintext: &[u8],
    label: &[u8],
) -> SealedData {
    let cipher = sealing_cipher(sealing_root, measurement);
    // Nonce from a per-enclave monotonic counter: never reused under one key.
    let mut nonce = [0u8; 12];
    nonce[..8].copy_from_slice(&seal_counter.to_le_bytes());
    SealedData {
        nonce,
        ciphertext: cipher.seal(&nonce, plaintext, label),
    }
}

pub(crate) fn unseal(
    sealing_root: &[u8; 32],
    measurement: &Measurement,
    sealed: &SealedData,
    label: &[u8],
) -> Result<Vec<u8>, TeeError> {
    let cipher = sealing_cipher(sealing_root, measurement);
    cipher
        .open(&sealed.nonce, &sealed.ciphertext, label)
        .map_err(|_| TeeError::UnsealFailed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROOT_A: [u8; 32] = [1u8; 32];
    const ROOT_B: [u8; 32] = [2u8; 32];

    fn m(code: &str) -> Measurement {
        Measurement::compute(code, b"")
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let sealed = seal(&ROOT_A, &m("e"), 0, b"lr-matrix shard", b"phase3");
        let opened = unseal(&ROOT_A, &m("e"), &sealed, b"phase3").unwrap();
        assert_eq!(opened, b"lr-matrix shard");
    }

    #[test]
    fn other_platform_cannot_unseal() {
        let sealed = seal(&ROOT_A, &m("e"), 0, b"secret", b"");
        assert_eq!(
            unseal(&ROOT_B, &m("e"), &sealed, b""),
            Err(TeeError::UnsealFailed)
        );
    }

    #[test]
    fn other_enclave_cannot_unseal() {
        let sealed = seal(&ROOT_A, &m("good"), 0, b"secret", b"");
        assert_eq!(
            unseal(&ROOT_A, &m("evil"), &sealed, b""),
            Err(TeeError::UnsealFailed)
        );
    }

    #[test]
    fn label_mismatch_fails() {
        let sealed = seal(&ROOT_A, &m("e"), 0, b"secret", b"phase1");
        assert_eq!(
            unseal(&ROOT_A, &m("e"), &sealed, b"phase2"),
            Err(TeeError::UnsealFailed)
        );
    }

    #[test]
    fn counter_gives_distinct_nonces() {
        let a = seal(&ROOT_A, &m("e"), 0, b"same", b"");
        let b = seal(&ROOT_A, &m("e"), 1, b"same", b"");
        assert_ne!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn bytes_roundtrip_and_tamper() {
        let sealed = seal(&ROOT_A, &m("e"), 7, b"data", b"");
        let parsed = SealedData::from_bytes(&sealed.to_bytes()).unwrap();
        assert_eq!(parsed, sealed);
        assert!(!parsed.is_empty());
        let mut raw = sealed.to_bytes();
        raw[14] ^= 0xff;
        let tampered = SealedData::from_bytes(&raw).unwrap();
        assert_eq!(
            unseal(&ROOT_A, &m("e"), &tampered, b""),
            Err(TeeError::UnsealFailed)
        );
        assert_eq!(
            SealedData::from_bytes(&[0u8; 5]),
            Err(TeeError::UnsealFailed)
        );
    }
}
