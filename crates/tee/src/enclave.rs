//! The enclave abstraction.
//!
//! An [`Enclave`] hosts trusted state `S` behind an entry-point boundary.
//! Untrusted code never touches `S` directly: it calls [`Enclave::enter`]
//! (an "ecall"), which runs a closure inside the enclave with access to
//! the state and the EPC account. The enclave can quote itself, seal data
//! to its identity, and open attested channels (see [`crate::session`]).

use crate::attestation::Quote;
use crate::error::TeeError;
use crate::measurement::Measurement;
use crate::memory::EpcAccount;
use crate::platform::Platform;
use crate::sealing::{self, SealedData};

/// A running enclave hosting trusted state `S`.
#[derive(Debug)]
pub struct Enclave<S> {
    platform: Platform,
    measurement: Measurement,
    state: S,
    epc: EpcAccount,
    ecalls: u64,
    seal_counter: u64,
}

impl<S> Enclave<S> {
    pub(crate) fn launch(platform: Platform, measurement: Measurement, state: S) -> Self {
        Self {
            platform,
            measurement,
            state,
            epc: EpcAccount::default(),
            ecalls: 0,
            seal_counter: 0,
        }
    }

    /// The enclave's identity.
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Number of entries so far (ecall count).
    #[must_use]
    pub fn ecalls(&self) -> u64 {
        self.ecalls
    }

    /// Read access to the EPC meter.
    #[must_use]
    pub fn epc(&self) -> &EpcAccount {
        &self.epc
    }

    /// Enters the enclave: runs `body` with the trusted state and the EPC
    /// account.
    pub fn enter<R>(&mut self, body: impl FnOnce(&mut S, &mut EpcAccount) -> R) -> R {
        self.ecalls += 1;
        body(&mut self.state, &mut self.epc)
    }

    /// Produces an attestation quote binding `report_data` to this
    /// enclave's measurement.
    #[must_use]
    pub fn quote(&self, report_data: [u8; 32]) -> Quote {
        self.platform.quote(self.measurement, report_data)
    }

    /// Seals `plaintext` under this enclave's identity on this platform.
    /// `label` is authenticated context (e.g. which protocol phase the data
    /// belongs to).
    pub fn seal(&mut self, plaintext: &[u8], label: &[u8]) -> SealedData {
        let counter = self.seal_counter;
        self.seal_counter += 1;
        sealing::seal(
            &self.platform.inner.sealing_root,
            &self.measurement,
            counter,
            plaintext,
            label,
        )
    }

    /// Unseals data previously sealed by this enclave (same build, same
    /// platform).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::UnsealFailed`] if the blob was sealed by a
    /// different enclave/platform, under a different label, or tampered
    /// with.
    pub fn unseal(&self, sealed: &SealedData, label: &[u8]) -> Result<Vec<u8>, TeeError> {
        sealing::unseal(
            &self.platform.inner.sealing_root,
            &self.measurement,
            sealed,
            label,
        )
    }

    /// The platform hosting this enclave.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attestation::AttestationService;
    use gendpr_crypto::rng::ChaChaRng;

    fn enclave() -> Enclave<Vec<u32>> {
        let mut rng = ChaChaRng::from_seed_u64(3);
        let svc = AttestationService::new(&mut rng);
        let platform = Platform::new("gdo", &svc, &mut rng);
        platform.launch_enclave("gendpr/test", Vec::new())
    }

    #[test]
    fn enter_mutates_trusted_state_and_counts_ecalls() {
        let mut e = enclave();
        e.enter(|state, epc| {
            state.push(1);
            epc.alloc(4);
        });
        let sum: u32 = e.enter(|state, _| state.iter().sum());
        assert_eq!(sum, 1);
        assert_eq!(e.ecalls(), 2);
        assert_eq!(e.epc().in_use(), 4);
    }

    #[test]
    fn quotes_carry_the_enclave_measurement() {
        let e = enclave();
        let q = e.quote([5u8; 32]);
        assert_eq!(q.measurement, e.measurement());
        assert!(e.platform().service().verify(&q).is_ok());
    }

    #[test]
    fn seal_roundtrips_within_the_enclave() {
        let mut e = enclave();
        let sealed = e.seal(b"intermediate", b"phase2");
        assert_eq!(e.unseal(&sealed, b"phase2").unwrap(), b"intermediate");
        assert!(e.unseal(&sealed, b"phase3").is_err());
    }

    #[test]
    fn different_enclave_builds_cannot_share_seals() {
        let mut rng = ChaChaRng::from_seed_u64(4);
        let svc = AttestationService::new(&mut rng);
        let platform = Platform::new("gdo", &svc, &mut rng);
        let mut a = platform.launch_enclave("gendpr/a", ());
        let b = platform.launch_enclave("gendpr/b", ());
        let sealed = a.seal(b"x", b"");
        assert_eq!(b.unseal(&sealed, b""), Err(TeeError::UnsealFailed));
    }

    #[test]
    fn config_changes_measurement() {
        let mut rng = ChaChaRng::from_seed_u64(5);
        let svc = AttestationService::new(&mut rng);
        let platform = Platform::new("gdo", &svc, &mut rng);
        let a = platform.launch_enclave_with_config("gendpr", b"maf=0.05", ());
        let b = platform.launch_enclave_with_config("gendpr", b"maf=0.01", ());
        assert_ne!(a.measurement(), b.measurement());
    }

    #[test]
    fn sequential_seals_use_fresh_nonces() {
        let mut e = enclave();
        let s1 = e.seal(b"same payload", b"");
        let s2 = e.seal(b"same payload", b"");
        assert_ne!(s1.to_bytes(), s2.to_bytes());
    }
}
