//! A TEE-enabled machine at one federation member's premises.
//!
//! Each GDO "maintains a database with genomes and a TEE-enabled server"
//! (paper §4). The [`Platform`] models that server: it holds the
//! platform-unique sealing root (SGX's fuse key analogue) and the quoting
//! capability tied to the federation's [`AttestationService`].

use crate::attestation::{AttestationService, Quote};
use crate::enclave::Enclave;
use crate::measurement::Measurement;
use gendpr_crypto::rng::ChaChaRng;
use std::sync::Arc;

#[derive(Debug)]
pub(crate) struct PlatformInner {
    pub(crate) name: String,
    pub(crate) sealing_root: [u8; 32],
    pub(crate) service: AttestationService,
}

/// One member's TEE-enabled server.
#[derive(Debug, Clone)]
pub struct Platform {
    pub(crate) inner: Arc<PlatformInner>,
}

impl Platform {
    /// Provisions a platform registered with the federation's attestation
    /// service. The RNG seeds the platform-unique sealing root.
    #[must_use]
    pub fn new(name: &str, service: &AttestationService, rng: &mut ChaChaRng) -> Self {
        Self {
            inner: Arc::new(PlatformInner {
                name: name.to_string(),
                sealing_root: rng.gen_key(),
                service: service.clone(),
            }),
        }
    }

    /// The platform's human-readable name (for logs and metrics).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Launches an enclave hosting trusted state `state`; the measurement
    /// is computed over `code_identity` (an empty configuration).
    #[must_use]
    pub fn launch_enclave<S>(&self, code_identity: &str, state: S) -> Enclave<S> {
        self.launch_enclave_with_config(code_identity, b"", state)
    }

    /// Launches an enclave with explicit configuration bytes folded into
    /// the measurement.
    #[must_use]
    pub fn launch_enclave_with_config<S>(
        &self,
        code_identity: &str,
        config: &[u8],
        state: S,
    ) -> Enclave<S> {
        Enclave::launch(
            self.clone(),
            Measurement::compute(code_identity, config),
            state,
        )
    }

    /// Issues a quote for an enclave running on this platform — the
    /// quoting-enclave path.
    #[must_use]
    pub(crate) fn quote(&self, measurement: Measurement, report_data: [u8; 32]) -> Quote {
        self.inner.service.issue(measurement, report_data)
    }

    /// The attestation service this platform chains to.
    #[must_use]
    pub fn service(&self) -> &AttestationService {
        &self.inner.service
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_quotes_verify_against_its_service() {
        let mut rng = ChaChaRng::from_seed_u64(1);
        let svc = AttestationService::new(&mut rng);
        let platform = Platform::new("gdo-0", &svc, &mut rng);
        assert_eq!(platform.name(), "gdo-0");
        let m = Measurement::compute("code", b"");
        let q = platform.quote(m, [9u8; 32]);
        assert!(svc.verify_expected(&q, &m).is_ok());
    }

    #[test]
    fn distinct_platforms_have_distinct_sealing_roots() {
        let mut rng = ChaChaRng::from_seed_u64(2);
        let svc = AttestationService::new(&mut rng);
        let a = Platform::new("a", &svc, &mut rng);
        let b = Platform::new("b", &svc, &mut rng);
        assert_ne!(a.inner.sealing_root, b.inner.sealing_root);
    }
}
