//! Remote attestation: quotes and the attestation service.
//!
//! In real SGX, the quoting enclave signs a report over `(MRENCLAVE,
//! report_data)` and Intel's attestation service (EPID/DCAP) vouches for
//! the platform. Here a single [`AttestationService`] plays both roles: it
//! holds a root MAC key that only genuine "platforms" receive a quoting
//! capability for. Verifiers check quotes through the same service — the
//! trust anchor of the whole federation.

use crate::error::TeeError;
use crate::measurement::Measurement;
use gendpr_crypto::hmac::HmacSha256;
use gendpr_crypto::rng::ChaChaRng;
use std::sync::Arc;

/// A signed statement that an enclave with a given measurement produced
/// `report_data` on a genuine platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// The attested enclave's measurement.
    pub measurement: Measurement,
    /// 32 bytes chosen by the enclave — GenDPR binds the hash of its
    /// ephemeral handshake key here.
    pub report_data: [u8; 32],
    mac: [u8; 32],
}

impl Quote {
    /// Serializes the quote for transport (measurement ‖ report ‖ mac).
    #[must_use]
    pub fn to_bytes(&self) -> [u8; 96] {
        let mut out = [0u8; 96];
        out[..32].copy_from_slice(self.measurement.as_bytes());
        out[32..64].copy_from_slice(&self.report_data);
        out[64..].copy_from_slice(&self.mac);
        out
    }

    /// Parses a quote from transport bytes.
    #[must_use]
    pub fn from_bytes(bytes: &[u8; 96]) -> Self {
        let mut m = [0u8; 32];
        m.copy_from_slice(&bytes[..32]);
        let mut r = [0u8; 32];
        r.copy_from_slice(&bytes[32..64]);
        let mut mac = [0u8; 32];
        mac.copy_from_slice(&bytes[64..]);
        Self {
            measurement: Measurement::from_bytes(m),
            report_data: r,
            mac,
        }
    }
}

#[derive(Debug)]
struct ServiceInner {
    root_key: [u8; 32],
}

/// The federation's attestation authority.
///
/// Cloning is cheap (shared root); all platforms of one federation must be
/// created from the same service instance, exactly as all real SGX
/// platforms chain to the same Intel root.
#[derive(Debug, Clone)]
pub struct AttestationService {
    inner: Arc<ServiceInner>,
}

impl AttestationService {
    /// Creates a fresh attestation authority with a random root key.
    #[must_use]
    pub fn new(rng: &mut ChaChaRng) -> Self {
        Self {
            inner: Arc::new(ServiceInner {
                root_key: rng.gen_key(),
            }),
        }
    }

    fn mac(&self, measurement: &Measurement, report_data: &[u8; 32]) -> [u8; 32] {
        let mut mac = HmacSha256::new(&self.inner.root_key);
        mac.update(b"gendpr/quote/v1\0");
        mac.update(measurement.as_bytes());
        mac.update(report_data);
        mac.finalize()
    }

    /// Issues a quote — only reachable through a [`crate::platform::Platform`]
    /// in this simulation, standing in for the hardware-rooted quoting
    /// enclave.
    #[must_use]
    pub(crate) fn issue(&self, measurement: Measurement, report_data: [u8; 32]) -> Quote {
        let mac = self.mac(&measurement, &report_data);
        Quote {
            measurement,
            report_data,
            mac,
        }
    }

    /// Verifies a quote's authenticity.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::QuoteInvalid`] if the MAC does not verify.
    pub fn verify(&self, quote: &Quote) -> Result<(), TeeError> {
        let expected = self.mac(&quote.measurement, &quote.report_data);
        if gendpr_crypto::constant_time::ct_eq(&expected, &quote.mac) {
            Ok(())
        } else {
            Err(TeeError::QuoteInvalid)
        }
    }

    /// Verifies a quote *and* that it attests the expected enclave build.
    ///
    /// # Errors
    ///
    /// [`TeeError::QuoteInvalid`] for a forged quote,
    /// [`TeeError::MeasurementMismatch`] for a genuine quote of the wrong
    /// enclave.
    pub fn verify_expected(&self, quote: &Quote, expected: &Measurement) -> Result<(), TeeError> {
        self.verify(quote)?;
        if &quote.measurement == expected {
            Ok(())
        } else {
            Err(TeeError::MeasurementMismatch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> AttestationService {
        AttestationService::new(&mut ChaChaRng::from_seed_u64(1))
    }

    #[test]
    fn issued_quotes_verify() {
        let svc = service();
        let m = Measurement::compute("gendpr", b"");
        let q = svc.issue(m, [7u8; 32]);
        assert!(svc.verify(&q).is_ok());
        assert!(svc.verify_expected(&q, &m).is_ok());
    }

    #[test]
    fn tampered_quotes_rejected() {
        let svc = service();
        let m = Measurement::compute("gendpr", b"");
        let q = svc.issue(m, [7u8; 32]);
        let mut bad = q.clone();
        bad.report_data[0] ^= 1;
        assert_eq!(svc.verify(&bad), Err(TeeError::QuoteInvalid));
        let mut bad2 = q.to_bytes();
        bad2[95] ^= 1;
        assert_eq!(
            svc.verify(&Quote::from_bytes(&bad2)),
            Err(TeeError::QuoteInvalid)
        );
    }

    #[test]
    fn foreign_service_quotes_rejected() {
        let svc_a = service();
        let svc_b = AttestationService::new(&mut ChaChaRng::from_seed_u64(2));
        let q = svc_b.issue(Measurement::compute("gendpr", b""), [0u8; 32]);
        assert_eq!(svc_a.verify(&q), Err(TeeError::QuoteInvalid));
    }

    #[test]
    fn wrong_measurement_detected() {
        let svc = service();
        let good = Measurement::compute("gendpr/leader", b"");
        let evil = Measurement::compute("gendpr/evil", b"");
        let q = svc.issue(evil, [0u8; 32]);
        assert_eq!(
            svc.verify_expected(&q, &good),
            Err(TeeError::MeasurementMismatch)
        );
    }

    #[test]
    fn quote_wire_roundtrip() {
        let svc = service();
        let q = svc.issue(Measurement::compute("x", b"y"), [3u8; 32]);
        assert_eq!(Quote::from_bytes(&q.to_bytes()), q);
    }

    #[test]
    fn clones_share_the_root() {
        let svc = service();
        let clone = svc.clone();
        let q = svc.issue(Measurement::compute("x", b""), [0u8; 32]);
        assert!(clone.verify(&q).is_ok());
    }
}
