//! TEE error types.

use std::error::Error;
use std::fmt;

/// Errors from the simulated TEE substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TeeError {
    /// A quote's MAC did not verify against the attestation service.
    QuoteInvalid,
    /// A quote verified but reported an unexpected enclave measurement.
    MeasurementMismatch,
    /// The handshake's report data did not bind the ephemeral key.
    HandshakeBindingInvalid,
    /// The X25519 exchange produced a low-order (all-zero) shared secret.
    WeakKey,
    /// Sealed data failed to decrypt (wrong platform, enclave or tampering).
    UnsealFailed,
    /// An encrypted channel message failed to authenticate or arrived out
    /// of order.
    ChannelMessageRejected,
}

impl fmt::Display for TeeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::QuoteInvalid => "attestation quote did not verify",
            Self::MeasurementMismatch => "enclave measurement was not the expected one",
            Self::HandshakeBindingInvalid => "handshake key was not bound to the quote",
            Self::WeakKey => "key exchange produced a weak shared secret",
            Self::UnsealFailed => "sealed data could not be unsealed",
            Self::ChannelMessageRejected => "secure channel rejected a message",
        })
    }
}

impl Error for TeeError {}

impl From<gendpr_crypto::CryptoError> for TeeError {
    fn from(_: gendpr_crypto::CryptoError) -> Self {
        TeeError::ChannelMessageRejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants = [
            TeeError::QuoteInvalid,
            TeeError::MeasurementMismatch,
            TeeError::HandshakeBindingInvalid,
            TeeError::WeakKey,
            TeeError::UnsealFailed,
            TeeError::ChannelMessageRejected,
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }
}
