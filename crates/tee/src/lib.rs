//! Simulated Trusted Execution Environment substrate.
//!
//! The paper runs GenDPR inside Intel SGX enclaves (via Graphene-SGX). No
//! SGX hardware is available here, so this crate provides a faithful
//! *architectural* simulation — the substitution is documented in
//! `DESIGN.md` §4. What is preserved:
//!
//! * **Measurement** — an enclave's identity is a SHA-256 over its code
//!   identity and configuration ([`measurement`]), the analogue of
//!   MRENCLAVE.
//! * **Remote attestation** — a [`attestation::AttestationService`] issues
//!   MAC-signed [`attestation::Quote`]s over `(measurement, report_data)`
//!   that any holder of the service's verification capability can check,
//!   playing the role of Intel's EPID/DCAP infrastructure.
//! * **Sealed storage** — [`sealing`] binds ciphertexts to the platform
//!   *and* the enclave measurement, like SGX's `MRENCLAVE` sealing policy.
//! * **Attested secure channels** — [`session`] runs an X25519 handshake
//!   whose ephemeral keys are bound into fresh quotes, then derives
//!   direction-separated ChaCha20-Poly1305 session keys; this is how
//!   GenDPR's enclaves exchange intermediate results so that "only a
//!   properly authenticated enclave can decrypt them".
//! * **EPC accounting** — [`memory::EpcAccount`] meters trusted memory
//!   against the 128 MB EPC budget and counts paging beyond it, which is
//!   what Table 3 of the paper reports.
//!
//! # Example
//!
//! ```
//! use gendpr_tee::platform::Platform;
//! use gendpr_tee::attestation::AttestationService;
//! use gendpr_crypto::rng::ChaChaRng;
//!
//! let service = AttestationService::new(&mut ChaChaRng::from_seed_u64(1));
//! let platform = Platform::new("gdo-0", &service, &mut ChaChaRng::from_seed_u64(2));
//! let mut enclave = platform.launch_enclave("gendpr/phase-runner", 0u64);
//! let result = enclave.enter(|state, _epc| {
//!     *state += 41;
//!     *state + 1
//! });
//! assert_eq!(result, 42);
//! ```

pub mod attestation;
pub mod enclave;
pub mod error;
pub mod measurement;
pub mod memory;
pub mod platform;
pub mod sealing;
pub mod session;

pub use attestation::{AttestationService, Quote};
pub use enclave::Enclave;
pub use error::TeeError;
pub use measurement::Measurement;
pub use memory::EpcAccount;
pub use platform::Platform;
pub use session::{HandshakeMessage, SecureChannel};
