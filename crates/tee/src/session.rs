//! Attested end-to-end encrypted sessions between enclaves.
//!
//! "Any communication between federation members is encrypted and happens
//! only between TEEs … GDOs agree on keys and other credentials during the
//! remote attestation phase to connect the trust-chain from boot to
//! communication" (paper §5.1). The handshake here implements that chain:
//!
//! 1. each enclave draws an ephemeral X25519 key pair and obtains a fresh
//!    [`Quote`] whose `report_data` is the hash of the ephemeral public
//!    key — so the key provably originated inside the attested enclave;
//! 2. the peers exchange `(quote, public key)` messages and verify: quote
//!    authenticity, expected measurement (mutual attestation), and the
//!    key-to-quote binding;
//! 3. both derive direction-separated ChaCha20-Poly1305 keys from the
//!    Diffie-Hellman secret with the handshake transcript as salt;
//! 4. messages carry monotonically increasing sequence-number nonces, so
//!    replayed, reordered or dropped ciphertexts are rejected.

use crate::attestation::{AttestationService, Quote};
use crate::enclave::Enclave;
use crate::error::TeeError;
use crate::measurement::Measurement;
use gendpr_crypto::aead::ChaCha20Poly1305;
use gendpr_crypto::rng::ChaChaRng;
use gendpr_crypto::sha256::Sha256;
use gendpr_crypto::{hkdf, x25519};

/// The first (and only) handshake flight: an attestation quote plus the
/// ephemeral public key it binds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandshakeMessage {
    /// Fresh quote with `report_data = H(ephemeral_public)`.
    pub quote: Quote,
    /// X25519 ephemeral public key.
    pub ephemeral_public: [u8; 32],
}

impl HandshakeMessage {
    /// Wire encoding (quote ‖ public key, 128 bytes).
    #[must_use]
    pub fn to_bytes(&self) -> [u8; 128] {
        let mut out = [0u8; 128];
        out[..96].copy_from_slice(&self.quote.to_bytes());
        out[96..].copy_from_slice(&self.ephemeral_public);
        out
    }

    /// Parses the wire encoding.
    #[must_use]
    pub fn from_bytes(bytes: &[u8; 128]) -> Self {
        let mut q = [0u8; 96];
        q.copy_from_slice(&bytes[..96]);
        let mut pk = [0u8; 32];
        pk.copy_from_slice(&bytes[96..]);
        Self {
            quote: Quote::from_bytes(&q),
            ephemeral_public: pk,
        }
    }
}

fn bind_key(public: &[u8; 32]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"gendpr/handshake/v1\0");
    h.update(public);
    h.finalize()
}

/// An in-progress handshake holding the local ephemeral secret.
#[derive(Debug)]
pub struct Handshake {
    secret: [u8; 32],
    message: HandshakeMessage,
    service: AttestationService,
}

impl Handshake {
    /// Starts a handshake from inside `enclave`.
    #[must_use]
    pub fn start<S>(enclave: &Enclave<S>, rng: &mut ChaChaRng) -> Self {
        let secret = x25519::clamp_scalar(rng.gen_key());
        let public = x25519::public_key(&secret);
        let quote = enclave.quote(bind_key(&public));
        Self {
            secret,
            message: HandshakeMessage {
                quote,
                ephemeral_public: public,
            },
            service: enclave.platform().service().clone(),
        }
    }

    /// The flight to send to the peer.
    #[must_use]
    pub fn message(&self) -> &HandshakeMessage {
        &self.message
    }

    /// Completes the handshake against the peer's flight, requiring the
    /// peer to attest as `expected` (mutual attestation).
    ///
    /// # Errors
    ///
    /// * [`TeeError::QuoteInvalid`] — forged or foreign quote,
    /// * [`TeeError::MeasurementMismatch`] — wrong enclave build,
    /// * [`TeeError::HandshakeBindingInvalid`] — key not bound to quote,
    /// * [`TeeError::WeakKey`] — degenerate Diffie-Hellman result.
    pub fn complete(
        self,
        peer: &HandshakeMessage,
        expected: &Measurement,
    ) -> Result<SecureChannel, TeeError> {
        self.service.verify_expected(&peer.quote, expected)?;
        if peer.quote.report_data != bind_key(&peer.ephemeral_public) {
            return Err(TeeError::HandshakeBindingInvalid);
        }
        let shared = x25519::diffie_hellman(&self.secret, &peer.ephemeral_public)
            .ok_or(TeeError::WeakKey)?;

        // Transcript salt: both public keys in a canonical order.
        let (lo, hi) = if self.message.ephemeral_public <= peer.ephemeral_public {
            (&self.message.ephemeral_public, &peer.ephemeral_public)
        } else {
            (&peer.ephemeral_public, &self.message.ephemeral_public)
        };
        let mut salt = [0u8; 64];
        salt[..32].copy_from_slice(lo);
        salt[32..].copy_from_slice(hi);

        // Direction keys: the sender's public key names the direction, so
        // both sides derive the same pair and assign them oppositely.
        let derive = |sender_pub: &[u8; 32]| {
            let mut info = Vec::with_capacity(20 + 32);
            info.extend_from_slice(b"gendpr/session/v1\0");
            info.extend_from_slice(sender_pub);
            let mut key = [0u8; 32];
            hkdf::derive(&salt, &shared, &info, &mut key);
            key
        };
        let send_key = derive(&self.message.ephemeral_public);
        let recv_key = derive(&peer.ephemeral_public);

        Ok(SecureChannel {
            send: ChaCha20Poly1305::new(&send_key),
            recv: ChaCha20Poly1305::new(&recv_key),
            send_key,
            recv_key,
            send_seq: 0,
            recv_seq: 0,
            generation: 0,
        })
    }
}

/// An established attested channel.
///
/// Sequence numbers advance on every message; a replayed or reordered
/// ciphertext authenticates under the wrong nonce and is rejected.
pub struct SecureChannel {
    send: ChaCha20Poly1305,
    recv: ChaCha20Poly1305,
    send_key: [u8; 32],
    recv_key: [u8; 32],
    send_seq: u64,
    recv_seq: u64,
    generation: u64,
}

impl std::fmt::Debug for SecureChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureChannel")
            .field("send_seq", &self.send_seq)
            .field("recv_seq", &self.recv_seq)
            .field("generation", &self.generation)
            .finish_non_exhaustive()
    }
}

fn seq_nonce(seq: u64) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    nonce[..8].copy_from_slice(&seq.to_le_bytes());
    nonce
}

impl SecureChannel {
    /// Encrypts `plaintext` with `aad` as authenticated context (GenDPR
    /// uses the protocol phase and study id).
    pub fn send(&mut self, plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let nonce = seq_nonce(self.send_seq);
        self.send_seq += 1;
        self.send.seal(&nonce, plaintext, aad)
    }

    /// Decrypts the next in-order message.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::ChannelMessageRejected`] on tampering, replay,
    /// reordering or AAD mismatch.
    pub fn recv(&mut self, ciphertext: &[u8], aad: &[u8]) -> Result<Vec<u8>, TeeError> {
        let nonce = seq_nonce(self.recv_seq);
        let plaintext = self.recv.open(&nonce, ciphertext, aad)?;
        self.recv_seq += 1;
        Ok(plaintext)
    }

    /// Messages sent so far.
    #[must_use]
    pub fn messages_sent(&self) -> u64 {
        self.send_seq
    }

    /// Rekey generations performed so far.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Ratchets both direction keys forward with HKDF and resets the
    /// sequence numbers. A long-lived session (the assessment service
    /// keeps channels open across jobs) calls this at a deterministic
    /// protocol point — both ends must ratchet together, at the same
    /// boundary — giving per-job forward secrecy: compromising the current
    /// keys reveals nothing about traffic from completed jobs, and the
    /// nonce space never comes close to exhaustion however many jobs the
    /// federation serves.
    pub fn rekey(&mut self) {
        self.generation += 1;
        let ratchet = |key: &mut [u8; 32], generation: u64| {
            let mut info = Vec::with_capacity(24 + 8);
            info.extend_from_slice(b"gendpr/session/rekey/v1\0");
            info.extend_from_slice(&generation.to_le_bytes());
            let old = *key;
            hkdf::derive(b"gendpr/rekey", &old, &info, key);
        };
        ratchet(&mut self.send_key, self.generation);
        ratchet(&mut self.recv_key, self.generation);
        self.send = ChaCha20Poly1305::new(&self.send_key);
        self.recv = ChaCha20Poly1305::new(&self.recv_key);
        self.send_seq = 0;
        self.recv_seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    struct Setup {
        a: Enclave<()>,
        b: Enclave<()>,
        rng: ChaChaRng,
    }

    fn setup(code_a: &str, code_b: &str) -> Setup {
        let mut rng = ChaChaRng::from_seed_u64(77);
        let svc = AttestationService::new(&mut rng);
        let pa = Platform::new("gdo-a", &svc, &mut rng);
        let pb = Platform::new("gdo-b", &svc, &mut rng);
        Setup {
            a: pa.launch_enclave(code_a, ()),
            b: pb.launch_enclave(code_b, ()),
            rng,
        }
    }

    fn establish(s: &mut Setup) -> (SecureChannel, SecureChannel) {
        let ha = Handshake::start(&s.a, &mut s.rng);
        let hb = Handshake::start(&s.b, &mut s.rng);
        let ma = ha.message().clone();
        let mb = hb.message().clone();
        let ca = ha.complete(&mb, &s.b.measurement()).unwrap();
        let cb = hb.complete(&ma, &s.a.measurement()).unwrap();
        (ca, cb)
    }

    #[test]
    fn bidirectional_messaging() {
        let mut s = setup("gendpr", "gendpr");
        let (mut ca, mut cb) = establish(&mut s);
        let ct = ca.send(b"counts", b"phase1");
        assert_eq!(cb.recv(&ct, b"phase1").unwrap(), b"counts");
        let ct2 = cb.send(b"retained snps", b"phase1");
        assert_eq!(ca.recv(&ct2, b"phase1").unwrap(), b"retained snps");
        assert_eq!(ca.messages_sent(), 1);
    }

    #[test]
    fn directions_use_distinct_keys() {
        let mut s = setup("gendpr", "gendpr");
        let (mut ca, mut cb) = establish(&mut s);
        let from_a = ca.send(b"same", b"");
        let from_b = cb.send(b"same", b"");
        assert_ne!(from_a, from_b);
    }

    #[test]
    fn replay_and_reorder_rejected() {
        let mut s = setup("gendpr", "gendpr");
        let (mut ca, mut cb) = establish(&mut s);
        let m1 = ca.send(b"one", b"");
        let m2 = ca.send(b"two", b"");
        // Reorder: m2 first fails.
        assert_eq!(cb.recv(&m2, b""), Err(TeeError::ChannelMessageRejected));
        assert_eq!(cb.recv(&m1, b"").unwrap(), b"one");
        // Replay of m1 fails.
        assert_eq!(cb.recv(&m1, b""), Err(TeeError::ChannelMessageRejected));
        assert_eq!(cb.recv(&m2, b"").unwrap(), b"two");
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let mut s = setup("gendpr", "gendpr");
        let (mut ca, mut cb) = establish(&mut s);
        let mut ct = ca.send(b"payload", b"aad");
        ct[0] ^= 1;
        assert_eq!(cb.recv(&ct, b"aad"), Err(TeeError::ChannelMessageRejected));
    }

    #[test]
    fn wrong_measurement_fails_mutual_attestation() {
        let mut s = setup("gendpr/honest", "gendpr/modified");
        let ha = Handshake::start(&s.a, &mut s.rng);
        let hb = Handshake::start(&s.b, &mut s.rng);
        let mb = hb.message().clone();
        // A expects the honest build but B runs a modified one.
        let expected = Measurement::compute("gendpr/honest", b"");
        assert_eq!(
            ha.complete(&mb, &expected).unwrap_err(),
            TeeError::MeasurementMismatch
        );
    }

    #[test]
    fn unbound_key_rejected() {
        // A MITM substitutes its own ephemeral key into an honest flight.
        let mut s = setup("gendpr", "gendpr");
        let ha = Handshake::start(&s.a, &mut s.rng);
        let hb = Handshake::start(&s.b, &mut s.rng);
        let mut mb = hb.message().clone();
        mb.ephemeral_public = [9u8; 32]; // quote no longer binds this key
        assert_eq!(
            ha.complete(&mb, &s.b.measurement()).unwrap_err(),
            TeeError::HandshakeBindingInvalid
        );
    }

    #[test]
    fn foreign_attestation_root_rejected() {
        let mut s = setup("gendpr", "gendpr");
        // An enclave from a different federation (different service root).
        let mut rng2 = ChaChaRng::from_seed_u64(99);
        let other_svc = AttestationService::new(&mut rng2);
        let other_platform = Platform::new("intruder", &other_svc, &mut rng2);
        let intruder: Enclave<()> = other_platform.launch_enclave("gendpr", ());
        let hi = Handshake::start(&intruder, &mut rng2);
        let ha = Handshake::start(&s.a, &mut s.rng);
        let mi = hi.message().clone();
        assert_eq!(
            ha.complete(&mi, &intruder.measurement()).unwrap_err(),
            TeeError::QuoteInvalid
        );
    }

    #[test]
    fn handshake_message_wire_roundtrip() {
        let mut s = setup("gendpr", "gendpr");
        let ha = Handshake::start(&s.a, &mut s.rng);
        let m = ha.message().clone();
        assert_eq!(HandshakeMessage::from_bytes(&m.to_bytes()), m);
    }

    #[test]
    fn rekeyed_channels_interoperate() {
        let mut s = setup("gendpr", "gendpr");
        let (mut ca, mut cb) = establish(&mut s);
        let ct = ca.send(b"job 0 traffic", b"");
        assert_eq!(cb.recv(&ct, b"").unwrap(), b"job 0 traffic");
        ca.rekey();
        cb.rekey();
        assert_eq!(ca.generation(), 1);
        assert_eq!(cb.generation(), 1);
        // Sequence numbers restart under the new keys, both directions.
        assert_eq!(ca.messages_sent(), 0);
        let ct = ca.send(b"job 1 traffic", b"aad");
        assert_eq!(cb.recv(&ct, b"aad").unwrap(), b"job 1 traffic");
        let ct = cb.send(b"reply", b"");
        assert_eq!(ca.recv(&ct, b"").unwrap(), b"reply");
    }

    #[test]
    fn rekey_invalidates_old_keys() {
        let mut s = setup("gendpr", "gendpr");
        let (mut ca, mut cb) = establish(&mut s);
        let stale = ca.send(b"captured before ratchet", b"");
        ca.rekey();
        cb.rekey();
        // A ciphertext from the previous generation no longer decrypts,
        // even though its sequence number (0) matches the reset counter.
        assert_eq!(cb.recv(&stale, b""), Err(TeeError::ChannelMessageRejected));
    }

    #[test]
    fn rekey_must_be_synchronized() {
        let mut s = setup("gendpr", "gendpr");
        let (mut ca, mut cb) = establish(&mut s);
        ca.rekey();
        let ct = ca.send(b"one side ratcheted", b"");
        assert_eq!(cb.recv(&ct, b""), Err(TeeError::ChannelMessageRejected));
        cb.rekey();
        // The reverse direction was never used, so once both sides have
        // ratcheted it lines up from sequence zero.
        let ct = cb.send(b"now aligned", b"");
        assert_eq!(ca.recv(&ct, b"").unwrap(), b"now aligned");
    }

    #[test]
    fn aad_mismatch_rejected() {
        let mut s = setup("gendpr", "gendpr");
        let (mut ca, mut cb) = establish(&mut s);
        let ct = ca.send(b"data", b"phase1");
        assert_eq!(
            cb.recv(&ct, b"phase2"),
            Err(TeeError::ChannelMessageRejected)
        );
    }
}
