//! EPC (enclave page cache) accounting.
//!
//! SGX1 enclaves have ~128 MB of protected memory; SGX2 can page beyond it
//! at significant cost (paper §2.1). GenDPR's design goal is to stay far
//! below the limit by exchanging aggregates instead of genomes — Table 3
//! shows ~2.1 MB per enclave. This account meters allocations so the
//! benchmark harness can reproduce that table.

/// Default EPC budget: 128 MB, the classic SGX1 limit.
pub const DEFAULT_EPC_BYTES: u64 = 128 * 1024 * 1024;

/// Tracks trusted-memory usage of one enclave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpcAccount {
    limit: u64,
    in_use: u64,
    peak: u64,
    paged_bytes: u64,
    alloc_calls: u64,
}

impl Default for EpcAccount {
    fn default() -> Self {
        Self::new(DEFAULT_EPC_BYTES)
    }
}

impl EpcAccount {
    /// Creates an account with the given budget in bytes.
    #[must_use]
    pub fn new(limit: u64) -> Self {
        Self {
            limit,
            in_use: 0,
            peak: 0,
            paged_bytes: 0,
            alloc_calls: 0,
        }
    }

    /// Records an allocation of `bytes`. Allocation beyond the budget is
    /// permitted (SGX2 paging) but metered in [`Self::paged_bytes`].
    pub fn alloc(&mut self, bytes: u64) {
        self.alloc_calls += 1;
        self.in_use += bytes;
        if self.in_use > self.peak {
            self.peak = self.in_use;
        }
        if self.in_use > self.limit {
            self.paged_bytes += self.in_use - self.limit.max(self.in_use - bytes);
        }
    }

    /// Records a release of `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if more is freed than is in use (an accounting bug).
    pub fn free(&mut self, bytes: u64) {
        assert!(bytes <= self.in_use, "freeing more than allocated");
        self.in_use -= bytes;
    }

    /// Bytes currently accounted inside the enclave.
    #[must_use]
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark — the number Table 3 reports.
    #[must_use]
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Bytes that spilled beyond the EPC budget (0 in every paper setting).
    #[must_use]
    pub fn paged_bytes(&self) -> u64 {
        self.paged_bytes
    }

    /// Number of allocation events.
    #[must_use]
    pub fn alloc_calls(&self) -> u64 {
        self.alloc_calls
    }

    /// The configured budget.
    #[must_use]
    pub fn limit(&self) -> u64 {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut epc = EpcAccount::new(1000);
        epc.alloc(300);
        epc.alloc(400);
        epc.free(500);
        epc.alloc(100);
        assert_eq!(epc.in_use(), 300);
        assert_eq!(epc.peak(), 700);
        assert_eq!(epc.alloc_calls(), 3);
        assert_eq!(epc.paged_bytes(), 0);
    }

    #[test]
    fn paging_beyond_budget_is_metered() {
        let mut epc = EpcAccount::new(100);
        epc.alloc(80);
        assert_eq!(epc.paged_bytes(), 0);
        epc.alloc(50); // 30 bytes over budget
        assert_eq!(epc.paged_bytes(), 30);
        epc.free(130);
        epc.alloc(250); // 150 over in one allocation
        assert_eq!(epc.paged_bytes(), 30 + 150);
    }

    #[test]
    #[should_panic(expected = "freeing more than allocated")]
    fn over_free_panics() {
        let mut epc = EpcAccount::new(100);
        epc.alloc(10);
        epc.free(11);
    }

    #[test]
    fn default_is_sgx1_budget() {
        assert_eq!(EpcAccount::default().limit(), 128 * 1024 * 1024);
    }
}
